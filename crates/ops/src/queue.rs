//! The durable in-sim incident queue.
//!
//! "Durable" in a deterministic simulation does not mean fsync: it
//! means every state change the queue makes is also recorded as a
//! telemetry event by the engine driving it, so the queue's entire
//! history is reconstructible from the JSONL trace. The queue itself is
//! pure data — SimTime-stamped, lease-based, with deterministic
//! backoff — and never reads a clock or an RNG stream; redelivery
//! jitter is a stateless SplitMix64 hash of `(seed, run, delivery)`, so
//! evaluation order cannot perturb anything.
//!
//! # Lifecycle
//!
//! ```text
//! enqueue ─▶ ready ─lease(now)─▶ in-flight ─ack─▶ done
//!              ▲                    │
//!              │   nack / lease expiry, deliveries < max
//!              └────(backoff: base·2^(d−1) + jitter)───┘
//!                                   │ deliveries ≥ max
//!                                   ▼
//!                              dead letter
//! ```
//!
//! # Conservation invariant
//!
//! At every instant `enqueued == acked + dead_lettered + ready +
//! in_flight` — no message is ever lost or duplicated. The proptests in
//! this module drive random operation sequences against the invariant;
//! `exp13_ops` proves it at the 10k-incident scale.

use silvasec_sim::rng::hash3;
use std::collections::{BTreeMap, BTreeSet};

/// Queue tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// How long a lease lasts before the message is considered
    /// abandoned and redelivered.
    pub visibility_timeout_ms: u64,
    /// Deliveries after which a message is dead-lettered instead of
    /// redelivered.
    pub max_deliveries: u32,
    /// Backoff base: a message nacked on delivery `d` becomes available
    /// again after `base · 2^(d−1)` ms (capped at 2^10·base) plus
    /// jitter.
    pub backoff_base_ms: u64,
    /// Exclusive upper bound on the deterministic backoff jitter.
    pub backoff_jitter_ms: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            visibility_timeout_ms: 10_000,
            max_deliveries: 6,
            backoff_base_ms: 500,
            backoff_jitter_ms: 250,
        }
    }
}

/// Monotonic queue accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Unique messages accepted.
    pub enqueued: u64,
    /// Leases granted (first deliveries and redeliveries).
    pub leased: u64,
    /// Redeliveries granted (leases beyond a message's first).
    pub redelivered: u64,
    /// Messages acknowledged (removed successfully).
    pub acked: u64,
    /// Explicit negative acknowledgements.
    pub nacked: u64,
    /// Leases that expired before ack/nack.
    pub lease_expired: u64,
    /// Messages dead-lettered after exhausting deliveries.
    pub dead_lettered: u64,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    delivery: u32,
    /// When the message becomes leasable (ready messages only).
    avail_at: u64,
    /// Current lease expiry (in-flight messages only).
    lease_expiry: u64,
    in_flight: bool,
}

/// What one [`DurableQueue::tick`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueTick {
    /// Runs whose lease expired and were re-queued, with the delivery
    /// count the expired lease had consumed.
    pub expired: Vec<(u64, u32)>,
    /// Runs dead-lettered this tick, with total deliveries consumed.
    pub dead: Vec<(u64, u32)>,
}

/// The lease-based durable queue. Messages are keyed by run id.
#[derive(Debug, Clone)]
pub struct DurableQueue {
    config: QueueConfig,
    seed: u64,
    msgs: BTreeMap<u64, Msg>,
    /// Ready messages ordered by `(avail_at, run)` — lease order is a
    /// pure function of queue content, never of insertion history.
    ready: BTreeSet<(u64, u64)>,
    /// In-flight messages ordered by `(lease_expiry, run)`.
    in_flight: BTreeSet<(u64, u64)>,
    /// Dead-lettered `(run, deliveries)` in dead-letter order.
    dead: Vec<(u64, u32)>,
    counters: QueueCounters,
}

impl DurableQueue {
    /// Creates an empty queue. `seed` keys the deterministic backoff
    /// jitter.
    ///
    /// # Panics
    ///
    /// Panics if `max_deliveries` is zero — a queue that may never
    /// deliver is a configuration bug.
    #[must_use]
    pub fn new(config: QueueConfig, seed: u64) -> Self {
        assert!(config.max_deliveries > 0, "max_deliveries must be > 0");
        DurableQueue {
            config,
            seed,
            msgs: BTreeMap::new(),
            ready: BTreeSet::new(),
            in_flight: BTreeSet::new(),
            dead: Vec::new(),
            counters: QueueCounters::default(),
        }
    }

    /// Accepts a new message. Returns `false` (and changes nothing) if
    /// the run is already queued, in flight, or dead-lettered — the
    /// caller deduplicates at the incident level, this is the backstop.
    pub fn enqueue(&mut self, run: u64, now_ms: u64) -> bool {
        if self.msgs.contains_key(&run) || self.dead.iter().any(|&(r, _)| r == run) {
            return false;
        }
        self.msgs.insert(
            run,
            Msg {
                delivery: 0,
                avail_at: now_ms,
                lease_expiry: 0,
                in_flight: false,
            },
        );
        self.ready.insert((now_ms, run));
        self.counters.enqueued += 1;
        true
    }

    /// Expires overdue leases: each message whose lease expired is
    /// redelivered with backoff, or dead-lettered once its delivery
    /// budget is exhausted.
    pub fn tick(&mut self, now_ms: u64) -> QueueTick {
        let mut out = QueueTick::default();
        while let Some(&(expiry, run)) = self.in_flight.iter().next() {
            if expiry > now_ms {
                break;
            }
            self.in_flight.remove(&(expiry, run));
            self.counters.lease_expired += 1;
            let msg = self.msgs.get_mut(&run).expect("in-flight msg exists");
            msg.in_flight = false;
            if msg.delivery >= self.config.max_deliveries {
                let deliveries = msg.delivery;
                self.msgs.remove(&run);
                self.dead.push((run, deliveries));
                self.counters.dead_lettered += 1;
                out.dead.push((run, deliveries));
            } else {
                let delivery = msg.delivery;
                let avail = now_ms + backoff_ms(&self.config, self.seed, run, delivery);
                msg.avail_at = avail;
                self.ready.insert((avail, run));
                out.expired.push((run, delivery));
            }
        }
        out
    }

    /// Leases the next available message: the ready message with the
    /// earliest `avail_at ≤ now` (ties broken by run id). Returns the
    /// run and its 1-based delivery attempt.
    pub fn lease(&mut self, now_ms: u64) -> Option<(u64, u32)> {
        let &(avail_at, run) = self.ready.iter().next()?;
        if avail_at > now_ms {
            return None;
        }
        self.ready.remove(&(avail_at, run));
        let msg = self.msgs.get_mut(&run).expect("ready msg exists");
        msg.delivery += 1;
        msg.in_flight = true;
        msg.lease_expiry = now_ms + self.config.visibility_timeout_ms;
        self.in_flight.insert((msg.lease_expiry, run));
        self.counters.leased += 1;
        if msg.delivery > 1 {
            self.counters.redelivered += 1;
        }
        Some((run, msg.delivery))
    }

    /// Acknowledges an in-flight message, removing it permanently.
    /// Returns `false` if the run holds no live lease (e.g. it already
    /// expired) — the caller's work is then moot and must not be
    /// committed twice.
    pub fn ack(&mut self, run: u64) -> bool {
        let Some(msg) = self.msgs.get(&run) else {
            return false;
        };
        if !msg.in_flight {
            return false;
        }
        let expiry = msg.lease_expiry;
        self.in_flight.remove(&(expiry, run));
        self.msgs.remove(&run);
        self.counters.acked += 1;
        true
    }

    /// Negative-acknowledges an in-flight message: the delivery failed
    /// and the message should come back after backoff. Returns `true`
    /// if it was re-queued, `false` if it was dead-lettered instead
    /// (delivery budget exhausted) or held no live lease.
    pub fn nack(&mut self, run: u64, now_ms: u64) -> bool {
        let Some(msg) = self.msgs.get_mut(&run) else {
            return false;
        };
        if !msg.in_flight {
            return false;
        }
        let expiry = msg.lease_expiry;
        self.in_flight.remove(&(expiry, run));
        self.counters.nacked += 1;
        msg.in_flight = false;
        if msg.delivery >= self.config.max_deliveries {
            let deliveries = msg.delivery;
            self.msgs.remove(&run);
            self.dead.push((run, deliveries));
            self.counters.dead_lettered += 1;
            return false;
        }
        let delivery = msg.delivery;
        let avail = now_ms + backoff_ms(&self.config, self.seed, run, delivery);
        msg.avail_at = avail;
        self.ready.insert((avail, run));
        true
    }

    /// Extends the lease on an in-flight message to `expiry_ms` — the
    /// heartbeat a long-running workflow uses so progress resets the
    /// abandonment clock. Returns `false` when no live lease exists.
    pub fn extend_until(&mut self, run: u64, expiry_ms: u64) -> bool {
        let Some(msg) = self.msgs.get_mut(&run) else {
            return false;
        };
        if !msg.in_flight {
            return false;
        }
        let old = msg.lease_expiry;
        if expiry_ms <= old {
            return true;
        }
        self.in_flight.remove(&(old, run));
        msg.lease_expiry = expiry_ms;
        self.in_flight.insert((expiry_ms, run));
        true
    }

    /// Monotonic accounting counters.
    #[must_use]
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Messages currently ready (including ones whose backoff has not
    /// elapsed yet).
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Messages currently leased out.
    #[must_use]
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Dead-lettered `(run, deliveries)` pairs in dead-letter order.
    #[must_use]
    pub fn dead_letters(&self) -> &[(u64, u32)] {
        &self.dead
    }

    /// The conservation invariant: every message ever enqueued is
    /// exactly one of acked, dead-lettered, ready or in flight.
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.counters.enqueued
            == self.counters.acked
                + self.counters.dead_lettered
                + self.ready.len() as u64
                + self.in_flight.len() as u64
    }
}

/// Deterministic nack/expiry backoff for a message that just finished
/// its `delivery`-th delivery: exponential in the delivery count plus
/// SplitMix64 hash jitter keyed by `(seed, run, delivery)`.
#[must_use]
fn backoff_ms(config: &QueueConfig, seed: u64, run: u64, delivery: u32) -> u64 {
    let exp = u64::from(delivery.saturating_sub(1).min(10));
    let base = config.backoff_base_ms.saturating_mul(1 << exp);
    let jitter = if config.backoff_jitter_ms == 0 {
        0
    } else {
        hash3(seed, run, u64::from(delivery)) % config.backoff_jitter_ms
    };
    base + jitter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> DurableQueue {
        DurableQueue::new(
            QueueConfig {
                visibility_timeout_ms: 1_000,
                max_deliveries: 3,
                backoff_base_ms: 100,
                backoff_jitter_ms: 50,
            },
            7,
        )
    }

    #[test]
    fn lease_ack_lifecycle() {
        let mut q = queue();
        assert!(q.enqueue(10, 0));
        assert!(!q.enqueue(10, 0), "duplicate enqueue rejected");
        let (run, delivery) = q.lease(0).unwrap();
        assert_eq!((run, delivery), (10, 1));
        assert!(q.lease(0).is_none(), "no double lease");
        assert!(q.ack(10));
        assert!(!q.ack(10), "double ack rejected");
        assert!(q.conserves());
        assert_eq!(q.counters().acked, 1);
    }

    #[test]
    fn expired_lease_redelivers_with_backoff() {
        let mut q = queue();
        q.enqueue(10, 0);
        q.lease(0).unwrap();
        assert!(q.tick(999).expired.is_empty(), "lease still live");
        let t = q.tick(1_000);
        assert_eq!(t.expired, vec![(10, 1)]);
        // Backoff: not leasable immediately...
        assert!(q.lease(1_000).is_none());
        // ...but within base + jitter.
        let (_, delivery) = q.lease(1_000 + 100 + 50).unwrap();
        assert_eq!(delivery, 2);
        assert_eq!(q.counters().redelivered, 1);
        assert!(q.conserves());
    }

    #[test]
    fn exhausted_deliveries_dead_letter() {
        let mut q = queue();
        q.enqueue(10, 0);
        let mut now = 0;
        for expected in 1..=3u32 {
            // Generous skip past any backoff.
            now += 10_000;
            let (_, delivery) = q.lease(now).unwrap();
            assert_eq!(delivery, expected);
            if expected < 3 {
                assert!(q.nack(10, now));
            } else {
                assert!(!q.nack(10, now), "third nack dead-letters");
            }
        }
        assert_eq!(q.dead_letters(), &[(10, 3)]);
        assert_eq!(q.counters().dead_lettered, 1);
        assert!(q.lease(now + 100_000).is_none());
        assert!(!q.enqueue(10, now), "dead run stays dead");
        assert!(q.conserves());
    }

    #[test]
    fn extend_keeps_lease_alive() {
        let mut q = queue();
        q.enqueue(10, 0);
        q.lease(0).unwrap();
        assert!(q.extend_until(10, 5_000));
        assert!(q.tick(4_999).expired.is_empty());
        assert_eq!(q.tick(5_000).expired.len(), 1);
        // Shrinking is a no-op, not an error.
        q.lease(10_000).unwrap();
        assert!(q.extend_until(10, 1));
        assert!(q.tick(10_999).expired.is_empty());
    }

    #[test]
    fn lease_order_is_by_avail_time_then_run() {
        let mut q = queue();
        q.enqueue(20, 5);
        q.enqueue(10, 5);
        q.enqueue(30, 1);
        assert_eq!(q.lease(10).unwrap().0, 30, "earliest avail first");
        assert_eq!(q.lease(10).unwrap().0, 10, "ties broken by run id");
        assert_eq!(q.lease(10).unwrap().0, 20);
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let config = queue().config;
        for delivery in 1..=5u32 {
            assert_eq!(
                backoff_ms(&config, 7, 42, delivery),
                backoff_ms(&config, 7, 42, delivery)
            );
        }
        // Exponential base dominates jitter.
        assert!(backoff_ms(&config, 7, 42, 3) > backoff_ms(&config, 7, 42, 1));
        // Different seeds jitter differently somewhere in the range.
        assert!((1..=16u32).any(|d| backoff_ms(&config, 7, 42, d) != backoff_ms(&config, 8, 42, d)));
    }
}
