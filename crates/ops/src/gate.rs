//! Review gates between containment and remediation.
//!
//! Containment is cheap to undo (un-quarantine a site); remediation —
//! pushing firmware at the whole fleet — is not. The gate is where a
//! human (or an auto-approve policy standing in for one) confirms the
//! blast radius before the engine proceeds. A gate that nobody answers
//! does not stall the incident forever: after
//! [`GatePolicy::review_timeout_ms`] the run escalates, which is the
//! honest outcome — "no reviewer was available" is itself a finding.

use silvasec_ids::alert::Severity;

/// A gate verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Proceed to remediation.
    Approve,
    /// Do not remediate automatically; escalate to a human.
    Reject,
}

impl GateDecision {
    /// Short stable name, used as a telemetry label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            GateDecision::Approve => "approve",
            GateDecision::Reject => "reject",
        }
    }
}

/// When the gate may decide on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatePolicy {
    /// Incidents at or below this severity are approved automatically;
    /// `None` means every run needs an explicit review.
    pub auto_approve_max: Option<Severity>,
    /// How long a pending review may wait before the run escalates.
    pub review_timeout_ms: u64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            auto_approve_max: Some(Severity::High),
            review_timeout_ms: 60_000,
        }
    }
}

impl GatePolicy {
    /// The policy's automatic verdict for `severity`, or `None` when an
    /// explicit review is required.
    #[must_use]
    pub fn auto_decision(&self, severity: Severity) -> Option<GateDecision> {
        match self.auto_approve_max {
            Some(max) if severity <= max => Some(GateDecision::Approve),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_approves_up_to_threshold() {
        let p = GatePolicy::default();
        assert_eq!(p.auto_decision(Severity::Low), Some(GateDecision::Approve));
        assert_eq!(p.auto_decision(Severity::High), Some(GateDecision::Approve));
        assert_eq!(p.auto_decision(Severity::Critical), None);
    }

    #[test]
    fn manual_only_policy_never_auto_decides() {
        let p = GatePolicy {
            auto_approve_max: None,
            review_timeout_ms: 1_000,
        };
        for sev in [
            Severity::Low,
            Severity::Medium,
            Severity::High,
            Severity::Critical,
        ] {
            assert_eq!(p.auto_decision(sev), None);
        }
    }

    #[test]
    fn decision_names() {
        assert_eq!(GateDecision::Approve.as_str(), "approve");
        assert_eq!(GateDecision::Reject.as_str(), "reject");
    }
}
