//! The typed incident-response step machine and its failure ladder.
//!
//! The happy path is `Triage → Contain → Gate → Remediate → Verify →
//! Close`. Every edge the engine may take is in the transition table
//! below — an invalid transition is a programming error and panics in
//! the run store, never silently corrupts a run:
//!
//! ```text
//!            ┌────────┐ low sev ┌────────┐
//!            │ Triage │────────▶│ Reject │
//!            └───┬────┘         └────────┘
//!                ▼
//!            ┌─────────┐ reject / timeout     ┌──────────┐
//!            │ Contain │───┐   ┌─────────────▶│ Escalate │
//!            └───┬─────┘   │   │          ┌──▶└──────────┘
//!                ▼         ▼   │          │ ladder exhausted
//!            ┌──────┐    ┌─────┴──┐       │ (any step)
//!            │ Gate │───▶│Escalate│       │
//!            └───┬──┘    └────────┘       │
//!        approve ▼                        │
//!          ┌───────────┐   re-plan  ┌─────┴──┐
//!          │ Remediate │◀───────────│ Verify │
//!          └─────┬─────┘            └──┬─────┘
//!                └──────────▶──────────┘ quiet ▼ ┌───────┐
//!                                               │ Close │
//!                                               └───────┘
//! ```
//!
//! A failed step does not transition: it self-loops (recorded as a
//! `from == to` transition with `ok: false`) and climbs the Silas
//! ladder — **retry** the same action up to `max_retries` times,
//! then **consult** (re-derive the plan from current state), then
//! **re-plan** (widen the plan; at `Verify` this re-enters
//! `Remediate`), then **escalate** to a human. Each rung is a
//! deterministic decision from the per-step attempt counter, so the
//! whole cascade replays from the trace.

use serde::{Deserialize, Serialize};

/// One step of the incident-response workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Step {
    /// Classify the incident and derive the response plan.
    Triage,
    /// Execute containment actions against real subsystems.
    Contain,
    /// Review gate between containment and remediation.
    Gate,
    /// Drive the fix (an OTA rollout) through the fleet.
    Remediate,
    /// Re-check the SIEM window: did the trouble actually stop?
    Verify,
    /// Terminal: incident resolved and verified.
    Close,
    /// Terminal: automated response gave up; a human owns the incident.
    Escalate,
    /// Terminal: triage decided no automated response is warranted.
    Reject,
}

impl Step {
    /// Short stable name, used as a telemetry label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Step::Triage => "triage",
            Step::Contain => "contain",
            Step::Gate => "gate",
            Step::Remediate => "remediate",
            Step::Verify => "verify",
            Step::Close => "close",
            Step::Escalate => "escalate",
            Step::Reject => "reject",
        }
    }

    /// Parses the stable name produced by [`Step::as_str`].
    #[must_use]
    pub fn from_str_name(name: &str) -> Option<Self> {
        match name {
            "triage" => Some(Step::Triage),
            "contain" => Some(Step::Contain),
            "gate" => Some(Step::Gate),
            "remediate" => Some(Step::Remediate),
            "verify" => Some(Step::Verify),
            "close" => Some(Step::Close),
            "escalate" => Some(Step::Escalate),
            "reject" => Some(Step::Reject),
            _ => None,
        }
    }

    /// `true` for the three terminal steps.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Step::Close | Step::Escalate | Step::Reject)
    }

    /// The typed transition table. Self-loops (failed attempts) are
    /// valid for every non-terminal step.
    #[must_use]
    pub fn can_transition(self, to: Step) -> bool {
        if self == to {
            return !self.is_terminal();
        }
        matches!(
            (self, to),
            (Step::Triage, Step::Contain)
                | (Step::Triage, Step::Reject)
                | (Step::Triage, Step::Escalate)
                | (Step::Contain, Step::Gate)
                | (Step::Contain, Step::Escalate)
                | (Step::Gate, Step::Remediate)
                | (Step::Gate, Step::Escalate)
                | (Step::Remediate, Step::Verify)
                | (Step::Remediate, Step::Escalate)
                | (Step::Verify, Step::Close)
                | (Step::Verify, Step::Remediate)
                | (Step::Verify, Step::Escalate)
        )
    }
}

/// What the ladder says to do about a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderAction {
    /// Re-run the same actions after backoff.
    Retry,
    /// Re-derive the plan from current state, then re-run.
    Consult,
    /// Widen the plan (at `Verify`: fall back to `Remediate`).
    Replan,
    /// Hand the incident to a human.
    Escalate,
}

/// The Silas failure ladder: retry → consult → re-plan → escalate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderPolicy {
    /// Plain retries before the ladder starts climbing.
    pub max_retries: u32,
    /// Whether a consult rung exists.
    pub allow_consult: bool,
    /// Whether a re-plan rung exists.
    pub allow_replan: bool,
}

impl Default for LadderPolicy {
    fn default() -> Self {
        LadderPolicy {
            max_retries: 2,
            allow_consult: true,
            allow_replan: true,
        }
    }
}

impl LadderPolicy {
    /// Decides the response to the `attempt`-th failure of one step
    /// (1-based): failures `1..=max_retries` retry, then one consult,
    /// then one re-plan, then escalate. Disabled rungs are skipped.
    #[must_use]
    pub fn on_failure(&self, attempt: u32) -> LadderAction {
        let mut budget = self.max_retries;
        if attempt <= budget {
            return LadderAction::Retry;
        }
        if self.allow_consult {
            budget += 1;
            if attempt <= budget {
                return LadderAction::Consult;
            }
        }
        if self.allow_replan {
            budget += 1;
            if attempt <= budget {
                return LadderAction::Replan;
            }
        }
        LadderAction::Escalate
    }

    /// Total failed attempts a step absorbs before escalating.
    #[must_use]
    pub fn budget(&self) -> u32 {
        self.max_retries + u32::from(self.allow_consult) + u32::from(self.allow_replan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Step; 8] = [
        Step::Triage,
        Step::Contain,
        Step::Gate,
        Step::Remediate,
        Step::Verify,
        Step::Close,
        Step::Escalate,
        Step::Reject,
    ];

    #[test]
    fn names_roundtrip() {
        for step in ALL {
            assert_eq!(Step::from_str_name(step.as_str()), Some(step));
        }
        assert_eq!(Step::from_str_name("unknown"), None);
    }

    #[test]
    fn happy_path_is_valid() {
        let path = [
            Step::Triage,
            Step::Contain,
            Step::Gate,
            Step::Remediate,
            Step::Verify,
            Step::Close,
        ];
        for pair in path.windows(2) {
            assert!(pair[0].can_transition(pair[1]), "{pair:?}");
        }
    }

    #[test]
    fn terminals_are_absorbing() {
        for from in [Step::Close, Step::Escalate, Step::Reject] {
            assert!(from.is_terminal());
            for to in ALL {
                assert!(!from.can_transition(to), "{from:?} -> {to:?}");
            }
        }
    }

    #[test]
    fn escalate_reachable_from_every_active_step() {
        for from in [
            Step::Triage,
            Step::Contain,
            Step::Gate,
            Step::Remediate,
            Step::Verify,
        ] {
            assert!(from.can_transition(Step::Escalate), "{from:?}");
            assert!(from.can_transition(from), "self-loop {from:?}");
        }
    }

    #[test]
    fn backward_and_skip_edges_rejected() {
        assert!(!Step::Contain.can_transition(Step::Triage));
        assert!(!Step::Triage.can_transition(Step::Remediate));
        assert!(!Step::Gate.can_transition(Step::Close));
        assert!(!Step::Remediate.can_transition(Step::Gate));
        // The one sanctioned backward edge: verify re-plan.
        assert!(Step::Verify.can_transition(Step::Remediate));
    }

    #[test]
    fn ladder_climbs_in_order() {
        let p = LadderPolicy::default(); // 2 retries + consult + replan
        assert_eq!(p.on_failure(1), LadderAction::Retry);
        assert_eq!(p.on_failure(2), LadderAction::Retry);
        assert_eq!(p.on_failure(3), LadderAction::Consult);
        assert_eq!(p.on_failure(4), LadderAction::Replan);
        assert_eq!(p.on_failure(5), LadderAction::Escalate);
        assert_eq!(p.budget(), 4);
    }

    #[test]
    fn disabled_rungs_are_skipped() {
        let p = LadderPolicy {
            max_retries: 1,
            allow_consult: false,
            allow_replan: true,
        };
        assert_eq!(p.on_failure(1), LadderAction::Retry);
        assert_eq!(p.on_failure(2), LadderAction::Replan);
        assert_eq!(p.on_failure(3), LadderAction::Escalate);
        let bare = LadderPolicy {
            max_retries: 0,
            allow_consult: false,
            allow_replan: false,
        };
        assert_eq!(bare.on_failure(1), LadderAction::Escalate);
        assert_eq!(bare.budget(), 0);
    }
}
