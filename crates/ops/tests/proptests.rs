//! Property-based tests over the ops subsystem's invariants: queue
//! conservation under arbitrary host behavior, delivery budgets,
//! same-seed byte-identity, trace replay, and gate semantics.

use proptest::prelude::*;
use silvasec_ids::alert::Severity;
use silvasec_ops::{
    Action, DurableQueue, GateDecision, Incident, IncidentScope, OpsCommand, OpsConfig, OpsEngine,
    QueueConfig, RunStore,
};
use silvasec_sim::rng::hash3;
use silvasec_telemetry::{EventFilter, Recorder, SubscriberId};

const CLASSES: [&str; 4] = [
    "jamming",
    "gnss-spoofing",
    "auth-failure-storm",
    "rogue-association",
];
const SEVERITIES: [Severity; 4] = [
    Severity::Low,
    Severity::Medium,
    Severity::High,
    Severity::Critical,
];

/// A deterministic engine harness with a scripted executor: command
/// verdicts and review decisions are pure functions of `script`, so two
/// harnesses with equal inputs replay the same history.
struct Harness {
    engine: OpsEngine,
    recorder: Recorder,
    sub: SubscriberId,
    script: u64,
    verdicts: u64,
    now: u64,
}

impl Harness {
    fn new(config: OpsConfig, script: u64) -> Self {
        let recorder = Recorder::new();
        let sub = recorder.subscribe_filtered("ops-prop", 1 << 16, EventFilter::security());
        Harness {
            engine: OpsEngine::new(config, recorder.clone()),
            recorder,
            sub,
            script,
            verdicts: 0,
            now: 0,
        }
    }

    fn pump(&mut self, mut cmds: Vec<OpsCommand>) {
        while let Some(cmd) = cmds.pop() {
            if matches!(cmd.action, Action::MitigateRisk { .. }) {
                continue;
            }
            self.verdicts += 1;
            let ok = hash3(self.script, self.verdicts, 0xF1) % 5 != 0;
            cmds.extend(self.engine.complete(cmd.id, ok, self.now));
        }
    }

    /// One scheduler round: scripted reviews, tick, scripted verdicts.
    fn round(&mut self) {
        for run in self.engine.pending_reviews() {
            let decision = if hash3(self.script, run, 0x6A7E) % 3 == 0 {
                GateDecision::Reject
            } else {
                GateDecision::Approve
            };
            let cmds = self.engine.review(run, decision, self.now);
            self.pump(cmds);
        }
        let cmds = self.engine.tick(self.now);
        self.pump(cmds);
        self.now += 500;
    }

    fn run_to_idle(&mut self, max_rounds: u32) {
        for _ in 0..max_rounds {
            if self.engine.idle() {
                return;
            }
            self.round();
        }
        panic!("engine not idle after {max_rounds} rounds");
    }

    fn trace(&self) -> String {
        self.recorder.export_jsonl(self.sub)
    }
}

fn incident(k: u64, at_ms: u64) -> Incident {
    let scope = if k % 6 == 0 {
        IncidentScope::Fleet {
            sites: 2 + (k % 7) as u32,
        }
    } else {
        IncidentScope::Site((k % 23) as u32)
    };
    Incident {
        class: CLASSES[(k % 4) as usize].to_string(),
        severity: SEVERITIES[(k % 4 ^ k % 3) as usize % 4],
        scope,
        detected_at_ms: at_ms,
    }
}

proptest! {
    // ---------------- durable queue ----------------

    /// Conservation (`enqueued == acked + dead_lettered + ready +
    /// in_flight`) holds after every operation, whatever interleaving of
    /// enqueue / lease / ack / nack / time-advance the host performs —
    /// including acks and nacks for leases that already expired.
    #[test]
    fn queue_conserves_under_arbitrary_host_behavior(
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<u16>(), 1..120),
    ) {
        let config = QueueConfig {
            visibility_timeout_ms: 1_000,
            max_deliveries: 4,
            backoff_base_ms: 100,
            backoff_jitter_ms: 50,
        };
        let mut queue = DurableQueue::new(config, seed);
        let mut now = 0u64;
        let mut next_run = 0u64;
        let mut leased: Vec<u64> = Vec::new();
        for word in ops {
            // Decode one packed word into (operation, time jitter) —
            // the vendored proptest has no tuple strategies.
            let (op, jitter) = (word & 3, (word >> 2) & 0xFF);
            match op {
                0 => {
                    queue.enqueue(next_run, now);
                    next_run += 1;
                }
                1 => {
                    if let Some((run, delivery)) = queue.lease(now) {
                        prop_assert!(delivery <= config.max_deliveries);
                        leased.push(run);
                    }
                }
                2 => {
                    if let Some(run) = leased.pop() {
                        queue.ack(run); // may be stale — must be tolerated
                    }
                }
                _ => {
                    if let Some(run) = leased.pop() {
                        queue.nack(run, now); // may be stale too
                    }
                }
            }
            now += u64::from(jitter) * 17;
            let t = queue.tick(now);
            for (run, _) in t.expired.iter().chain(&t.dead) {
                leased.retain(|r| r != run);
            }
            prop_assert!(queue.conserves(), "counters: {:?}", queue.counters());
        }
    }

    /// A host that never completes anything dead-letters every message
    /// after exactly `max_deliveries` deliveries — none lost, none stuck.
    #[test]
    fn abandoned_messages_always_dead_letter_on_budget(
        seed in any::<u64>(),
        runs in 1u64..12,
        visibility in 200u64..2_000,
        max_deliveries in 1u32..6,
    ) {
        let config = QueueConfig {
            visibility_timeout_ms: visibility,
            max_deliveries,
            backoff_base_ms: 100,
            backoff_jitter_ms: 50,
        };
        let mut queue = DurableQueue::new(config, seed);
        for run in 0..runs {
            queue.enqueue(run, 0);
        }
        let mut now = 0u64;
        for _ in 0..10_000 {
            while queue.lease(now).is_some() {}
            queue.tick(now);
            now += visibility / 2 + 1;
            if queue.ready_len() == 0 && queue.in_flight_len() == 0 {
                break;
            }
        }
        let counters = queue.counters();
        prop_assert_eq!(counters.dead_lettered, runs);
        prop_assert_eq!(queue.dead_letters().len() as u64, runs);
        prop_assert!(queue.dead_letters().iter().all(|&(_, d)| d == max_deliveries));
        prop_assert!(queue.conserves());
    }

    // ---------------- engine ----------------

    /// Same seed, same incidents, same scripted host ⇒ byte-identical
    /// telemetry trace and run-store digest; and the store rebuilt from
    /// nothing but that trace is digest-identical to the live one.
    #[test]
    fn same_seed_history_is_byte_identical_and_replays(
        seed in any::<u64>(),
        script in any::<u64>(),
        arrivals in proptest::collection::vec(0u64..40, 1..25),
    ) {
        let run_once = || {
            let config = OpsConfig { seed, ..OpsConfig::default() };
            let mut h = Harness::new(config, script);
            for (i, &k) in arrivals.iter().enumerate() {
                // A few arrivals per round interleaved with scheduling.
                if i % 3 == 2 {
                    h.round();
                }
                let inc = incident(k, h.now);
                h.engine.enqueue_incident(&inc, h.now);
            }
            h.run_to_idle(5_000);
            prop_assert!(h.engine.queue_conserves());
            let counters = h.engine.store().counters();
            prop_assert_eq!(
                counters.settled() + counters.duplicates_folded,
                arrivals.len() as u64,
                "every report settled or folded"
            );
            Ok((h.engine.store().digest(), h.trace()))
        };
        let (digest_a, trace_a) = run_once()?;
        let (digest_b, trace_b) = run_once()?;
        prop_assert_eq!(digest_a, digest_b);
        prop_assert_eq!(&trace_a, &trace_b);
        let replayed = RunStore::replay_from_jsonl(&trace_a).unwrap();
        prop_assert_eq!(replayed.digest(), digest_a);
    }

    /// An explicit reject at the review gate always escalates the run —
    /// never remediates it — regardless of timing and incident shape.
    #[test]
    fn gate_reject_always_escalates(
        seed in any::<u64>(),
        k in any::<u64>(),
        delay_rounds in 0u32..8,
    ) {
        let config = OpsConfig {
            gate: silvasec_ops::GatePolicy {
                auto_approve_max: None, // every run needs a reviewer
                review_timeout_ms: 1_000_000,
            },
            seed,
            ..OpsConfig::default()
        };
        let mut h = Harness::new(config, 0);
        // Severity above Low so triage does not reject outright.
        let mut inc = incident(k, 0);
        inc.severity = Severity::High;
        let run = h.engine.enqueue_incident(&inc, 0);
        for _ in 0..200 {
            // All-succeed executor: drive to the gate, no ladder noise.
            let mut cmds = h.engine.tick(h.now);
            while let Some(cmd) = cmds.pop() {
                if matches!(cmd.action, Action::MitigateRisk { .. }) {
                    continue;
                }
                cmds.extend(h.engine.complete(cmd.id, true, h.now));
            }
            h.now += 500;
            if h.engine.pending_reviews().contains(&run) {
                break;
            }
        }
        prop_assert!(h.engine.pending_reviews().contains(&run), "run reaches its gate");
        for _ in 0..delay_rounds {
            let _ = h.engine.tick(h.now);
            h.now += 500;
        }
        let follow_on = h.engine.review(run, GateDecision::Reject, h.now);
        prop_assert!(follow_on.is_empty(), "reject must not issue remediation");
        let record = h.engine.store().run(run).unwrap();
        prop_assert_eq!(record.state, silvasec_ops::Step::Escalate);
        prop_assert_eq!(record.gate.clone(), Some(("reject".to_string(), false)));
        prop_assert!(h.engine.idle(), "rejected run is settled");
        // The audit trail of the rejection replays too.
        let replayed = RunStore::replay_from_jsonl(&h.trace()).unwrap();
        prop_assert_eq!(replayed.digest(), h.engine.store().digest());
    }
}
