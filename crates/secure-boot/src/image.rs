//! Firmware images and image signing.

use serde::{Deserialize, Serialize};
use silvasec_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use silvasec_crypto::sha256;

/// The boot stage an image belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FirmwareStage {
    /// Second-stage bootloader (verified by the boot ROM).
    Bootloader,
    /// Application firmware (verified by the bootloader).
    Application,
}

impl FirmwareStage {
    /// The PCR index this stage's measurement extends.
    #[must_use]
    pub fn pcr_index(self) -> usize {
        match self {
            FirmwareStage::Bootloader => 0,
            FirmwareStage::Application => 1,
        }
    }
}

/// An unsigned firmware image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirmwareImage {
    /// Component the image targets (e.g. `"forwarder-01"`).
    pub component_id: String,
    /// Which boot stage this image implements.
    pub stage: FirmwareStage,
    /// Monotonic version for anti-rollback.
    pub version: u32,
    /// Image payload.
    pub payload: Vec<u8>,
}

impl FirmwareImage {
    /// Creates an image.
    pub fn new(
        component_id: impl Into<String>,
        stage: FirmwareStage,
        version: u32,
        payload: Vec<u8>,
    ) -> Self {
        FirmwareImage {
            component_id: component_id.into(),
            stage,
            version,
            payload,
        }
    }

    /// The canonical signed encoding (header fields + payload digest).
    #[must_use]
    pub fn tbs_bytes(&self) -> Vec<u8> {
        self.tbs_bytes_with_digest(&self.digest())
    }

    /// [`FirmwareImage::tbs_bytes`] with a caller-supplied payload
    /// digest, so verify-and-measure flows that already hold the
    /// measurement hash the payload exactly once.
    #[must_use]
    pub fn tbs_bytes_with_digest(&self, digest: &[u8; 32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.component_id.len());
        out.extend_from_slice(b"silvasec-fw-v1");
        out.extend_from_slice(&(self.component_id.len() as u32).to_le_bytes());
        out.extend_from_slice(self.component_id.as_bytes());
        out.push(match self.stage {
            FirmwareStage::Bootloader => 0,
            FirmwareStage::Application => 1,
        });
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(digest);
        out
    }

    /// SHA-256 digest of the payload (the boot measurement).
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        sha256::digest(&self.payload)
    }

    /// Signs the image with the firmware signer's key.
    #[must_use]
    pub fn sign(self, signer: &SigningKey) -> SignedImage {
        let signature = signer.sign(&self.tbs_bytes()).to_bytes().to_vec();
        SignedImage {
            image: self,
            signature,
        }
    }
}

/// A signed firmware image as stored in flash / shipped in updates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedImage {
    /// The image.
    pub image: FirmwareImage,
    /// Signer's signature over [`FirmwareImage::tbs_bytes`].
    pub signature: Vec<u8>,
}

impl SignedImage {
    /// Verifies the signature against the pinned signer key.
    #[must_use]
    pub fn verify(&self, signer: &VerifyingKey) -> bool {
        Signature::from_bytes(&self.signature)
            .map(|sig| signer.verify(&self.image.tbs_bytes(), &sig).is_ok())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signer() -> SigningKey {
        SigningKey::from_seed(&[7u8; 32])
    }

    #[test]
    fn sign_and_verify() {
        let img = FirmwareImage::new("fw-01", FirmwareStage::Application, 5, vec![1, 2, 3]);
        let signed = img.sign(&signer());
        assert!(signed.verify(&signer().verifying_key()));
    }

    #[test]
    fn payload_tamper_detected() {
        let img = FirmwareImage::new("fw-01", FirmwareStage::Application, 5, vec![1, 2, 3]);
        let mut signed = img.sign(&signer());
        signed.image.payload[0] ^= 0xff;
        assert!(!signed.verify(&signer().verifying_key()));
    }

    #[test]
    fn version_tamper_detected() {
        let img = FirmwareImage::new("fw-01", FirmwareStage::Application, 5, vec![1, 2, 3]);
        let mut signed = img.sign(&signer());
        signed.image.version = 6;
        assert!(!signed.verify(&signer().verifying_key()));
    }

    #[test]
    fn wrong_component_detected() {
        let img = FirmwareImage::new("fw-01", FirmwareStage::Bootloader, 5, vec![1]);
        let mut signed = img.sign(&signer());
        signed.image.component_id = "fw-02".into();
        assert!(!signed.verify(&signer().verifying_key()));
    }

    #[test]
    fn wrong_signer_rejected() {
        let img = FirmwareImage::new("fw-01", FirmwareStage::Application, 5, vec![1]);
        let signed = img.sign(&signer());
        let other = SigningKey::from_seed(&[8u8; 32]);
        assert!(!signed.verify(&other.verifying_key()));
    }

    #[test]
    fn garbage_signature_rejected() {
        let img = FirmwareImage::new("fw-01", FirmwareStage::Application, 5, vec![1]);
        let mut signed = img.sign(&signer());
        signed.signature = vec![0u8; 12];
        assert!(!signed.verify(&signer().verifying_key()));
    }

    #[test]
    fn stage_pcr_mapping() {
        assert_eq!(FirmwareStage::Bootloader.pcr_index(), 0);
        assert_eq!(FirmwareStage::Application.pcr_index(), 1);
    }

    #[test]
    fn digest_depends_only_on_payload() {
        let a = FirmwareImage::new("x", FirmwareStage::Application, 1, vec![9, 9]);
        let b = FirmwareImage::new("y", FirmwareStage::Bootloader, 2, vec![9, 9]);
        assert_eq!(a.digest(), b.digest());
    }
}
