//! Remote attestation: quotes over PCR state.
//!
//! Before admitting a machine to the worksite network, the base station
//! challenges it with a fresh nonce; the machine answers with a *quote* —
//! a signature over its PCR composite and the nonce, made with its
//! device identity key (certified by the worksite PKI). The verifier
//! compares the quoted composite against the golden measurements of the
//! approved firmware.

use crate::pcr::PcrBank;
use serde::{Deserialize, Serialize};
use silvasec_crypto::schnorr::{Signature, SigningKey, VerifyingKey};

/// A signed attestation of PCR state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The attested PCR composite digest.
    pub composite: [u8; 32],
    /// The verifier's challenge nonce echoed back.
    pub nonce: [u8; 32],
    /// Signature by the device identity key.
    pub signature: Vec<u8>,
}

impl Quote {
    /// Produces a quote over `pcrs` bound to `nonce`.
    #[must_use]
    pub fn generate(pcrs: &PcrBank, nonce: &[u8; 32], device_key: &SigningKey) -> Self {
        let composite = pcrs.composite_digest();
        let mut msg = Vec::with_capacity(80);
        msg.extend_from_slice(b"silvasec-quote-v1");
        msg.extend_from_slice(&composite);
        msg.extend_from_slice(nonce);
        let signature = device_key.sign(&msg).to_bytes().to_vec();
        Quote {
            composite,
            nonce: *nonce,
            signature,
        }
    }
}

/// Verifies quotes against golden measurements.
#[derive(Debug, Clone)]
pub struct QuoteVerifier {
    golden_composite: [u8; 32],
}

impl QuoteVerifier {
    /// Creates a verifier expecting the PCR state of the approved
    /// firmware chain.
    #[must_use]
    pub fn new(golden: &PcrBank) -> Self {
        QuoteVerifier {
            golden_composite: golden.composite_digest(),
        }
    }

    /// Checks a quote: correct nonce, correct golden composite, valid
    /// signature by `device_key`.
    #[must_use]
    pub fn verify(
        &self,
        quote: &Quote,
        expected_nonce: &[u8; 32],
        device_key: &VerifyingKey,
    ) -> bool {
        if &quote.nonce != expected_nonce {
            return false;
        }
        if quote.composite != self.golden_composite {
            return false;
        }
        let mut msg = Vec::with_capacity(80);
        msg.extend_from_slice(b"silvasec-quote-v1");
        msg.extend_from_slice(&quote.composite);
        msg.extend_from_slice(&quote.nonce);
        Signature::from_bytes(&quote.signature)
            .map(|sig| device_key.verify(&msg, &sig).is_ok())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::Device;
    use crate::image::{FirmwareImage, FirmwareStage};

    fn booted_pcrs(app_payload: &[u8]) -> PcrBank {
        let signer = SigningKey::from_seed(&[1u8; 32]);
        let chain = [
            FirmwareImage::new("dev", FirmwareStage::Bootloader, 1, b"bl".to_vec()).sign(&signer),
            FirmwareImage::new("dev", FirmwareStage::Application, 1, app_payload.to_vec())
                .sign(&signer),
        ];
        let mut device = Device::new("dev", signer.verifying_key());
        let report = device.boot(&chain);
        assert!(report.success);
        report.pcrs
    }

    #[test]
    fn good_quote_verifies() {
        let pcrs = booted_pcrs(b"app");
        let device_key = SigningKey::from_seed(&[2u8; 32]);
        let nonce = [9u8; 32];
        let quote = Quote::generate(&pcrs, &nonce, &device_key);
        let verifier = QuoteVerifier::new(&pcrs);
        assert!(verifier.verify(&quote, &nonce, &device_key.verifying_key()));
    }

    #[test]
    fn stale_nonce_rejected() {
        let pcrs = booted_pcrs(b"app");
        let device_key = SigningKey::from_seed(&[2u8; 32]);
        let quote = Quote::generate(&pcrs, &[9u8; 32], &device_key);
        let verifier = QuoteVerifier::new(&pcrs);
        assert!(!verifier.verify(&quote, &[8u8; 32], &device_key.verifying_key()));
    }

    #[test]
    fn tampered_firmware_rejected() {
        let golden = booted_pcrs(b"app");
        let tampered = booted_pcrs(b"evil-app");
        let device_key = SigningKey::from_seed(&[2u8; 32]);
        let nonce = [1u8; 32];
        let quote = Quote::generate(&tampered, &nonce, &device_key);
        let verifier = QuoteVerifier::new(&golden);
        assert!(!verifier.verify(&quote, &nonce, &device_key.verifying_key()));
    }

    #[test]
    fn wrong_device_key_rejected() {
        let pcrs = booted_pcrs(b"app");
        let device_key = SigningKey::from_seed(&[2u8; 32]);
        let other_key = SigningKey::from_seed(&[3u8; 32]);
        let nonce = [1u8; 32];
        let quote = Quote::generate(&pcrs, &nonce, &device_key);
        let verifier = QuoteVerifier::new(&pcrs);
        assert!(!verifier.verify(&quote, &nonce, &other_key.verifying_key()));
    }

    #[test]
    fn forged_composite_rejected() {
        let pcrs = booted_pcrs(b"app");
        let device_key = SigningKey::from_seed(&[2u8; 32]);
        let nonce = [1u8; 32];
        let mut quote = Quote::generate(&pcrs, &nonce, &device_key);
        // Claim the golden composite without the signature to match.
        quote.composite = [0u8; 32];
        let verifier = QuoteVerifier::new(&PcrBank::new());
        assert!(!verifier.verify(&quote, &nonce, &device_key.verifying_key()));
    }
}
