//! The staged verified-boot state machine.

use crate::image::{FirmwareStage, SignedImage};
use crate::pcr::PcrBank;
use serde::{Deserialize, Serialize};
use silvasec_crypto::schnorr::{self, BatchItem, Signature, VerifyingKey};
use silvasec_telemetry::{Event, Label, Recorder};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

fn stage_label(stage: FirmwareStage) -> &'static str {
    match stage {
        FirmwareStage::Bootloader => "bootloader",
        FirmwareStage::Application => "application",
    }
}

/// Why a boot attempt failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BootError {
    /// A required stage was missing from the image chain.
    MissingStage(FirmwareStage),
    /// A stage appeared more than once.
    DuplicateStage(FirmwareStage),
    /// An image's signature did not verify against the pinned signer key.
    BadSignature(FirmwareStage),
    /// An image targets a different component.
    WrongComponent {
        /// Component the image was built for.
        expected: String,
        /// Component found in the image header.
        actual: String,
    },
    /// An image's version is lower than the stored rollback counter.
    Rollback {
        /// The stage whose version regressed.
        stage: FirmwareStage,
        /// Minimum accepted version.
        min_version: u32,
        /// Version found in the image.
        actual: u32,
    },
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::MissingStage(s) => write!(f, "missing {s:?} image"),
            BootError::DuplicateStage(s) => write!(f, "duplicate {s:?} image"),
            BootError::BadSignature(s) => write!(f, "bad signature on {s:?} image"),
            BootError::WrongComponent { expected, actual } => {
                write!(f, "image built for {actual}, device is {expected}")
            }
            BootError::Rollback {
                stage,
                min_version,
                actual,
            } => {
                write!(
                    f,
                    "rollback on {stage:?}: version {actual} < minimum {min_version}"
                )
            }
        }
    }
}

impl Error for BootError {}

/// The outcome of one boot attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootReport {
    /// Whether the device reached the application stage.
    pub success: bool,
    /// The failure, if any.
    pub error: Option<BootError>,
    /// Measurement registers after the attempt (partial on failure).
    pub pcrs: PcrBank,
    /// Versions that actually booted, by stage.
    pub booted_versions: HashMap<FirmwareStage, u32>,
}

/// A machine controller with a boot ROM, pinned signer key and rollback
/// counters.
#[derive(Debug, Clone)]
pub struct Device {
    component_id: String,
    signer: VerifyingKey,
    rollback: HashMap<FirmwareStage, u32>,
    last_pcrs: Option<PcrBank>,
    recorder: Recorder,
}

impl Device {
    /// Creates a device with the signer key burned into its boot ROM.
    pub fn new(component_id: impl Into<String>, signer: VerifyingKey) -> Self {
        Device {
            component_id: component_id.into(),
            signer,
            rollback: HashMap::new(),
            last_pcrs: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder; each measured stage is then
    /// mirrored as a `BootMeasure` event (`ok: false` when the stage is
    /// rejected).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The component id this device identifies as.
    #[must_use]
    pub fn component_id(&self) -> &str {
        &self.component_id
    }

    /// The rollback counter for a stage (0 when never booted).
    #[must_use]
    pub fn rollback_counter(&self, stage: FirmwareStage) -> u32 {
        self.rollback.get(&stage).copied().unwrap_or(0)
    }

    /// PCR state of the most recent successful boot.
    #[must_use]
    pub fn last_pcrs(&self) -> Option<&PcrBank> {
        self.last_pcrs.as_ref()
    }

    /// Attempts to boot the image chain (bootloader + application).
    ///
    /// On success, rollback counters ratchet up to the booted versions and
    /// PCRs hold the measurements. On failure, boot halts at the failing
    /// stage (the report carries the partial PCR state) and counters are
    /// unchanged.
    pub fn boot(&mut self, chain: &[SignedImage]) -> BootReport {
        let mut pcrs = PcrBank::new();
        let mut booted = HashMap::new();

        let fail =
            |error: BootError, pcrs: PcrBank, booted: HashMap<FirmwareStage, u32>| BootReport {
                success: false,
                error: Some(error),
                pcrs,
                booted_versions: booted,
            };

        // Collect stages; order of verification is fixed: ROM verifies the
        // bootloader, the bootloader verifies the application.
        let mut by_stage: HashMap<FirmwareStage, &SignedImage> = HashMap::new();
        for img in chain {
            if by_stage.insert(img.image.stage, img).is_some() {
                return fail(BootError::DuplicateStage(img.image.stage), pcrs, booted);
            }
        }

        // Fast path: verify every present stage's signature in one batch
        // (one shared Straus doubling chain) before the per-stage walk.
        // The batch records no telemetry and decides nothing on its own:
        // when it passes, the per-stage signature re-check is skipped;
        // when it fails for any reason, the per-stage walk below runs the
        // signature checks individually, so the failing stage, the
        // telemetry events and the partial PCR state are exactly those of
        // the sequential path.
        // Each stage's payload is hashed exactly once: the measurement
        // feeds both the signed encoding below and the PCR extension in
        // the per-stage walk.
        let digests: HashMap<FirmwareStage, [u8; 32]> = by_stage
            .iter()
            .map(|(stage, signed)| (*stage, signed.image.digest()))
            .collect();
        let batch_tbs: Vec<Vec<u8>> = [FirmwareStage::Bootloader, FirmwareStage::Application]
            .iter()
            .filter_map(|stage| by_stage.get(stage).map(|s| (stage, s)))
            .map(|(stage, signed)| signed.image.tbs_bytes_with_digest(&digests[stage]))
            .collect();
        let batch_sigs: Option<Vec<Signature>> =
            [FirmwareStage::Bootloader, FirmwareStage::Application]
                .iter()
                .filter_map(|stage| by_stage.get(stage))
                .map(|signed| Signature::from_bytes(&signed.signature).ok())
                .collect();
        let batch_ok = batch_sigs.is_some_and(|sigs| {
            let items: Vec<BatchItem<'_>> = batch_tbs
                .iter()
                .zip(&sigs)
                .map(|(tbs, sig)| BatchItem {
                    message: tbs,
                    signature: sig,
                    key: &self.signer,
                })
                .collect();
            schnorr::verify_batch(&items)
        });

        for stage in [FirmwareStage::Bootloader, FirmwareStage::Application] {
            let Some(signed) = by_stage.get(&stage) else {
                return fail(BootError::MissingStage(stage), pcrs, booted);
            };
            let reject = Event::BootMeasure {
                stage: Label::new(stage_label(stage)),
                version: signed.image.version,
                ok: false,
            };
            if signed.image.component_id != self.component_id {
                self.recorder.record(reject);
                return fail(
                    BootError::WrongComponent {
                        expected: self.component_id.clone(),
                        actual: signed.image.component_id.clone(),
                    },
                    pcrs,
                    booted,
                );
            }
            if !batch_ok && !signed.verify(&self.signer) {
                self.recorder.record(reject);
                return fail(BootError::BadSignature(stage), pcrs, booted);
            }
            let min = self.rollback_counter(stage);
            if signed.image.version < min {
                self.recorder.record(reject);
                return fail(
                    BootError::Rollback {
                        stage,
                        min_version: min,
                        actual: signed.image.version,
                    },
                    pcrs,
                    booted,
                );
            }
            pcrs.extend(stage.pcr_index(), &digests[&stage]);
            booted.insert(stage, signed.image.version);
            self.recorder.record(Event::BootMeasure {
                stage: Label::new(stage_label(stage)),
                version: signed.image.version,
                ok: true,
            });
        }

        // Ratchet rollback counters only after the full chain verified.
        for (stage, version) in &booted {
            let entry = self.rollback.entry(*stage).or_insert(0);
            *entry = (*entry).max(*version);
        }
        self.last_pcrs = Some(pcrs.clone());
        BootReport {
            success: true,
            error: None,
            pcrs,
            booted_versions: booted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FirmwareImage;
    use silvasec_crypto::schnorr::SigningKey;

    fn signer() -> SigningKey {
        SigningKey::from_seed(&[1u8; 32])
    }

    fn chain(bl_version: u32, app_version: u32) -> Vec<SignedImage> {
        let s = signer();
        vec![
            FirmwareImage::new("dev", FirmwareStage::Bootloader, bl_version, b"bl".to_vec())
                .sign(&s),
            FirmwareImage::new(
                "dev",
                FirmwareStage::Application,
                app_version,
                b"app".to_vec(),
            )
            .sign(&s),
        ]
    }

    fn device() -> Device {
        Device::new("dev", signer().verifying_key())
    }

    #[test]
    fn clean_boot_succeeds() {
        let mut d = device();
        let report = d.boot(&chain(1, 1));
        assert!(report.success);
        assert_eq!(report.error, None);
        assert!(!report.pcrs.is_reset(0));
        assert!(!report.pcrs.is_reset(1));
        assert_eq!(report.booted_versions[&FirmwareStage::Application], 1);
        assert!(d.last_pcrs().is_some());
    }

    #[test]
    fn tampered_application_halts_boot() {
        let mut d = device();
        let mut c = chain(1, 1);
        c[1].image.payload = b"evil".to_vec();
        let report = d.boot(&c);
        assert!(!report.success);
        assert_eq!(
            report.error,
            Some(BootError::BadSignature(FirmwareStage::Application))
        );
        // Bootloader measured, application not.
        assert!(!report.pcrs.is_reset(0));
        assert!(report.pcrs.is_reset(1));
    }

    #[test]
    fn rollback_rejected_after_upgrade() {
        let mut d = device();
        assert!(d.boot(&chain(2, 5)).success);
        assert_eq!(d.rollback_counter(FirmwareStage::Application), 5);
        let report = d.boot(&chain(2, 4));
        assert!(!report.success);
        assert!(matches!(
            report.error,
            Some(BootError::Rollback {
                actual: 4,
                min_version: 5,
                ..
            })
        ));
        // Equal version still boots.
        assert!(d.boot(&chain(2, 5)).success);
    }

    #[test]
    fn counters_do_not_ratchet_on_failure() {
        let mut d = device();
        assert!(d.boot(&chain(1, 3)).success);
        let mut c = chain(9, 9);
        c[1].image.payload = b"evil".to_vec();
        let _ = d.boot(&c);
        assert_eq!(d.rollback_counter(FirmwareStage::Application), 3);
        assert_eq!(d.rollback_counter(FirmwareStage::Bootloader), 1);
    }

    #[test]
    fn missing_and_duplicate_stages() {
        let mut d = device();
        let only_bl = vec![chain(1, 1)[0].clone()];
        assert_eq!(
            d.boot(&only_bl).error,
            Some(BootError::MissingStage(FirmwareStage::Application))
        );
        let dup = vec![chain(1, 1)[0].clone(), chain(1, 1)[0].clone()];
        assert_eq!(
            d.boot(&dup).error,
            Some(BootError::DuplicateStage(FirmwareStage::Bootloader))
        );
    }

    #[test]
    fn wrong_component_rejected() {
        let s = signer();
        let mut d = device();
        let c = vec![
            FirmwareImage::new("other", FirmwareStage::Bootloader, 1, b"bl".to_vec()).sign(&s),
            FirmwareImage::new("other", FirmwareStage::Application, 1, b"app".to_vec()).sign(&s),
        ];
        assert!(matches!(
            d.boot(&c).error,
            Some(BootError::WrongComponent { .. })
        ));
    }

    #[test]
    fn batched_boot_records_one_event_per_stage() {
        // The batch fast path must not add or drop BootMeasure events: a
        // clean boot records exactly one ok event per stage, a tampered
        // application records bootloader-ok then application-reject.
        use silvasec_telemetry::{Event, Recorder};
        let mut d = device();
        let recorder = Recorder::new();
        let sub = recorder.subscribe("test", 64);
        d.set_recorder(recorder.clone());

        assert!(d.boot(&chain(1, 1)).success);
        let events: Vec<Event> = recorder.drain(sub).into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| matches!(e, Event::BootMeasure { ok: true, .. })));

        let mut c = chain(2, 2);
        c[1].image.payload = b"evil".to_vec();
        assert!(!d.boot(&c).success);
        let events: Vec<Event> = recorder.drain(sub).into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::BootMeasure { ok: true, .. }));
        assert!(matches!(events[1], Event::BootMeasure { ok: false, .. }));
    }

    #[test]
    fn measurements_distinguish_payloads() {
        let s = signer();
        let mut d1 = device();
        let mut d2 = device();
        let r1 = d1.boot(&chain(1, 1));
        let c2 = vec![
            FirmwareImage::new("dev", FirmwareStage::Bootloader, 1, b"bl".to_vec()).sign(&s),
            FirmwareImage::new("dev", FirmwareStage::Application, 1, b"app2".to_vec()).sign(&s),
        ];
        let r2 = d2.boot(&c2);
        assert!(r1.success && r2.success);
        assert_eq!(r1.pcrs.read(0), r2.pcrs.read(0));
        assert_ne!(r1.pcrs.read(1), r2.pcrs.read(1));
    }
}
