//! TPM-style platform configuration registers (PCRs).

use serde::{Deserialize, Serialize};
use silvasec_crypto::sha256::Sha256;

/// Number of measurement registers in the bank.
pub const PCR_COUNT: usize = 8;

/// A bank of measurement registers.
///
/// Each register starts at all-zeros and can only be *extended*:
/// `new = SHA-256(old ‖ measurement)`. Extension order therefore matters
/// and the final values commit to the full boot sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcrBank {
    registers: Vec<[u8; 32]>,
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// Creates a bank with all registers zeroed (reset state).
    #[must_use]
    pub fn new() -> Self {
        PcrBank {
            registers: vec![[0u8; 32]; PCR_COUNT],
        }
    }

    /// Extends register `index` with `measurement`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn extend(&mut self, index: usize, measurement: &[u8; 32]) {
        assert!(index < PCR_COUNT, "pcr index out of range");
        let mut h = Sha256::new();
        h.update(&self.registers[index]);
        h.update(measurement);
        self.registers[index] = h.finalize();
    }

    /// Reads register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn read(&self, index: usize) -> [u8; 32] {
        assert!(index < PCR_COUNT, "pcr index out of range");
        self.registers[index]
    }

    /// A digest over the whole bank (what attestation quotes sign).
    #[must_use]
    pub fn composite_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        for r in &self.registers {
            h.update(r);
        }
        h.finalize()
    }

    /// Whether register `index` is still in the reset state.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn is_reset(&self, index: usize) -> bool {
        self.read(index) == [0u8; 32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_reset() {
        let bank = PcrBank::new();
        for i in 0..PCR_COUNT {
            assert!(bank.is_reset(i));
        }
    }

    #[test]
    fn extend_changes_value() {
        let mut bank = PcrBank::new();
        bank.extend(0, &[1u8; 32]);
        assert!(!bank.is_reset(0));
        assert!(bank.is_reset(1), "other registers untouched");
    }

    #[test]
    fn extension_order_matters() {
        let mut a = PcrBank::new();
        a.extend(0, &[1u8; 32]);
        a.extend(0, &[2u8; 32]);
        let mut b = PcrBank::new();
        b.extend(0, &[2u8; 32]);
        b.extend(0, &[1u8; 32]);
        assert_ne!(a.read(0), b.read(0));
    }

    #[test]
    fn same_sequence_same_value() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        for m in [[3u8; 32], [4u8; 32], [5u8; 32]] {
            a.extend(2, &m);
            b.extend(2, &m);
        }
        assert_eq!(a.read(2), b.read(2));
    }

    #[test]
    fn composite_covers_all_registers() {
        let mut a = PcrBank::new();
        let base = a.composite_digest();
        a.extend(7, &[9u8; 32]);
        assert_ne!(a.composite_digest(), base);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_extend_panics() {
        PcrBank::new().extend(PCR_COUNT, &[0u8; 32]);
    }
}
