//! Measured and secure boot for worksite machine controllers.
//!
//! IEC TS 63074 (which the paper adopts as guidance) lists *system
//! integrity* among the countermeasures protecting safety-related control
//! systems. This crate simulates the integrity anchor: a boot ROM with a
//! pinned firmware-signer key, signed firmware images with monotonic
//! anti-rollback versions, TPM-style measurement registers (PCRs), and
//! remote attestation quotes the base station can verify before admitting
//! a machine to the worksite network.
//!
//! * [`image`] — firmware images and signing.
//! * [`pcr`] — measurement registers with hash-chained extension.
//! * [`boot`] — the staged verified-boot state machine.
//! * [`attest`] — attestation quotes over PCR state.
//!
//! # Example
//!
//! ```
//! use silvasec_secure_boot::prelude::*;
//! use silvasec_crypto::schnorr::SigningKey;
//!
//! let signer = SigningKey::from_seed(&[1u8; 32]);
//! let bootloader = FirmwareImage::new("forwarder-01", FirmwareStage::Bootloader, 3, b"bl".to_vec());
//! let app = FirmwareImage::new("forwarder-01", FirmwareStage::Application, 7, b"app".to_vec());
//! let chain = [bootloader.sign(&signer), app.sign(&signer)];
//!
//! let mut device = Device::new("forwarder-01", signer.verifying_key());
//! let report = device.boot(&chain);
//! assert!(report.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod boot;
pub mod image;
pub mod pcr;

pub use attest::{Quote, QuoteVerifier};
pub use boot::{BootError, BootReport, Device};
pub use image::{FirmwareImage, FirmwareStage, SignedImage};
pub use pcr::PcrBank;

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::attest::{Quote, QuoteVerifier};
    pub use crate::boot::{BootError, BootReport, Device};
    pub use crate::image::{FirmwareImage, FirmwareStage, SignedImage};
    pub use crate::pcr::PcrBank;
}
