//! The shared radio medium: nodes, interferers, transmission and delivery.

use crate::assoc::AssociationTable;
use crate::frame::{Frame, FrameKind, NodeId, ReceivedFrame};
use crate::propagation::{self, PropagationConfig};
use crate::stats::{LinkStats, NodeStats};
use silvasec_sim::geom::Vec3;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::SimTime;
use silvasec_sim::vegetation::TreeStand;
use silvasec_sim::weather::Weather;
use silvasec_telemetry::{Event, Label, Recorder};
use std::collections::HashMap;

/// Identifier of an interference source (jammer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterfererId(u32);

/// Medium configuration.
#[derive(Debug, Clone)]
pub struct MediumConfig {
    /// Propagation model parameters.
    pub propagation: PropagationConfig,
    /// Node transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Link bitrate, bits per second.
    pub bitrate_bps: f64,
    /// Whether management-frame protection is enabled (defeats forged
    /// de-auth).
    pub mfp_enabled: bool,
    /// Re-association delay after a de-auth, ms.
    pub reassoc_delay_ms: u64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            propagation: PropagationConfig::default(),
            tx_power_dbm: 20.0,
            bitrate_bps: 6_000_000.0,
            mfp_enabled: false,
            reassoc_delay_ms: 3_000,
        }
    }
}

/// The result of one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmitOutcome {
    /// Whether the frame reached (any) addressee.
    pub delivered: bool,
    /// Received signal strength at the addressee, dBm (unicast only).
    pub rssi_dbm: f64,
    /// SINR at the addressee, dB (unicast only).
    pub sinr_db: f64,
    /// Packet error rate the channel imposed.
    pub per: f64,
    /// Airtime the frame occupied, milliseconds.
    pub airtime_ms: f64,
    /// Whether delivery failed because the sender was not associated.
    pub blocked_by_assoc: bool,
}

#[derive(Debug, Clone)]
struct RadioNode {
    position: Vec3,
}

#[derive(Debug, Clone, Copy)]
struct Interferer {
    position: Vec3,
    power_dbm: f64,
}

/// The shared wireless medium.
///
/// See the crate-level example for typical use. Attacks interact with the
/// medium exactly like legitimate nodes: they register a node (the rogue
/// radio), transmit forged frames, or add interference power (jammers) —
/// they never reach into victim state directly.
#[derive(Debug, Clone)]
pub struct Medium {
    config: MediumConfig,
    nodes: Vec<RadioNode>,
    interferers: HashMap<InterfererId, Interferer>,
    next_interferer: u32,
    inboxes: Vec<Vec<ReceivedFrame>>,
    node_stats: Vec<NodeStats>,
    link_stats: HashMap<(NodeId, NodeId), LinkStats>,
    assoc: AssociationTable,
    channel_busy_ms: f64,
    rng: SimRng,
    recorder: Recorder,
    /// When set, deliveries run through the frozen pre-optimization
    /// propagation path (identical values and RNG draws, pre-PR cost) —
    /// used by the benchmark's reference arm.
    reference_physics: bool,
}

/// Per-transmission delivery accumulators shared between the unicast
/// and broadcast arms of [`Medium::transmit_env`].
struct DeliveryState {
    any_delivered: bool,
    last_rssi: f64,
    last_sinr: f64,
    last_per: f64,
    /// Inbox delivery is deferred one recipient so the final one
    /// receives the frame by move: a unicast frame (the common case) is
    /// never cloned, and a broadcast clones once per *extra* recipient.
    pending: Option<(NodeId, f64, f64)>,
}

impl Medium {
    /// Creates a medium with the given configuration and RNG stream.
    #[must_use]
    pub fn new(config: MediumConfig, rng: SimRng) -> Self {
        let assoc = AssociationTable::new(config.mfp_enabled, config.reassoc_delay_ms);
        Medium {
            config,
            nodes: Vec::new(),
            interferers: HashMap::new(),
            next_interferer: 0,
            inboxes: Vec::new(),
            node_stats: Vec::new(),
            link_stats: HashMap::new(),
            assoc,
            channel_busy_ms: 0.0,
            rng,
            recorder: Recorder::disabled(),
            reference_physics: false,
        }
    }

    /// Selects the frozen pre-optimization propagation path for
    /// subsequent deliveries. Observable behaviour (values, RNG stream)
    /// is identical either way — only the per-delivery cost differs —
    /// so benchmark reference arms can reproduce pre-optimization
    /// timing without forking the medium.
    pub fn set_reference_physics(&mut self, on: bool) {
        self.reference_physics = on;
    }

    /// Attaches a telemetry recorder; the medium then emits
    /// `FrameTx`/`FrameRx`/`FrameLost` and `Jam` events.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Resets the medium to the state [`Medium::new`]`(config, rng)`
    /// would produce, keeping the node, inbox, stats and association
    /// allocations warm. Nodes must be re-registered by the caller (ids
    /// restart at 0) and the recorder re-attached, exactly as for a
    /// fresh medium — the episode-reset fast path.
    pub fn reset(&mut self, config: MediumConfig, rng: SimRng) {
        self.assoc
            .reset(config.mfp_enabled, config.reassoc_delay_ms);
        self.config = config;
        self.nodes.clear();
        self.interferers.clear();
        self.next_interferer = 0;
        // Inbox slots are kept (contents cleared) so re-registered nodes
        // inherit warm buffers; `inboxes.len() >= nodes.len()` always.
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        self.node_stats.clear();
        self.link_stats.clear();
        self.channel_busy_ms = 0.0;
        self.rng = rng;
        self.recorder = Recorder::disabled();
    }

    /// Registers a radio node at `position` and returns its id.
    pub fn add_node(&mut self, position: Vec3) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RadioNode { position });
        if self.inboxes.len() < self.nodes.len() {
            self.inboxes.push(Vec::new());
        }
        self.node_stats.push(NodeStats::default());
        id
    }

    /// Updates a node's position (machines move).
    ///
    /// # Panics
    ///
    /// Panics if `node` was not registered on this medium.
    pub fn set_position(&mut self, node: NodeId, position: Vec3) {
        self.nodes[node.0 as usize].position = position;
    }

    /// A node's current position.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not registered on this medium.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Vec3 {
        self.nodes[node.0 as usize].position
    }

    /// Number of registered nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds an interference source (jammer) and returns its handle.
    pub fn add_interferer(&mut self, position: Vec3, power_dbm: f64) -> InterfererId {
        let id = InterfererId(self.next_interferer);
        self.next_interferer += 1;
        self.interferers.insert(
            id,
            Interferer {
                position,
                power_dbm,
            },
        );
        self.recorder.record(Event::Jam {
            on: true,
            power_dbm,
        });
        id
    }

    /// Removes an interference source; `true` if it existed.
    pub fn remove_interferer(&mut self, id: InterfererId) -> bool {
        match self.interferers.remove(&id) {
            Some(i) => {
                self.recorder.record(Event::Jam {
                    on: false,
                    power_dbm: i.power_dbm,
                });
                true
            }
            None => false,
        }
    }

    /// Marks `node` associated with the worksite network.
    pub fn associate(&mut self, node: NodeId) {
        self.assoc.associate(node);
    }

    /// Whether `node` is currently associated.
    #[must_use]
    pub fn is_associated(&self, node: NodeId, now: SimTime) -> bool {
        self.assoc.is_associated(node, now.as_millis())
    }

    /// Total interference power at `position`, dBm (None when no
    /// interferers contribute).
    #[must_use]
    pub fn interference_at(&self, position: Vec3) -> Option<f64> {
        if self.interferers.is_empty() {
            return None;
        }
        let total_mw: f64 = self
            .interferers
            .values()
            .map(|i| {
                let loss =
                    propagation::path_loss_db(&self.config.propagation, i.position, position);
                propagation::dbm_to_mw(i.power_dbm - loss)
            })
            .sum();
        if total_mw <= 0.0 {
            None
        } else {
            Some(propagation::mw_to_dbm(total_mw))
        }
    }

    /// Transmits `frame` from `true_src` over an obstacle-free channel in
    /// clear weather (convenience for tests and infrastructure-free links).
    ///
    /// # Panics
    ///
    /// Panics if `true_src` or the frame's destination is unregistered.
    pub fn transmit(&mut self, true_src: NodeId, frame: Frame, now: SimTime) -> TransmitOutcome {
        // A process-wide empty stand sidesteps the borrow conflict with
        // `&mut self` without cloning a stand per call.
        static EMPTY_STAND: std::sync::OnceLock<TreeStand> = std::sync::OnceLock::new();
        let stand = EMPTY_STAND.get_or_init(|| TreeStand::from_trees(Vec::new(), 1.0));
        self.transmit_env(stand, Weather::Clear, true_src, frame, now)
    }

    /// Transmits `frame` from `true_src` through the given environment.
    ///
    /// The `claimed_src` inside the frame is what receivers see; `true_src`
    /// determines the physics (transmitter position) and authenticity of
    /// management frames.
    ///
    /// # Panics
    ///
    /// Panics if `true_src` or the frame's destination is unregistered.
    pub fn transmit_env(
        &mut self,
        stand: &TreeStand,
        weather: Weather,
        true_src: NodeId,
        frame: Frame,
        now: SimTime,
    ) -> TransmitOutcome {
        self.transmit_env_reclaiming(stand, weather, true_src, frame, now)
            .0
    }

    /// Like [`Medium::transmit_env`], but when the frame ends up in no
    /// inbox (lost, or blocked by association) its payload buffer is
    /// handed back so callers can pool it instead of re-allocating —
    /// physics, stats, telemetry and RNG stream are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `true_src` or the frame's destination is unregistered.
    pub fn transmit_env_reclaiming(
        &mut self,
        stand: &TreeStand,
        weather: Weather,
        true_src: NodeId,
        frame: Frame,
        now: SimTime,
    ) -> (TransmitOutcome, Option<Vec<u8>>) {
        let now_ms = now.as_millis();
        self.assoc.tick(now_ms);

        let airtime_ms = frame.wire_len() as f64 * 8.0 / self.config.bitrate_bps * 1000.0;
        self.channel_busy_ms += airtime_ms;

        // Association gating applies to data frames once the association
        // scheme is in use at all. Filtering keys on the *claimed* source
        // address — like a real access point, which cannot see who truly
        // transmitted (that is exactly what spoofing exploits).
        let blocked_by_assoc = frame.kind == FrameKind::Data
            && !self.assoc.is_empty()
            && !self.assoc.is_associated(frame.claimed_src, now_ms);

        self.recorder.record_at(
            now,
            Event::FrameTx {
                src: true_src.0,
                dst: frame.dst.map(|d| d.0),
                kind: Label::new(frame.kind.as_str()),
                bytes: frame.wire_len() as u32,
                seq: frame.seq,
            },
        );

        let mut state = DeliveryState {
            any_delivered: false,
            last_rssi: f64::NEG_INFINITY,
            last_sinr: f64::NEG_INFINITY,
            last_per: 1.0,
            pending: None,
        };

        // The unicast arm needs no target list at all (the old code
        // built a one-element `Vec` per call); the broadcast arm walks
        // node ids directly. RNG draw order matches the former
        // collected-targets loop exactly.
        match frame.dst {
            Some(d) => {
                self.attempt_delivery(
                    stand,
                    weather,
                    &frame,
                    true_src,
                    d,
                    now,
                    blocked_by_assoc,
                    &mut state,
                );
            }
            None => {
                for n in 0..self.nodes.len() as u32 {
                    let dst = NodeId(n);
                    if dst == true_src {
                        continue;
                    }
                    self.attempt_delivery(
                        stand,
                        weather,
                        &frame,
                        true_src,
                        dst,
                        now,
                        blocked_by_assoc,
                        &mut state,
                    );
                }
            }
        }

        let reclaimed = if let Some((dst, rssi, sinr)) = state.pending {
            self.inboxes[dst.0 as usize].push(ReceivedFrame {
                frame,
                rssi_dbm: rssi,
                sinr_db: sinr,
                at_ms: now_ms,
            });
            None
        } else {
            Some(frame.payload)
        };

        self.node_stats[true_src.0 as usize].tx_frames += 1;

        (
            TransmitOutcome {
                delivered: state.any_delivered,
                rssi_dbm: state.last_rssi,
                sinr_db: state.last_sinr,
                per: state.last_per,
                airtime_ms,
                blocked_by_assoc,
            },
            reclaimed,
        )
    }

    /// One channel realization towards `dst`: path loss + fading, SINR,
    /// packet-error draw, stats, management handling, deferred inbox
    /// delivery.
    #[allow(clippy::too_many_arguments)]
    fn attempt_delivery(
        &mut self,
        stand: &TreeStand,
        weather: Weather,
        frame: &Frame,
        true_src: NodeId,
        dst: NodeId,
        now: SimTime,
        blocked_by_assoc: bool,
        state: &mut DeliveryState,
    ) {
        let now_ms = now.as_millis();
        let src_pos = self.nodes[true_src.0 as usize].position;
        let dst_pos = self.nodes[dst.0 as usize].position;
        let rssi = if self.reference_physics {
            propagation::received_power_dbm_reference(
                &self.config.propagation,
                self.config.tx_power_dbm,
                stand,
                weather,
                src_pos,
                dst_pos,
                &mut self.rng,
            )
        } else {
            propagation::received_power_dbm(
                &self.config.propagation,
                self.config.tx_power_dbm,
                stand,
                weather,
                src_pos,
                dst_pos,
                &mut self.rng,
            )
        };
        let interference = self.interference_at(dst_pos);
        let sinr = propagation::sinr_db(&self.config.propagation, rssi, interference);
        let per = propagation::packet_error_rate(&self.config.propagation, sinr);

        // Receiver's noise-floor observation (updated whether or not
        // the frame survives — carrier sensing sees the energy).
        let noise_dbm = interference.map_or(self.config.propagation.noise_floor_dbm, |i| {
            propagation::mw_to_dbm(
                propagation::dbm_to_mw(i)
                    + propagation::dbm_to_mw(self.config.propagation.noise_floor_dbm),
            )
        });
        self.node_stats[dst.0 as usize].record_noise(noise_dbm);

        let channel_ok = !self.rng.chance(per);
        let delivered = channel_ok && !blocked_by_assoc;

        let link = self.link_stats.entry((true_src, dst)).or_default();
        link.attempted += 1;

        if delivered {
            link.delivered += 1;
            state.any_delivered = true;
            self.node_stats[dst.0 as usize].record_delivery(frame.kind, rssi, sinr);
            self.handle_management(dst, frame, true_src, now_ms);
            if let Some((prev_dst, prev_rssi, prev_sinr)) = state.pending.replace((dst, rssi, sinr))
            {
                self.inboxes[prev_dst.0 as usize].push(ReceivedFrame {
                    frame: frame.clone(),
                    rssi_dbm: prev_rssi,
                    sinr_db: prev_sinr,
                    at_ms: now_ms,
                });
            }
            self.recorder.record_at(
                now,
                Event::FrameRx {
                    src: true_src.0,
                    dst: dst.0,
                    rssi_dbm: rssi,
                    sinr_db: sinr,
                },
            );
        } else {
            self.node_stats[dst.0 as usize].record_loss();
            self.recorder.record_at(
                now,
                Event::FrameLost {
                    src: true_src.0,
                    dst: dst.0,
                },
            );
        }
        state.last_rssi = rssi;
        state.last_sinr = sinr;
        state.last_per = per;
    }

    fn handle_management(
        &mut self,
        receiver: NodeId,
        frame: &Frame,
        true_src: NodeId,
        now_ms: u64,
    ) {
        match frame.kind {
            FrameKind::Deauth => {
                let authentic = frame.claimed_src == true_src;
                self.assoc.handle_deauth(receiver, authentic, now_ms);
            }
            FrameKind::AssocRequest => {
                self.assoc.associate(frame.claimed_src);
            }
            _ => {}
        }
    }

    /// Drains and returns all frames delivered to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not registered on this medium.
    pub fn drain_inbox(&mut self, node: NodeId) -> Vec<ReceivedFrame> {
        std::mem::take(&mut self.inboxes[node.0 as usize])
    }

    /// Drains all frames delivered to `node` into `into` (cleared
    /// first), swapping buffers so capacity ping-pongs between the
    /// caller's scratch and the inbox — the zero-alloc form of
    /// [`Medium::drain_inbox`].
    ///
    /// # Panics
    ///
    /// Panics if `node` was not registered on this medium.
    pub fn drain_inbox_into(&mut self, node: NodeId, into: &mut Vec<ReceivedFrame>) {
        into.clear();
        std::mem::swap(into, &mut self.inboxes[node.0 as usize]);
    }

    /// Telemetry for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not registered on this medium.
    #[must_use]
    pub fn node_stats(&self, node: NodeId) -> &NodeStats {
        &self.node_stats[node.0 as usize]
    }

    /// Telemetry for the directed link `src → dst`, if any traffic flowed.
    #[must_use]
    pub fn link_stats(&self, src: NodeId, dst: NodeId) -> Option<&LinkStats> {
        self.link_stats.get(&(src, dst))
    }

    /// Cumulative channel-busy airtime, ms (channel-utilization metric).
    #[must_use]
    pub fn channel_busy_ms(&self) -> f64 {
        self.channel_busy_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        Medium::new(MediumConfig::default(), SimRng::from_seed(1))
    }

    #[test]
    fn close_link_delivers() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(30.0, 0.0, 2.0));
        let mut delivered = 0;
        for i in 0..100 {
            let out = m.transmit(a, Frame::data(a, b, vec![0; 64]).with_seq(i), SimTime::ZERO);
            if out.delivered {
                delivered += 1;
            }
        }
        assert!(delivered >= 95, "only {delivered}/100 at 30 m");
        assert_eq!(m.drain_inbox(b).len(), delivered);
    }

    #[test]
    fn distant_link_fails() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(5000.0, 0.0, 2.0));
        let mut delivered = 0;
        for _ in 0..50 {
            if m.transmit(a, Frame::data(a, b, vec![0; 64]), SimTime::ZERO)
                .delivered
            {
                delivered += 1;
            }
        }
        assert!(delivered <= 2, "{delivered}/50 delivered at 5 km");
    }

    #[test]
    fn jammer_degrades_link() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(120.0, 0.0, 2.0));
        let deliver_count = |m: &mut Medium| {
            (0..200)
                .filter(|_| {
                    m.transmit(a, Frame::data(a, b, vec![0; 64]), SimTime::ZERO)
                        .delivered
                })
                .count()
        };
        let clean = deliver_count(&mut m);
        let jammer = m.add_interferer(Vec3::new(120.0, 10.0, 2.0), 30.0);
        let jammed = deliver_count(&mut m);
        m.remove_interferer(jammer);
        let recovered = deliver_count(&mut m);
        assert!(clean >= 180, "clean {clean}");
        assert!(jammed < clean / 4, "jammed {jammed} vs clean {clean}");
        assert!(recovered >= 180, "recovered {recovered}");
    }

    #[test]
    fn forged_deauth_disassociates_without_mfp() {
        let mut m = medium();
        let bs = m.add_node(Vec3::new(0.0, 0.0, 5.0));
        let victim = m.add_node(Vec3::new(40.0, 0.0, 2.0));
        let attacker = m.add_node(Vec3::new(60.0, 0.0, 2.0));
        m.associate(victim);
        m.associate(bs);

        // Attacker sends a de-auth to the victim claiming to be the BS.
        let mut took_effect = false;
        for _ in 0..10 {
            let out = m.transmit(attacker, Frame::deauth(bs, victim), SimTime::ZERO);
            if out.delivered {
                took_effect = true;
                break;
            }
        }
        assert!(took_effect);
        assert!(!m.is_associated(victim, SimTime::from_millis(1)));
        // Victim's data frames are now blocked.
        let out = m.transmit(
            victim,
            Frame::data(victim, bs, vec![1]),
            SimTime::from_millis(10),
        );
        assert!(out.blocked_by_assoc);
        assert!(!out.delivered);
        // After the re-association delay it recovers.
        assert!(m.is_associated(victim, SimTime::from_millis(4_000)));
    }

    #[test]
    fn forged_deauth_blocked_with_mfp() {
        let config = MediumConfig {
            mfp_enabled: true,
            ..MediumConfig::default()
        };
        let mut m = Medium::new(config, SimRng::from_seed(2));
        let bs = m.add_node(Vec3::new(0.0, 0.0, 5.0));
        let victim = m.add_node(Vec3::new(40.0, 0.0, 2.0));
        let attacker = m.add_node(Vec3::new(60.0, 0.0, 2.0));
        m.associate(victim);
        for _ in 0..10 {
            let _ = m.transmit(attacker, Frame::deauth(bs, victim), SimTime::ZERO);
        }
        assert!(m.is_associated(victim, SimTime::from_millis(1)));
    }

    #[test]
    fn broadcast_reaches_all_nearby() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(20.0, 0.0, 2.0));
        let c = m.add_node(Vec3::new(0.0, 20.0, 2.0));
        let out = m.transmit(a, Frame::broadcast(a, vec![7]), SimTime::ZERO);
        assert!(out.delivered);
        assert_eq!(m.drain_inbox(b).len() + m.drain_inbox(c).len(), 2);
        assert!(m.drain_inbox(a).is_empty(), "no loopback");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(10.0, 0.0, 2.0));
        for _ in 0..20 {
            let _ = m.transmit(a, Frame::data(a, b, vec![0; 32]), SimTime::ZERO);
        }
        assert_eq!(m.node_stats(a).tx_frames, 20);
        assert!(m.node_stats(b).rx_delivered > 0);
        let link = m.link_stats(a, b).unwrap();
        assert_eq!(link.attempted, 20);
        assert!(m.channel_busy_ms() > 0.0);
    }

    #[test]
    fn drain_inbox_into_swaps_and_clears() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(10.0, 0.0, 2.0));
        for i in 0..20 {
            let _ = m.transmit(
                a,
                Frame::data(a, b, vec![i as u8]).with_seq(i),
                SimTime::ZERO,
            );
        }
        let mut scratch = vec![];
        m.drain_inbox_into(b, &mut scratch);
        assert!(!scratch.is_empty());
        assert!(m.drain_inbox(b).is_empty(), "inbox must be drained");
        m.drain_inbox_into(b, &mut scratch);
        assert!(scratch.is_empty(), "second drain clears the scratch");
    }

    #[test]
    fn spoofed_source_is_recorded_as_claimed() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(10.0, 0.0, 2.0));
        let ghost = m.add_node(Vec3::new(10.0, 10.0, 2.0));
        let _ = m.transmit(a, Frame::data(ghost, b, vec![1]), SimTime::ZERO);
        let rx = m.drain_inbox(b);
        assert_eq!(rx.len(), 1);
        // The receiver sees the claimed source, not the true transmitter.
        assert_eq!(rx[0].frame.claimed_src, ghost);
    }

    #[test]
    fn node_position_updates_affect_link() {
        let mut m = medium();
        let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
        let b = m.add_node(Vec3::new(10.0, 0.0, 2.0));
        let near: f64 = m
            .transmit(a, Frame::data(a, b, vec![]), SimTime::ZERO)
            .rssi_dbm;
        m.set_position(b, Vec3::new(1000.0, 0.0, 2.0));
        let far: f64 = m
            .transmit(a, Frame::data(a, b, vec![]), SimTime::ZERO)
            .rssi_dbm;
        assert!(far < near - 30.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut m = Medium::new(MediumConfig::default(), SimRng::from_seed(seed));
            let a = m.add_node(Vec3::new(0.0, 0.0, 2.0));
            let b = m.add_node(Vec3::new(150.0, 0.0, 2.0));
            (0..50)
                .map(|_| {
                    m.transmit(a, Frame::data(a, b, vec![0; 64]), SimTime::ZERO)
                        .delivered
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }
}
