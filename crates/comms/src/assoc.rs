//! Association state and management-frame protection.
//!
//! Worksite machines associate with the base station (the access point of
//! the internal network — forestry sites have no external infrastructure,
//! per Table I's "remote and isolated locations"). Legacy management
//! frames are unauthenticated, so a forged de-auth disassociates a victim;
//! enabling management-frame protection (MFP) makes receivers drop forged
//! de-auths. Re-association after a de-auth costs a configurable delay,
//! which is what the attack converts into denial of service.

use crate::frame::NodeId;
use std::collections::HashMap;

/// Association state of one station to the access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// Associated and able to exchange data frames.
    Associated,
    /// Disassociated; re-association completes at the stored time (ms).
    Reassociating {
        /// Sim time (ms) when re-association completes.
        until_ms: u64,
    },
}

/// Association table kept by the access point / each station.
#[derive(Debug, Clone)]
pub struct AssociationTable {
    states: HashMap<NodeId, AssocState>,
    /// Whether management-frame protection is enabled network-wide.
    mfp_enabled: bool,
    /// Time to complete a re-association, ms.
    reassoc_delay_ms: u64,
}

impl AssociationTable {
    /// Creates a table; `mfp_enabled` controls de-auth forgery resistance.
    #[must_use]
    pub fn new(mfp_enabled: bool, reassoc_delay_ms: u64) -> Self {
        AssociationTable {
            states: HashMap::new(),
            mfp_enabled,
            reassoc_delay_ms,
        }
    }

    /// Resets the table to the state [`AssociationTable::new`] would
    /// produce, keeping the map allocation (episode-reset fast path).
    pub fn reset(&mut self, mfp_enabled: bool, reassoc_delay_ms: u64) {
        self.states.clear();
        self.mfp_enabled = mfp_enabled;
        self.reassoc_delay_ms = reassoc_delay_ms;
    }

    /// Registers `node` as associated.
    pub fn associate(&mut self, node: NodeId) {
        self.states.insert(node, AssocState::Associated);
    }

    /// Whether `node` can currently exchange data frames.
    #[must_use]
    pub fn is_associated(&self, node: NodeId, now_ms: u64) -> bool {
        match self.states.get(&node) {
            Some(AssocState::Associated) => true,
            Some(AssocState::Reassociating { until_ms }) => now_ms >= *until_ms,
            None => false,
        }
    }

    /// Handles a received de-auth targeting `victim`, with `authentic`
    /// indicating whether the de-auth was genuinely sent by the network
    /// (the medium knows the true transmitter).
    ///
    /// Returns `true` when the de-auth took effect.
    pub fn handle_deauth(&mut self, victim: NodeId, authentic: bool, now_ms: u64) -> bool {
        if self.mfp_enabled && !authentic {
            return false; // protected management frames: forgery dropped
        }
        if self.states.contains_key(&victim) {
            self.states.insert(
                victim,
                AssocState::Reassociating {
                    until_ms: now_ms + self.reassoc_delay_ms,
                },
            );
            true
        } else {
            false
        }
    }

    /// Promotes any node whose re-association delay has elapsed.
    pub fn tick(&mut self, now_ms: u64) {
        for state in self.states.values_mut() {
            if let AssocState::Reassociating { until_ms } = state {
                if now_ms >= *until_ms {
                    *state = AssocState::Associated;
                }
            }
        }
    }

    /// Whether management-frame protection is on.
    #[must_use]
    pub fn mfp_enabled(&self) -> bool {
        self.mfp_enabled
    }

    /// Number of currently registered stations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no stations are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associate_and_query() {
        let mut t = AssociationTable::new(false, 1000);
        assert!(!t.is_associated(NodeId(1), 0));
        t.associate(NodeId(1));
        assert!(t.is_associated(NodeId(1), 0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn forged_deauth_works_without_mfp() {
        let mut t = AssociationTable::new(false, 1000);
        t.associate(NodeId(1));
        assert!(t.handle_deauth(NodeId(1), false, 100));
        assert!(!t.is_associated(NodeId(1), 500));
        // Recovers after the delay.
        assert!(t.is_associated(NodeId(1), 1100));
    }

    #[test]
    fn forged_deauth_dropped_with_mfp() {
        let mut t = AssociationTable::new(true, 1000);
        t.associate(NodeId(1));
        assert!(!t.handle_deauth(NodeId(1), false, 100));
        assert!(t.is_associated(NodeId(1), 100));
    }

    #[test]
    fn authentic_deauth_works_even_with_mfp() {
        let mut t = AssociationTable::new(true, 1000);
        t.associate(NodeId(1));
        assert!(t.handle_deauth(NodeId(1), true, 100));
        assert!(!t.is_associated(NodeId(1), 100));
    }

    #[test]
    fn deauth_on_unknown_node_is_noop() {
        let mut t = AssociationTable::new(false, 1000);
        assert!(!t.handle_deauth(NodeId(9), false, 0));
    }

    #[test]
    fn tick_promotes_recovered_nodes() {
        let mut t = AssociationTable::new(false, 1000);
        t.associate(NodeId(1));
        t.handle_deauth(NodeId(1), false, 0);
        t.tick(500);
        assert!(!t.is_associated(NodeId(1), 500));
        t.tick(1000);
        assert!(t.is_associated(NodeId(1), 1000));
    }

    #[test]
    fn repeated_deauth_extends_outage() {
        let mut t = AssociationTable::new(false, 1000);
        t.associate(NodeId(1));
        t.handle_deauth(NodeId(1), false, 0);
        // Attacker re-sends just before recovery.
        t.handle_deauth(NodeId(1), false, 900);
        assert!(!t.is_associated(NodeId(1), 1100));
        assert!(t.is_associated(NodeId(1), 1900));
    }
}
