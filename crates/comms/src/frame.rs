//! Radio frames: data and (unprotected or protected) management frames.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a radio node on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// The kind of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FrameKind {
    /// Application data.
    Data,
    /// Association request (joining the network).
    AssocRequest,
    /// Association response.
    AssocResponse,
    /// De-authentication / disassociation notice. In legacy Wi-Fi this is
    /// unauthenticated — the de-auth attack forges it.
    Deauth,
    /// Beacon (periodic presence announcement).
    Beacon,
}

impl FrameKind {
    /// Short stable name of the frame kind, used as a telemetry label.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            FrameKind::Data => "data",
            FrameKind::AssocRequest => "assoc-request",
            FrameKind::AssocResponse => "assoc-response",
            FrameKind::Deauth => "deauth",
            FrameKind::Beacon => "beacon",
        }
    }
}

/// Fixed per-frame on-air header overhead in bytes, shared by every
/// frame kind. Exposed so airtime models (e.g. the fleet's shadow-site
/// delivery accounting) can cost a frame without building one.
pub const FRAME_OVERHEAD_BYTES: usize = 34;

/// A frame on the medium.
///
/// The `claimed_src` field is what the frame *says* its source is; the
/// medium records the true transmitter separately. Spoofing = setting
/// `claimed_src` ≠ the transmitting node. Receivers only ever see
/// `claimed_src` — exactly the asymmetry the de-auth attack exploits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The source address written into the frame (spoofable).
    pub claimed_src: NodeId,
    /// Destination address; `None` = broadcast.
    pub dst: Option<NodeId>,
    /// Frame kind.
    pub kind: FrameKind,
    /// Payload bytes (ciphertext for protected links).
    pub payload: Vec<u8>,
    /// Sequence number stamped by the sender.
    pub seq: u64,
}

impl Frame {
    /// Creates a data frame.
    #[must_use]
    pub fn data(src: NodeId, dst: NodeId, payload: Vec<u8>) -> Self {
        Frame {
            claimed_src: src,
            dst: Some(dst),
            kind: FrameKind::Data,
            payload,
            seq: 0,
        }
    }

    /// Creates a broadcast data frame.
    #[must_use]
    pub fn broadcast(src: NodeId, payload: Vec<u8>) -> Self {
        Frame {
            claimed_src: src,
            dst: None,
            kind: FrameKind::Data,
            payload,
            seq: 0,
        }
    }

    /// Creates a de-auth frame claiming to come from `claimed_src`.
    #[must_use]
    pub fn deauth(claimed_src: NodeId, dst: NodeId) -> Self {
        Frame {
            claimed_src,
            dst: Some(dst),
            kind: FrameKind::Deauth,
            payload: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an association request.
    #[must_use]
    pub fn assoc_request(src: NodeId, dst: NodeId) -> Self {
        Frame {
            claimed_src: src,
            dst: Some(dst),
            kind: FrameKind::AssocRequest,
            payload: Vec::new(),
            seq: 0,
        }
    }

    /// Sets the sequence number (builder style).
    #[must_use]
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// On-air size in bytes (header + payload).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        FRAME_OVERHEAD_BYTES + self.payload.len()
    }

    /// Whether this frame is addressed to `node` (directly or broadcast).
    #[must_use]
    pub fn addressed_to(&self, node: NodeId) -> bool {
        match self.dst {
            Some(d) => d == node,
            None => self.claimed_src != node,
        }
    }
}

/// A frame as received: the frame plus reception metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedFrame {
    /// The frame contents.
    pub frame: Frame,
    /// Received signal strength in dBm.
    pub rssi_dbm: f64,
    /// Signal-to-interference-plus-noise ratio in dB.
    pub sinr_db: f64,
    /// Reception time in milliseconds of sim time.
    pub at_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(
            Frame::data(NodeId(1), NodeId(2), vec![]).kind,
            FrameKind::Data
        );
        assert_eq!(Frame::deauth(NodeId(1), NodeId(2)).kind, FrameKind::Deauth);
        assert_eq!(
            Frame::assoc_request(NodeId(1), NodeId(2)).kind,
            FrameKind::AssocRequest
        );
        assert_eq!(Frame::broadcast(NodeId(1), vec![]).dst, None);
    }

    #[test]
    fn wire_len_includes_header() {
        assert_eq!(
            Frame::data(NodeId(1), NodeId(2), vec![0; 100]).wire_len(),
            134
        );
        assert_eq!(Frame::deauth(NodeId(1), NodeId(2)).wire_len(), 34);
    }

    #[test]
    fn addressing() {
        let f = Frame::data(NodeId(1), NodeId(2), vec![]);
        assert!(f.addressed_to(NodeId(2)));
        assert!(!f.addressed_to(NodeId(3)));
        let b = Frame::broadcast(NodeId(1), vec![]);
        assert!(b.addressed_to(NodeId(2)));
        assert!(b.addressed_to(NodeId(3)));
        assert!(
            !b.addressed_to(NodeId(1)),
            "broadcast does not loop back to sender"
        );
    }

    #[test]
    fn seq_builder() {
        let f = Frame::data(NodeId(1), NodeId(2), vec![]).with_seq(42);
        assert_eq!(f.seq, 42);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node-7");
    }
}
