//! Link and node telemetry — the raw signal the intrusion detection
//! system observes.

use crate::frame::FrameKind;
use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average with a fixed smoothing factor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    value: Option<f64>,
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { value: None, alpha }
    }

    /// Feeds a sample.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// Current smoothed value, if any samples have arrived.
    #[must_use]
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

/// Per-receiving-node telemetry counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStats {
    /// Frames this node transmitted.
    pub tx_frames: u64,
    /// Frames addressed to this node that were delivered.
    pub rx_delivered: u64,
    /// Frames addressed to this node lost to channel errors.
    pub rx_lost: u64,
    /// De-auth frames received.
    pub deauth_rx: u64,
    /// Association requests received.
    pub assoc_rx: u64,
    /// Smoothed SINR of delivered frames, dB.
    pub sinr_ewma: Ewma,
    /// Smoothed RSSI of delivered frames, dBm.
    pub rssi_ewma: Ewma,
    /// Smoothed noise+interference floor observed, dBm.
    pub noise_ewma: Ewma,
}

impl Default for NodeStats {
    fn default() -> Self {
        NodeStats {
            tx_frames: 0,
            rx_delivered: 0,
            rx_lost: 0,
            deauth_rx: 0,
            assoc_rx: 0,
            sinr_ewma: Ewma::new(0.2),
            rssi_ewma: Ewma::new(0.2),
            noise_ewma: Ewma::new(0.2),
        }
    }
}

impl NodeStats {
    /// Records a delivered frame of the given kind.
    pub fn record_delivery(&mut self, kind: FrameKind, rssi_dbm: f64, sinr_db: f64) {
        self.rx_delivered += 1;
        self.sinr_ewma.update(sinr_db);
        self.rssi_ewma.update(rssi_dbm);
        match kind {
            FrameKind::Deauth => self.deauth_rx += 1,
            FrameKind::AssocRequest => self.assoc_rx += 1,
            _ => {}
        }
    }

    /// Records a frame lost to channel errors.
    pub fn record_loss(&mut self) {
        self.rx_lost += 1;
    }

    /// Records the observed noise+interference floor.
    pub fn record_noise(&mut self, noise_dbm: f64) {
        self.noise_ewma.update(noise_dbm);
    }

    /// Delivery ratio over everything addressed to this node.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.rx_delivered + self.rx_lost;
        if total == 0 {
            1.0
        } else {
            self.rx_delivered as f64 / total as f64
        }
    }
}

/// Per-directed-link counters (src → dst).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Frames attempted on this link.
    pub attempted: u64,
    /// Frames delivered on this link.
    pub delivered: u64,
}

impl LinkStats {
    /// Delivery ratio for this link.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.update(10.0);
        assert_eq!(e.get(), Some(10.0));
        for _ in 0..50 {
            e.update(20.0);
        }
        assert!((e.get().unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn node_stats_counters() {
        let mut s = NodeStats::default();
        s.record_delivery(FrameKind::Data, -70.0, 20.0);
        s.record_delivery(FrameKind::Deauth, -70.0, 20.0);
        s.record_delivery(FrameKind::AssocRequest, -70.0, 20.0);
        s.record_loss();
        assert_eq!(s.rx_delivered, 3);
        assert_eq!(s.rx_lost, 1);
        assert_eq!(s.deauth_rx, 1);
        assert_eq!(s.assoc_rx, 1);
        assert!((s.delivery_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_delivery_ratio_is_one() {
        assert_eq!(NodeStats::default().delivery_ratio(), 1.0);
        assert_eq!(LinkStats::default().delivery_ratio(), 1.0);
    }

    #[test]
    fn link_stats_ratio() {
        let l = LinkStats {
            attempted: 10,
            delivered: 7,
        };
        assert!((l.delivery_ratio() - 0.7).abs() < 1e-9);
    }
}
