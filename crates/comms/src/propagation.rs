//! Radio propagation: path loss, foliage, weather, SINR and packet error.
//!
//! The model is the standard log-distance path-loss model with log-normal
//! shadowing, plus a per-tree foliage loss term (forest canopies are a
//! first-order effect at worksite ranges) and the weather attenuation from
//! [`silvasec_sim::weather`].

use silvasec_sim::geom::Vec3;
use silvasec_sim::rng::SimRng;
use silvasec_sim::vegetation::TreeStand;
use silvasec_sim::weather::Weather;

/// Propagation model parameters.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Path loss at the 1 m reference distance, dB.
    pub pl0_db: f64,
    /// Path-loss exponent (2.0 free space; 2.7–3.5 forest).
    pub exponent: f64,
    /// Standard deviation of log-normal shadowing, dB.
    pub shadowing_std_db: f64,
    /// Foliage loss per tree crossing near the path, dB.
    pub per_tree_db: f64,
    /// Cap on total foliage loss, dB.
    pub max_foliage_db: f64,
    /// Thermal noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// SINR at which the packet error rate is 50%, dB.
    pub per_midpoint_db: f64,
    /// Steepness of the PER curve, dB.
    pub per_slope_db: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            pl0_db: 40.0,
            exponent: 2.8,
            shadowing_std_db: 3.0,
            per_tree_db: 0.8,
            max_foliage_db: 25.0,
            noise_floor_dbm: -94.0,
            per_midpoint_db: 6.0,
            per_slope_db: 1.5,
        }
    }
}

/// Deterministic path loss between two points (no shadowing), dB.
#[must_use]
pub fn path_loss_db(config: &PropagationConfig, from: Vec3, to: Vec3) -> f64 {
    let d = from.distance(to).max(1.0);
    config.pl0_db + 10.0 * config.exponent * d.log10()
}

/// Foliage loss along the path, dB (counts trees whose trunk is within
/// 1.5 m of the 2-D path and whose height reaches the ray).
#[must_use]
pub fn foliage_loss_db(config: &PropagationConfig, stand: &TreeStand, from: Vec3, to: Vec3) -> f64 {
    let a2 = from.xy();
    let b2 = to.xy();
    // Only trees tall enough to reach the link height matter.
    let link_z = from.z.min(to.z);
    let mut crossing_count = 0usize;
    // Visitor form: same trees in the same order as the collecting
    // `trees_near_segment`, without the per-call `Vec` — this runs once
    // per delivery attempt on the radio hot path. The visitor reuses
    // the distance the grid filter already computed, and stops as soon
    // as the crossing count saturates `max_foliage_db` — further
    // crossings cannot change the capped loss.
    stand.for_trees_near_segment_dist(a2, b2, 1.5, |tree, dist| {
        if dist <= 1.5 && tree.height_m >= link_z {
            crossing_count += 1;
            if config.per_tree_db > 0.0
                && crossing_count as f64 * config.per_tree_db >= config.max_foliage_db
            {
                return false;
            }
        }
        true
    });
    (crossing_count as f64 * config.per_tree_db).min(config.max_foliage_db)
}

/// FROZEN pre-optimization foliage loss: same value as
/// [`foliage_loss_db`], computed the way the pre-optimization code did —
/// collecting the candidate trees into a per-call `Vec` via the
/// full-rectangle grid scan. Used only by the benchmark's reference arm
/// (see [`crate::Medium::set_reference_physics`]) so that arm pays the
/// pre-optimization per-delivery cost. Do not optimize.
#[must_use]
pub fn foliage_loss_db_reference(
    config: &PropagationConfig,
    stand: &TreeStand,
    from: Vec3,
    to: Vec3,
) -> f64 {
    let a2 = from.xy();
    let b2 = to.xy();
    let link_z = from.z.min(to.z);
    let crossing_count = stand
        .trees_near_segment_reference(a2, b2, 1.5)
        .iter()
        .filter(|tree| tree.position.distance_to_segment(a2, b2) <= 1.5 && tree.height_m >= link_z)
        .count();
    (crossing_count as f64 * config.per_tree_db).min(config.max_foliage_db)
}

/// Received power for a transmission, dBm (with stochastic shadowing).
#[must_use]
pub fn received_power_dbm(
    config: &PropagationConfig,
    tx_power_dbm: f64,
    stand: &TreeStand,
    weather: Weather,
    from: Vec3,
    to: Vec3,
    rng: &mut SimRng,
) -> f64 {
    let shadowing = rng.normal(0.0, config.shadowing_std_db);
    tx_power_dbm
        - path_loss_db(config, from, to)
        - foliage_loss_db(config, stand, from, to)
        - weather.radio_attenuation_db()
        - shadowing
}

/// FROZEN pre-optimization received power: identical value and RNG
/// draws to [`received_power_dbm`], but through
/// [`foliage_loss_db_reference`] so the benchmark's reference arm pays
/// the pre-optimization foliage cost. Do not optimize.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn received_power_dbm_reference(
    config: &PropagationConfig,
    tx_power_dbm: f64,
    stand: &TreeStand,
    weather: Weather,
    from: Vec3,
    to: Vec3,
    rng: &mut SimRng,
) -> f64 {
    let shadowing = rng.normal(0.0, config.shadowing_std_db);
    tx_power_dbm
        - path_loss_db(config, from, to)
        - foliage_loss_db_reference(config, stand, from, to)
        - weather.radio_attenuation_db()
        - shadowing
}

/// Converts dBm to milliwatts.
#[must_use]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
///
/// # Panics
///
/// Panics if `mw` is not positive.
#[must_use]
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "power must be positive");
    10.0 * mw.log10()
}

/// SINR in dB given signal power and total interference power.
#[must_use]
pub fn sinr_db(config: &PropagationConfig, signal_dbm: f64, interference_dbm: Option<f64>) -> f64 {
    let noise_mw = dbm_to_mw(config.noise_floor_dbm);
    let interference_mw = interference_dbm.map_or(0.0, dbm_to_mw);
    signal_dbm - mw_to_dbm(noise_mw + interference_mw)
}

/// Packet error rate for a given SINR (logistic curve).
#[must_use]
pub fn packet_error_rate(config: &PropagationConfig, sinr_db: f64) -> f64 {
    1.0 / (1.0 + ((sinr_db - config.per_midpoint_db) / config.per_slope_db).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::geom::Vec2;
    use silvasec_sim::vegetation::{Tree, TreeStand};

    fn cfg() -> PropagationConfig {
        PropagationConfig::default()
    }

    fn empty_stand() -> TreeStand {
        TreeStand::from_trees(Vec::new(), 1000.0)
    }

    #[test]
    fn path_loss_grows_with_distance() {
        let c = cfg();
        let a = Vec3::new(0.0, 0.0, 2.0);
        let pl10 = path_loss_db(&c, a, Vec3::new(10.0, 0.0, 2.0));
        let pl100 = path_loss_db(&c, a, Vec3::new(100.0, 0.0, 2.0));
        // One decade of distance adds 10·n dB.
        assert!((pl100 - pl10 - 28.0).abs() < 0.1);
    }

    #[test]
    fn path_loss_clamps_below_reference() {
        let c = cfg();
        let a = Vec3::new(0.0, 0.0, 2.0);
        assert_eq!(
            path_loss_db(&c, a, Vec3::new(0.5, 0.0, 2.0)),
            path_loss_db(&c, a, Vec3::new(1.0, 0.0, 2.0))
        );
    }

    #[test]
    fn foliage_counts_blocking_trees() {
        let c = cfg();
        let trees = vec![
            Tree {
                position: Vec2::new(50.0, 0.5),
                height_m: 20.0,
                trunk_radius_m: 0.2,
                canopy_radius_m: 2.0,
            },
            Tree {
                position: Vec2::new(60.0, 30.0), // far off the path
                height_m: 20.0,
                trunk_radius_m: 0.2,
                canopy_radius_m: 2.0,
            },
        ];
        let stand = TreeStand::from_trees(trees, 200.0);
        let loss = foliage_loss_db(
            &c,
            &stand,
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(100.0, 0.0, 2.0),
        );
        assert!((loss - c.per_tree_db).abs() < 1e-9, "loss {loss}");
    }

    #[test]
    fn foliage_ignores_short_trees_under_high_link() {
        let c = cfg();
        let trees = vec![Tree {
            position: Vec2::new(50.0, 0.0),
            height_m: 5.0,
            trunk_radius_m: 0.2,
            canopy_radius_m: 1.0,
        }];
        let stand = TreeStand::from_trees(trees, 200.0);
        // Drone-to-drone link at 50 m altitude.
        let loss = foliage_loss_db(
            &c,
            &stand,
            Vec3::new(0.0, 0.0, 50.0),
            Vec3::new(100.0, 0.0, 50.0),
        );
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn foliage_loss_caps() {
        let c = cfg();
        let trees: Vec<Tree> = (0..100)
            .map(|i| Tree {
                position: Vec2::new(i as f64, 0.0),
                height_m: 20.0,
                trunk_radius_m: 0.2,
                canopy_radius_m: 2.0,
            })
            .collect();
        let stand = TreeStand::from_trees(trees, 200.0);
        let loss = foliage_loss_db(
            &c,
            &stand,
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(100.0, 0.0, 2.0),
        );
        assert_eq!(loss, c.max_foliage_db);
    }

    #[test]
    fn dbm_mw_roundtrip() {
        for dbm in [-90.0, -30.0, 0.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn sinr_without_interference_is_snr() {
        let c = cfg();
        let s = sinr_db(&c, -70.0, None);
        assert!((s - 24.0).abs() < 1e-9);
    }

    #[test]
    fn interference_reduces_sinr() {
        let c = cfg();
        let clean = sinr_db(&c, -70.0, None);
        let jammed = sinr_db(&c, -70.0, Some(-75.0));
        assert!(jammed < clean);
        // Strong jammer dominates noise: SINR ≈ S - I.
        let strong = sinr_db(&c, -70.0, Some(-60.0));
        assert!((strong - (-10.0)).abs() < 0.2, "strong {strong}");
    }

    #[test]
    fn per_curve_shape() {
        let c = cfg();
        assert!((packet_error_rate(&c, c.per_midpoint_db) - 0.5).abs() < 1e-9);
        assert!(packet_error_rate(&c, 30.0) < 1e-4);
        assert!(packet_error_rate(&c, -10.0) > 0.999);
        // Monotone decreasing.
        let mut last = 1.0;
        for i in -20..40 {
            let per = packet_error_rate(&c, i as f64);
            assert!(per <= last);
            last = per;
        }
    }

    #[test]
    fn received_power_reasonable_at_100m() {
        let c = cfg();
        let mut rng = SimRng::from_seed(1);
        let p = received_power_dbm(
            &c,
            20.0,
            &empty_stand(),
            Weather::Clear,
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(100.0, 0.0, 2.0),
            &mut rng,
        );
        // 20 − 40 − 56 = −76 dBm ± shadowing.
        assert!((-95.0..=-60.0).contains(&p), "p = {p}");
    }

    #[test]
    fn weather_attenuates() {
        let c = PropagationConfig {
            shadowing_std_db: 0.0,
            ..cfg()
        };
        let mut rng = SimRng::from_seed(2);
        let a = Vec3::new(0.0, 0.0, 2.0);
        let b = Vec3::new(100.0, 0.0, 2.0);
        let clear = received_power_dbm(&c, 20.0, &empty_stand(), Weather::Clear, a, b, &mut rng);
        let rain = received_power_dbm(&c, 20.0, &empty_stand(), Weather::HeavyRain, a, b, &mut rng);
        assert!((clear - rain - 3.0).abs() < 1e-9);
    }
}
