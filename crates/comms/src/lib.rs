//! Simulated wireless medium for the forestry worksite.
//!
//! The mining-AHS survey the paper leans on (Gaber et al.) locates the
//! dominant cybersecurity issues of autonomous haulage in the *wireless
//! communication layer*: interference, channel utilization, jamming,
//! Wi-Fi de-authentication and GNSS attacks. This crate models that layer
//! at the abstraction those attacks are defined at:
//!
//! * [`propagation`] — log-distance path loss with shadowing, foliage and
//!   weather attenuation; SINR and packet-error computation.
//! * [`frame`] — data and management frames (including de-auth).
//! * [`medium`] — the shared radio medium: nodes, interferers (jammers),
//!   transmission, delivery and per-node inboxes.
//! * [`assoc`] — association state and management-frame protection
//!   (the defence against forged de-auth).
//! * [`stats`] — per-link and per-node telemetry the IDS consumes.
//!
//! # Example
//!
//! ```
//! use silvasec_comms::prelude::*;
//! use silvasec_sim::prelude::*;
//!
//! let mut medium = Medium::new(MediumConfig::default(), SimRng::from_seed(1));
//! let a = medium.add_node(Vec3::new(0.0, 0.0, 2.0));
//! let b = medium.add_node(Vec3::new(50.0, 0.0, 2.0));
//! let outcome = medium.transmit(a, Frame::data(a, b, vec![1, 2, 3]), SimTime::ZERO);
//! assert!(outcome.delivered);
//! assert_eq!(medium.drain_inbox(b).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod frame;
pub mod medium;
pub mod propagation;
pub mod stats;

pub use frame::{Frame, FrameKind, NodeId, ReceivedFrame, FRAME_OVERHEAD_BYTES};
pub use medium::{Medium, MediumConfig, TransmitOutcome};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::assoc::AssociationTable;
    pub use crate::frame::{Frame, FrameKind, NodeId};
    pub use crate::medium::{Medium, MediumConfig, TransmitOutcome};
    pub use crate::stats::{LinkStats, NodeStats};
}
