//! Ground workers: the actors the safety functions must detect.
//!
//! The paper's key safety function is people detection near the autonomous
//! forwarder (Sec. III-A, Figure 2). Humans here follow a waypoint
//! random-walk: pick a destination, walk there at a sampled speed, dwell,
//! repeat. A configurable fraction of waypoints is biased towards the
//! machine work area to create genuinely dangerous approach events.

use crate::geom::Vec2;
use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of a human actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HumanId(pub u32);

/// Movement behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct HumanConfig {
    /// Mean walking speed in m/s.
    pub mean_speed: f64,
    /// Dwell time range at each waypoint, seconds.
    pub dwell_secs: (f64, f64),
    /// Probability that a new waypoint is biased towards the work area.
    pub work_area_bias: f64,
}

impl Default for HumanConfig {
    fn default() -> Self {
        HumanConfig {
            mean_speed: 1.3,
            dwell_secs: (5.0, 30.0),
            work_area_bias: 0.3,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Activity {
    Walking { target: Vec2, speed: f64 },
    Dwelling { remaining_s: f64 },
}

/// A ground worker moving through the worksite.
#[derive(Debug, Clone)]
pub struct Human {
    /// This worker's id.
    pub id: HumanId,
    /// Current position.
    pub position: Vec2,
    /// Height of the torso centre above ground (detection target).
    pub torso_height_m: f64,
    config: HumanConfig,
    activity: Activity,
}

impl Human {
    /// Creates a worker at `position`.
    #[must_use]
    pub fn new(id: HumanId, position: Vec2, config: HumanConfig) -> Self {
        Human {
            id,
            position,
            torso_height_m: 1.2,
            config,
            activity: Activity::Dwelling { remaining_s: 0.0 },
        }
    }

    /// Whether the worker is currently moving.
    #[must_use]
    pub fn is_walking(&self) -> bool {
        matches!(self.activity, Activity::Walking { .. })
    }

    /// Advances the worker by `dt` inside the square area `[0, size_m]²`,
    /// with `work_area` the point dangerous waypoints are biased towards.
    pub fn step(&mut self, dt: SimDuration, size_m: f64, work_area: Vec2, rng: &mut SimRng) {
        let dt_s = dt.as_secs_f64();
        match self.activity {
            Activity::Dwelling { remaining_s } => {
                let remaining = remaining_s - dt_s;
                if remaining <= 0.0 {
                    let target = self.pick_waypoint(size_m, work_area, rng);
                    let speed = rng.normal(self.config.mean_speed, 0.25).clamp(0.4, 2.5);
                    self.activity = Activity::Walking { target, speed };
                } else {
                    self.activity = Activity::Dwelling {
                        remaining_s: remaining,
                    };
                }
            }
            Activity::Walking { target, speed } => {
                let to_target = target - self.position;
                let step_len = speed * dt_s;
                if to_target.length() <= step_len {
                    self.position = target;
                    let dwell =
                        rng.uniform_range(self.config.dwell_secs.0, self.config.dwell_secs.1);
                    self.activity = Activity::Dwelling { remaining_s: dwell };
                } else {
                    self.position = self.position + to_target.normalized() * step_len;
                }
            }
        }
        // Numerical safety: stay inside the map.
        self.position.x = self.position.x.clamp(0.0, size_m);
        self.position.y = self.position.y.clamp(0.0, size_m);
    }

    fn pick_waypoint(&self, size_m: f64, work_area: Vec2, rng: &mut SimRng) -> Vec2 {
        if rng.chance(self.config.work_area_bias) {
            // Point near the machine work area (within 25 m).
            let angle = rng.uniform_range(0.0, std::f64::consts::TAU);
            let radius = rng.uniform_range(3.0, 25.0);
            Vec2::new(
                (work_area.x + radius * angle.cos()).clamp(0.0, size_m),
                (work_area.y + radius * angle.sin()).clamp(0.0, size_m),
            )
        } else {
            Vec2::new(
                rng.uniform_range(0.0, size_m),
                rng.uniform_range(0.0, size_m),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(seed: u64, steps: usize, bias: f64) -> Vec<Vec2> {
        let config = HumanConfig {
            work_area_bias: bias,
            ..HumanConfig::default()
        };
        let mut h = Human::new(HumanId(1), Vec2::new(50.0, 50.0), config);
        let mut rng = SimRng::from_seed(seed);
        let mut track = Vec::new();
        for _ in 0..steps {
            h.step(
                SimDuration::from_millis(500),
                100.0,
                Vec2::new(80.0, 80.0),
                &mut rng,
            );
            track.push(h.position);
        }
        track
    }

    #[test]
    fn stays_in_bounds() {
        for p in walk(1, 5000, 0.3) {
            assert!((0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y));
        }
    }

    #[test]
    fn actually_moves() {
        let track = walk(2, 2000, 0.3);
        let total: f64 = track.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!(total > 50.0, "worker barely moved: {total} m");
    }

    #[test]
    fn speed_is_physical() {
        let track = walk(3, 5000, 0.3);
        for w in track.windows(2) {
            let step = w[0].distance(w[1]);
            // 0.5 s per step, max clamped speed 2.5 m/s → ≤ 1.25 m + eps.
            assert!(step <= 1.3, "step of {step} m in 0.5 s");
        }
    }

    #[test]
    fn work_area_bias_draws_worker_closer() {
        let near_time = |bias: f64| -> usize {
            walk(4, 8000, bias)
                .iter()
                .filter(|p| p.distance(Vec2::new(80.0, 80.0)) < 25.0)
                .count()
        };
        let biased = near_time(0.9);
        let unbiased = near_time(0.0);
        assert!(
            biased > unbiased,
            "bias should increase time near work area ({biased} vs {unbiased})"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(walk(5, 100, 0.3), walk(5, 100, 0.3));
    }

    #[test]
    fn dwell_and_walk_alternate() {
        let config = HumanConfig::default();
        let mut h = Human::new(HumanId(1), Vec2::new(10.0, 10.0), config);
        let mut rng = SimRng::from_seed(6);
        let mut saw_walking = false;
        let mut saw_dwelling = false;
        for _ in 0..2000 {
            h.step(
                SimDuration::from_millis(500),
                100.0,
                Vec2::new(50.0, 50.0),
                &mut rng,
            );
            if h.is_walking() {
                saw_walking = true;
            } else {
                saw_dwelling = true;
            }
        }
        assert!(saw_walking && saw_dwelling);
    }
}
