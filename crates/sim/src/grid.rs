//! A uniform 2-D grid index over dynamic point entities (the humans).
//!
//! The same discipline as [`crate::vegetation::TreeStand`]'s internal
//! tree grid, applied to entities that *move*: the index is rebuilt
//! wholesale at world (re)generation and updated incrementally as
//! positions change, so range queries (sensor sweeps, the safety
//! supervisor's danger-zone test) only examine nearby candidates
//! instead of scanning every entity.
//!
//! # Equivalence contract
//!
//! [`EntityGrid::fill_candidates`] returns a **conservative superset**
//! of the entities within `radius` of `center` (2-D distance), in
//! **ascending entity-index order** with no duplicates. A caller that
//! re-applies its exact original per-entity filters to the candidates
//! therefore sees the same accepted entities, in the same order, as a
//! full linear scan — so detection output, RNG draw order and telemetry
//! traces are bit-identical to the unculled path. This is asserted by
//! proptest (`grid_candidates_match_linear_scan`) and by the worksite's
//! frozen tick oracle.

use crate::geom::Vec2;

/// Grid cell edge length in metres. Matches the tree stand's cell size;
/// with a handful of workers per site the exact value only shifts the
/// constant factor.
const CELL_M: f64 = 20.0;

/// A uniform grid over `[0, size_m]²` binning entity indices by
/// position.
#[derive(Debug, Clone, Default)]
pub struct EntityGrid {
    size_m: f64,
    cells: usize,
    /// `cells × cells` flat bins of entity indices.
    bins: Vec<Vec<u32>>,
    /// Entity index → flat bin index currently holding it.
    bin_of: Vec<u32>,
}

impl EntityGrid {
    /// Creates an empty grid; call [`EntityGrid::rebuild`] before use.
    #[must_use]
    pub fn new() -> Self {
        EntityGrid::default()
    }

    fn flat_bin(&self, p: Vec2) -> u32 {
        let gx = ((p.x / CELL_M) as usize).min(self.cells - 1);
        let gy = ((p.y / CELL_M) as usize).min(self.cells - 1);
        (gy * self.cells + gx) as u32
    }

    /// Rebuilds the index over `positions` for a `size_m`-sided world,
    /// reusing every allocation from the previous build. Each bin is
    /// pre-reserved to the full entity count so later incremental
    /// [`EntityGrid::update`]s never allocate, whatever the entities'
    /// trajectories.
    pub fn rebuild<I>(&mut self, size_m: f64, positions: I)
    where
        I: IntoIterator<Item = Vec2>,
    {
        self.size_m = size_m;
        self.cells = (size_m / CELL_M).ceil().max(1.0) as usize;
        let bin_count = self.cells * self.cells;
        for bin in &mut self.bins {
            bin.clear();
        }
        if self.bins.len() < bin_count {
            self.bins.resize_with(bin_count, Vec::new);
        }
        self.bin_of.clear();
        for (i, p) in positions.into_iter().enumerate() {
            let b = self.flat_bin(p);
            self.bins[b as usize].push(i as u32);
            self.bin_of.push(b);
        }
        let n = self.bin_of.len();
        for bin in &mut self.bins[..bin_count] {
            bin.reserve(n.saturating_sub(bin.len()));
        }
    }

    /// Number of indexed entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bin_of.len()
    }

    /// Whether the grid indexes no entities.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bin_of.is_empty()
    }

    /// Moves entity `index` to `new_pos`, rebinning it if it crossed a
    /// cell boundary. Order within a bin is not maintained (queries
    /// sort); no allocation occurs (bins are pre-reserved by
    /// [`EntityGrid::rebuild`]).
    pub fn update(&mut self, index: usize, new_pos: Vec2) {
        let new_bin = self.flat_bin(new_pos);
        let old_bin = self.bin_of[index];
        if new_bin == old_bin {
            return;
        }
        let old = &mut self.bins[old_bin as usize];
        if let Some(slot) = old.iter().position(|&i| i == index as u32) {
            old.swap_remove(slot);
        }
        self.bins[new_bin as usize].push(index as u32);
        self.bin_of[index] = new_bin;
    }

    /// Fills `out` with a conservative superset of the entity indices
    /// within `radius` metres (2-D) of `center`, sorted ascending, no
    /// duplicates. `out` is cleared first; with warm capacity the call
    /// does not allocate.
    pub fn fill_candidates(&self, center: Vec2, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.bin_of.is_empty() || self.cells == 0 {
            return;
        }
        let min_x = (center.x - radius).max(0.0);
        let max_x = (center.x + radius).min(self.size_m);
        let min_y = (center.y - radius).max(0.0);
        let max_y = (center.y + radius).min(self.size_m);
        let gx0 = ((min_x / CELL_M) as usize).min(self.cells - 1);
        let gx1 = ((max_x / CELL_M) as usize).min(self.cells - 1);
        let gy0 = ((min_y / CELL_M) as usize).min(self.cells - 1);
        let gy1 = ((max_y / CELL_M) as usize).min(self.cells - 1);
        for gy in gy0..=gy1 {
            for gx in gx0..=gx1 {
                out.extend_from_slice(&self.bins[gy * self.cells + gx]);
            }
        }
        // Each entity lives in exactly one bin, so there are no
        // duplicates; sorting restores linear-scan visitation order.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn random_positions(seed: u64, n: usize, size: f64) -> Vec<Vec2> {
        let mut rng = SimRng::from_seed(seed);
        (0..n)
            .map(|_| Vec2::new(rng.uniform_range(0.0, size), rng.uniform_range(0.0, size)))
            .collect()
    }

    fn assert_superset_sorted(grid: &EntityGrid, positions: &[Vec2], center: Vec2, radius: f64) {
        let mut cands = Vec::new();
        grid.fill_candidates(center, radius, &mut cands);
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        for (i, p) in positions.iter().enumerate() {
            if p.distance(center) <= radius {
                assert!(
                    cands.binary_search(&(i as u32)).is_ok(),
                    "entity {i} at {p:?} within {radius} of {center:?} missing"
                );
            }
        }
    }

    #[test]
    fn candidates_cover_every_in_range_entity() {
        let size = 300.0;
        let positions = random_positions(1, 40, size);
        let mut grid = EntityGrid::new();
        grid.rebuild(size, positions.iter().copied());
        for (seed, radius) in [(2u64, 5.0), (3, 45.0), (4, 120.0), (5, 1000.0)] {
            let mut rng = SimRng::from_seed(seed);
            for _ in 0..20 {
                let center = Vec2::new(
                    rng.uniform_range(-20.0, size + 20.0),
                    rng.uniform_range(-20.0, size + 20.0),
                );
                assert_superset_sorted(&grid, &positions, center, radius);
            }
        }
    }

    #[test]
    fn incremental_update_tracks_moves() {
        let size = 200.0;
        let mut positions = random_positions(7, 12, size);
        let mut grid = EntityGrid::new();
        grid.rebuild(size, positions.iter().copied());
        let mut rng = SimRng::from_seed(8);
        for _ in 0..500 {
            let i = rng.below(positions.len() as u64) as usize;
            let p = Vec2::new(rng.uniform_range(0.0, size), rng.uniform_range(0.0, size));
            positions[i] = p;
            grid.update(i, p);
        }
        assert_superset_sorted(&grid, &positions, Vec2::new(100.0, 100.0), 60.0);
        // A full-world query must return every entity exactly once.
        let mut all = Vec::new();
        grid.fill_candidates(Vec2::new(100.0, 100.0), 1000.0, &mut all);
        assert_eq!(all, (0..positions.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn rebuild_reuses_and_resets() {
        let mut grid = EntityGrid::new();
        grid.rebuild(100.0, random_positions(9, 6, 100.0).into_iter());
        assert_eq!(grid.len(), 6);
        let positions = random_positions(10, 3, 250.0);
        grid.rebuild(250.0, positions.iter().copied());
        assert_eq!(grid.len(), 3);
        assert_superset_sorted(&grid, &positions, Vec2::new(50.0, 50.0), 80.0);
    }

    #[test]
    fn empty_grid_queries_are_empty() {
        let grid = EntityGrid::new();
        let mut out = vec![1, 2, 3];
        grid.fill_candidates(Vec2::ZERO, 10.0, &mut out);
        assert!(out.is_empty());
    }
}
