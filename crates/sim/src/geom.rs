//! 2-D and 3-D vector geometry for the world model.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 2-D vector / point in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

/// A 3-D vector / point in metres (z is altitude above datum).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
    /// Altitude in metres.
    pub z: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Distance to another point.
    #[must_use]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Unit vector in the same direction; zero stays zero.
    #[must_use]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len < 1e-12 {
            Vec2::ZERO
        } else {
            self / len
        }
    }

    /// Linear interpolation: `self` at t = 0, `other` at t = 1.
    #[must_use]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Lifts to 3-D with the given altitude.
    #[must_use]
    pub fn with_z(self, z: f64) -> Vec3 {
        Vec3 {
            x: self.x,
            y: self.y,
            z,
        }
    }

    /// Heading angle in radians (atan2 convention, east = 0).
    #[must_use]
    pub fn heading(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Distance from this point to the segment `a`–`b`.
    #[must_use]
    pub fn distance_to_segment(self, a: Vec2, b: Vec2) -> f64 {
        let ab = b - a;
        let len2 = ab.dot(ab);
        if len2 < 1e-12 {
            return self.distance(a);
        }
        let t = ((self - a).dot(ab) / len2).clamp(0.0, 1.0);
        self.distance(a + ab * t)
    }
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Distance to another point.
    #[must_use]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Drops the altitude component.
    #[must_use]
    pub fn xy(self) -> Vec2 {
        Vec2 {
            x: self.x,
            y: self.y,
        }
    }

    /// Linear interpolation: `self` at t = 0, `other` at t = 1.
    #[must_use]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        Vec3 {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
            z: self.z + (other.z - self.z) * t,
        }
    }
}

macro_rules! impl_vec_ops {
    ($t:ty { $($f:ident),+ }) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                <$t>::new($(self.$f + rhs.$f),+)
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                <$t>::new($(self.$f - rhs.$f),+)
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            fn mul(self, rhs: f64) -> $t {
                <$t>::new($(self.$f * rhs),+)
            }
        }
        impl Div<f64> for $t {
            type Output = $t;
            fn div(self, rhs: f64) -> $t {
                <$t>::new($(self.$f / rhs),+)
            }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t {
                <$t>::new($(-self.$f),+)
            }
        }
    };
}

impl_vec_ops!(Vec2 { x, y });
impl_vec_ops!(Vec3 { x, y, z });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn length_and_distance() {
        assert!((Vec2::new(3.0, 4.0).length() - 5.0).abs() < 1e-12);
        assert!((Vec3::new(1.0, 2.0, 2.0).length() - 3.0).abs() < 1e-12);
        assert!((Vec2::new(0.0, 0.0).distance(Vec2::new(0.0, 7.0)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(10.0, 0.0).normalized();
        assert!((v.x - 1.0).abs() < 1e-12 && v.y.abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 10.0));
        let c = Vec3::new(0.0, 0.0, 0.0).lerp(Vec3::new(2.0, 4.0, 6.0), 0.5);
        assert_eq!(c, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn segment_distance() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 0.0);
        assert!((Vec2::new(5.0, 3.0).distance_to_segment(a, b) - 3.0).abs() < 1e-12);
        assert!((Vec2::new(-4.0, 0.0).distance_to_segment(a, b) - 4.0).abs() < 1e-12);
        assert!((Vec2::new(13.0, 4.0).distance_to_segment(a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        assert!((Vec2::new(1.0, 1.0).distance_to_segment(a, a) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn heading_convention() {
        assert!((Vec2::new(1.0, 0.0).heading() - 0.0).abs() < 1e-12);
        assert!((Vec2::new(0.0, 1.0).heading() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn projections() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(p.xy(), Vec2::new(1.0, 2.0));
        assert_eq!(p.xy().with_z(9.0), Vec3::new(1.0, 2.0, 9.0));
    }
}
