//! The composed worksite world: terrain, trees, weather, humans and time.

use crate::geom::{Vec2, Vec3};
use crate::grid::EntityGrid;
use crate::humans::{Human, HumanConfig, HumanId};
use crate::los::{self, Visibility};
use crate::rng::SimRng;
use crate::terrain::{Terrain, TerrainConfig};
use crate::time::{SimDuration, SimTime};
use crate::vegetation::{StandConfig, TreeStand};
use crate::weather::{Weather, WeatherModel};

/// Scenario configuration for world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Terrain parameters.
    pub terrain: TerrainConfig,
    /// Tree stand parameters.
    pub stand: StandConfig,
    /// Number of ground workers.
    pub human_count: u32,
    /// Worker movement parameters.
    pub human: HumanConfig,
    /// Initial weather.
    pub initial_weather: Weather,
    /// Per-minute probability of a weather transition.
    pub weather_change_prob: f64,
    /// The harvesting work area centre (waypoint bias target; where the
    /// forwarder loads logs).
    pub work_area: Vec2,
    /// The landing (unload) area centre; cleared of trees.
    pub landing_area: Vec2,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            terrain: TerrainConfig::default(),
            stand: StandConfig::default(),
            human_count: 3,
            human: HumanConfig::default(),
            initial_weather: Weather::Clear,
            weather_change_prob: 0.05,
            work_area: Vec2::new(400.0, 400.0),
            landing_area: Vec2::new(80.0, 80.0),
        }
    }
}

/// The simulated worksite.
///
/// # Example
///
/// ```
/// use silvasec_sim::prelude::*;
///
/// let mut world = World::generate(&WorldConfig::default(), SimRng::from_seed(1));
/// for _ in 0..10 {
///     world.step(SimDuration::from_millis(500));
/// }
/// assert_eq!(world.now(), SimTime::from_secs(5));
/// ```
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    terrain: Terrain,
    stand: TreeStand,
    weather: WeatherModel,
    humans: Vec<Human>,
    human_grid: EntityGrid,
    now: SimTime,
    last_weather_step: SimTime,
    rng_humans: SimRng,
    rng_weather: SimRng,
}

impl World {
    /// Generates a world from the configuration, consuming the root RNG.
    ///
    /// Subsystems draw from independent forked streams, so e.g. changing
    /// the number of humans does not perturb weather.
    #[must_use]
    pub fn generate(config: &WorldConfig, rng: SimRng) -> Self {
        let mut world = World {
            weather: WeatherModel::new(config.initial_weather, config.weather_change_prob),
            terrain: Terrain::flat(1.0, 1.0),
            stand: TreeStand::from_trees(Vec::new(), 1.0),
            humans: Vec::new(),
            human_grid: EntityGrid::new(),
            now: SimTime::ZERO,
            last_weather_step: SimTime::ZERO,
            rng_humans: rng.fork("humans"),
            rng_weather: rng.fork("weather"),
            config: config.clone(),
        };
        world.regenerate(config, &rng);
        world
    }

    /// Regenerates this world in place from `config` and `rng`, reusing
    /// the terrain grid, tree stand and human list allocations. Fork
    /// labels and RNG draw order match [`World::generate`] exactly, so a
    /// regenerated world is indistinguishable from a freshly generated
    /// one for the same `(config, seed)` — this is the episode-reset
    /// fast path.
    pub fn regenerate(&mut self, config: &WorldConfig, rng: &SimRng) {
        let mut rng_terrain = rng.fork("terrain");
        let mut rng_stand = rng.fork("stand");
        let mut rng_spawn = rng.fork("human-spawn");
        self.rng_humans = rng.fork("humans");
        self.rng_weather = rng.fork("weather");

        self.terrain.regenerate(&config.terrain, &mut rng_terrain);
        self.stand
            .regenerate(&config.stand, config.terrain.size_m, &mut rng_stand);
        // Clear the landing area and the work-area machine pocket.
        self.stand.clear_disc(config.landing_area, 25.0);
        self.stand.clear_disc(config.work_area, 12.0);

        self.humans.clear();
        self.humans.extend((0..config.human_count).map(|i| {
            let pos = Vec2::new(
                rng_spawn.uniform_range(0.0, config.terrain.size_m),
                rng_spawn.uniform_range(0.0, config.terrain.size_m),
            );
            Human::new(HumanId(i), pos, config.human)
        }));
        self.human_grid.rebuild(
            config.terrain.size_m,
            self.humans.iter().map(|h| h.position),
        );

        self.weather = WeatherModel::new(config.initial_weather, config.weather_change_prob);
        self.now = SimTime::ZERO;
        self.last_weather_step = SimTime::ZERO;
        self.config.clone_from(config);
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The terrain.
    #[must_use]
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// The tree stand.
    #[must_use]
    pub fn stand(&self) -> &TreeStand {
        &self.stand
    }

    /// Mutable access to the stand (harvesting fells trees).
    pub fn stand_mut(&mut self) -> &mut TreeStand {
        &mut self.stand
    }

    /// Current weather.
    #[must_use]
    pub fn weather(&self) -> Weather {
        self.weather.current()
    }

    /// The ground workers.
    #[must_use]
    pub fn humans(&self) -> &[Human] {
        &self.humans
    }

    /// The spatial index over the ground workers, kept in sync with
    /// their positions by [`World::step`]. Range queries return a
    /// conservative, index-sorted candidate superset — see
    /// [`EntityGrid::fill_candidates`] for the equivalence contract.
    #[must_use]
    pub fn human_grid(&self) -> &EntityGrid {
        &self.human_grid
    }

    /// The scenario configuration.
    #[must_use]
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Ground altitude at `p` (convenience passthrough).
    #[must_use]
    pub fn ground_at(&self, p: Vec2) -> f64 {
        self.terrain.height_at(p)
    }

    /// A human's torso position in 3-D.
    #[must_use]
    pub fn human_target_point(&self, human: &Human) -> Vec3 {
        human
            .position
            .with_z(self.terrain.height_at(human.position) + human.torso_height_m)
    }

    /// Casts a sight line through this world's terrain and trees.
    #[must_use]
    pub fn visibility(&self, from: Vec3, to: Vec3) -> Visibility {
        los::line_of_sight(&self.terrain, &self.stand, from, to)
    }

    /// Advances the world by `dt`: moves workers, evolves weather
    /// (per simulated minute).
    pub fn step(&mut self, dt: SimDuration) {
        self.now += dt;
        let size = self.config.terrain.size_m;
        let work_area = self.config.work_area;
        for (i, human) in self.humans.iter_mut().enumerate() {
            human.step(dt, size, work_area, &mut self.rng_humans);
            self.human_grid.update(i, human.position);
        }
        while self.now.since(self.last_weather_step) >= SimDuration::from_secs(60) {
            self.last_weather_step += SimDuration::from_secs(60);
            self.weather.step(&mut self.rng_weather);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorldConfig {
        WorldConfig {
            terrain: TerrainConfig {
                size_m: 200.0,
                ..TerrainConfig::default()
            },
            human_count: 2,
            work_area: Vec2::new(150.0, 150.0),
            landing_area: Vec2::new(40.0, 40.0),
            ..WorldConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&small_config(), SimRng::from_seed(1));
        let b = World::generate(&small_config(), SimRng::from_seed(1));
        assert_eq!(a.stand().len(), b.stand().len());
        assert_eq!(a.humans()[0].position, b.humans()[0].position);
        assert_eq!(
            a.terrain().height_at(Vec2::new(100.0, 100.0)),
            b.terrain().height_at(Vec2::new(100.0, 100.0))
        );
    }

    #[test]
    fn stepping_is_deterministic() {
        let run = |seed| {
            let mut w = World::generate(&small_config(), SimRng::from_seed(seed));
            for _ in 0..200 {
                w.step(SimDuration::from_millis(500));
            }
            (w.humans()[0].position, w.humans()[1].position, w.weather())
        };
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn landing_area_is_cleared() {
        let w = World::generate(&small_config(), SimRng::from_seed(3));
        for tree in w.stand().trees() {
            assert!(tree.position.distance(Vec2::new(40.0, 40.0)) > 25.0);
        }
    }

    #[test]
    fn time_advances() {
        let mut w = World::generate(&small_config(), SimRng::from_seed(4));
        assert_eq!(w.now(), SimTime::ZERO);
        w.step(SimDuration::from_secs(2));
        w.step(SimDuration::from_millis(500));
        assert_eq!(w.now(), SimTime::from_millis(2500));
    }

    #[test]
    fn weather_changes_over_time() {
        let mut config = small_config();
        config.weather_change_prob = 1.0;
        let mut w = World::generate(&config, SimRng::from_seed(5));
        let initial = w.weather();
        let mut changed = false;
        for _ in 0..60 {
            w.step(SimDuration::from_secs(60));
            if w.weather() != initial {
                changed = true;
                break;
            }
        }
        assert!(changed, "weather never changed with p = 1.0 per minute");
    }

    #[test]
    fn human_target_point_is_above_ground() {
        let w = World::generate(&small_config(), SimRng::from_seed(6));
        let human = &w.humans()[0];
        let p = w.human_target_point(human);
        assert!(p.z > w.ground_at(human.position));
    }

    #[test]
    fn human_grid_stays_in_sync_while_stepping() {
        let mut w = World::generate(&small_config(), SimRng::from_seed(8));
        let mut cands = Vec::new();
        for _ in 0..300 {
            w.step(SimDuration::from_millis(500));
            w.human_grid()
                .fill_candidates(Vec2::new(100.0, 100.0), 1e6, &mut cands);
            assert_eq!(cands, (0..w.humans().len() as u32).collect::<Vec<_>>());
            let center = w.humans()[0].position;
            w.human_grid().fill_candidates(center, 30.0, &mut cands);
            for (i, h) in w.humans().iter().enumerate() {
                if h.position.distance(center) <= 30.0 {
                    assert!(cands.binary_search(&(i as u32)).is_ok());
                }
            }
        }
    }

    #[test]
    fn visibility_passthrough_consistent() {
        let w = World::generate(&small_config(), SimRng::from_seed(7));
        let from = Vec3::new(10.0, 10.0, w.ground_at(Vec2::new(10.0, 10.0)) + 3.0);
        let human = &w.humans()[0];
        let to = w.human_target_point(human);
        let v1 = w.visibility(from, to);
        let v2 = w.visibility(from, to);
        assert_eq!(v1, v2);
    }
}
