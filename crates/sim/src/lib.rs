//! Deterministic discrete-event simulation kernel and forest world model.
//!
//! The reproduced paper (Sec. III-D) argues that simulation is the primary
//! development and validation substrate for autonomous forestry machines —
//! real-world data is scarce and worksites are inaccessible. This crate is
//! that substrate: a seeded, fully deterministic simulation of a forestry
//! worksite, on which the machine models, radio medium, attacks and
//! defenses of the other crates operate.
//!
//! * [`time`] — simulation time ([`SimTime`], [`SimDuration`]), millisecond
//!   resolution, no wall clock anywhere.
//! * [`rng`] — the seeded [`SimRng`] (ChaCha20-based) with stream forking
//!   and the distributions the world model needs.
//! * [`geom`] — 2-D/3-D vectors and geometry helpers.
//! * [`event`] — a deterministic event queue with stable tie-breaking.
//! * [`sweep`] — the deterministic parallel sweep engine (order-preserving
//!   worker pool; re-exported as `silvasec::sweep`).
//! * [`terrain`] — procedurally generated heightmaps with slope queries.
//! * [`vegetation`] — tree stands (positions, heights, canopy radii).
//! * [`weather`] — weather states degrading sensors and radio.
//! * [`humans`] — ground-worker actors with waypoint movement models.
//! * [`los`] — line-of-sight ray casting against terrain and trees.
//! * [`world`] — the composed [`world::World`].
//!
//! # Determinism
//!
//! Identical seeds give identical traces. All randomness flows from a
//! single [`rng::SimRng`]; there is no wall-clock access.
//!
//! # Example
//!
//! ```
//! use silvasec_sim::prelude::*;
//!
//! let mut world = World::generate(&WorldConfig::default(), SimRng::from_seed(7));
//! let t0 = world.now();
//! world.step(SimDuration::from_secs(1));
//! assert_eq!(world.now(), t0 + SimDuration::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod geom;
pub mod grid;
pub mod humans;
pub mod los;
pub mod rng;
pub mod sweep;
pub mod terrain;
pub mod time;
pub mod vegetation;
pub mod weather;
pub mod world;

pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use world::{World, WorldConfig};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::event::EventQueue;
    pub use crate::geom::{Vec2, Vec3};
    pub use crate::humans::{Human, HumanId};
    pub use crate::rng::SimRng;
    pub use crate::terrain::Terrain;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::vegetation::TreeStand;
    pub use crate::weather::Weather;
    pub use crate::world::{World, WorldConfig};
}
