//! Tree stands: positions, trunk heights and canopy radii.
//!
//! Trees are the second occluder class (after terrain) in the Figure 2
//! occlusion study: denser stands occlude more of the forwarder's
//! ground-level sensor field of view.

use crate::geom::Vec2;
use crate::rng::SimRng;

/// One tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tree {
    /// Trunk base position.
    pub position: Vec2,
    /// Total height in metres.
    pub height_m: f64,
    /// Trunk radius in metres (used for occlusion).
    pub trunk_radius_m: f64,
    /// Canopy radius in metres (used for canopy occlusion above crown base).
    pub canopy_radius_m: f64,
}

/// Configuration for stand generation.
#[derive(Debug, Clone, Copy)]
pub struct StandConfig {
    /// Stand density in trees per hectare (typical managed Nordic forest:
    /// 500–2000; post-thinning: 600–900).
    pub trees_per_hectare: f64,
    /// Mean tree height in metres.
    pub mean_height_m: f64,
    /// Standard deviation of tree height.
    pub height_std_m: f64,
}

impl Default for StandConfig {
    fn default() -> Self {
        StandConfig {
            trees_per_hectare: 800.0,
            mean_height_m: 18.0,
            height_std_m: 4.0,
        }
    }
}

/// A collection of trees over a square area, with a coarse spatial index
/// for segment queries.
#[derive(Debug, Clone)]
pub struct TreeStand {
    trees: Vec<Tree>,
    size_m: f64,
    // Coarse grid index: cell -> tree indices.
    grid: Vec<Vec<u32>>,
    grid_cells: usize,
    grid_cell_m: f64,
    // Largest per-tree reach (canopy or trunk radius) in the stand —
    // the sound cell-skip bound for segment queries.
    max_reach_m: f64,
}

impl TreeStand {
    /// Generates a stand with the given density over a `size_m` × `size_m`
    /// area. Cleared zones (e.g. the landing area and machine trails) can
    /// be cut out afterwards with [`TreeStand::clear_disc`].
    ///
    /// # Panics
    ///
    /// Panics if `size_m` is not positive or the density is negative.
    #[must_use]
    pub fn generate(config: &StandConfig, size_m: f64, rng: &mut SimRng) -> Self {
        let mut stand = TreeStand {
            trees: Vec::new(),
            size_m,
            grid: Vec::new(),
            grid_cells: 1,
            grid_cell_m: 20.0,
            max_reach_m: 0.0,
        };
        stand.regenerate(config, size_m, rng);
        stand
    }

    /// Redraws this stand in place from `config` and `rng`, reusing the
    /// tree list and grid-index allocations. The RNG draw order and every
    /// generated tree are identical to [`TreeStand::generate`], so a
    /// regenerated stand is indistinguishable from a fresh one — zero
    /// allocations once the buffers have warmed to the episode shape.
    ///
    /// # Panics
    ///
    /// Panics if `size_m` is not positive or the density is negative.
    pub fn regenerate(&mut self, config: &StandConfig, size_m: f64, rng: &mut SimRng) {
        assert!(size_m > 0.0, "stand area must be positive");
        assert!(
            config.trees_per_hectare >= 0.0,
            "density must be non-negative"
        );
        let hectares = (size_m * size_m) / 10_000.0;
        let count = (config.trees_per_hectare * hectares).round() as usize;
        self.trees.clear();
        self.trees.reserve(count);
        for _ in 0..count {
            let height = rng
                .normal(config.mean_height_m, config.height_std_m)
                .clamp(2.0, 45.0);
            // Allometry: trunk radius and canopy scale with height.
            let trunk_radius = (0.010 * height).clamp(0.05, 0.5);
            let canopy_radius = (0.14 * height).clamp(0.5, 5.0);
            self.trees.push(Tree {
                position: Vec2::new(
                    rng.uniform_range(0.0, size_m),
                    rng.uniform_range(0.0, size_m),
                ),
                height_m: height,
                trunk_radius_m: trunk_radius,
                canopy_radius_m: canopy_radius,
            });
        }
        self.size_m = size_m;
        self.rebuild_grid();
    }

    /// Builds a stand from an explicit tree list.
    ///
    /// # Panics
    ///
    /// Panics if `size_m` is not positive.
    #[must_use]
    pub fn from_trees(trees: Vec<Tree>, size_m: f64) -> Self {
        assert!(size_m > 0.0, "stand area must be positive");
        let mut stand = TreeStand {
            trees,
            size_m,
            grid: Vec::new(),
            grid_cells: 1,
            grid_cell_m: 20.0,
            max_reach_m: 0.0,
        };
        stand.rebuild_grid();
        stand
    }

    /// Removes all trees within `radius` of `center` (clearing a landing
    /// area or trail). In place: the tree list and grid index keep their
    /// allocations.
    pub fn clear_disc(&mut self, center: Vec2, radius: f64) {
        self.trees.retain(|t| t.position.distance(center) > radius);
        self.rebuild_grid();
    }

    /// Recomputes the coarse grid index from the current tree list,
    /// reusing cell allocations where the grid shape allows.
    fn rebuild_grid(&mut self) {
        let grid_cell_m = 20.0;
        let grid_cells = (self.size_m / grid_cell_m).ceil().max(1.0) as usize;
        for cell in &mut self.grid {
            cell.clear();
        }
        self.grid.resize_with(grid_cells * grid_cells, Vec::new);
        self.grid_cells = grid_cells;
        self.grid_cell_m = grid_cell_m;
        let mut max_reach = 0.0f64;
        for (i, tree) in self.trees.iter().enumerate() {
            let gx = ((tree.position.x / grid_cell_m) as usize).min(grid_cells - 1);
            let gy = ((tree.position.y / grid_cell_m) as usize).min(grid_cells - 1);
            self.grid[gy * grid_cells + gx].push(i as u32);
            max_reach = max_reach.max(tree.canopy_radius_m.max(tree.trunk_radius_m));
        }
        self.max_reach_m = max_reach;
    }

    /// Whether segment `a`–`b` intersects the axis-aligned rectangle
    /// `[min, max]` (Liang–Barsky slab clipping).
    fn segment_intersects_rect(a: Vec2, b: Vec2, min: Vec2, max: Vec2) -> bool {
        let d = Vec2::new(b.x - a.x, b.y - a.y);
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        for (p, q_min, q_max) in [
            (d.x, min.x - a.x, max.x - a.x),
            (d.y, min.y - a.y, max.y - a.y),
        ] {
            if p.abs() < 1e-12 {
                // Segment parallel to this slab: inside or fully out.
                if q_min > 0.0 || q_max < 0.0 {
                    return false;
                }
            } else {
                let (mut ta, mut tb) = (q_min / p, q_max / p);
                if ta > tb {
                    std::mem::swap(&mut ta, &mut tb);
                }
                t0 = t0.max(ta);
                t1 = t1.min(tb);
                if t0 > t1 {
                    return false;
                }
            }
        }
        true
    }

    /// All trees.
    #[must_use]
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Number of trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the stand has no trees.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Stand density in trees per hectare.
    #[must_use]
    pub fn density_per_hectare(&self) -> f64 {
        self.trees.len() as f64 / ((self.size_m * self.size_m) / 10_000.0)
    }

    /// Visits every tree whose trunk or canopy might intersect the 2-D
    /// segment `a`–`b` expanded by `margin` metres (via the coarse grid
    /// index), without allocating. Trees are visited in the same order
    /// [`TreeStand::trees_near_segment`] returns them; return `false`
    /// from `visit` to stop early.
    ///
    /// This is the line-of-sight hot path: `line_of_sight` casts one
    /// query per (sensor, human, tick) and previously paid a `Vec<&Tree>`
    /// allocation each time.
    pub fn for_trees_near_segment<'s, F>(&'s self, a: Vec2, b: Vec2, margin: f64, mut visit: F)
    where
        F: FnMut(&'s Tree) -> bool,
    {
        self.for_trees_near_segment_dist(a, b, margin, |tree, _| visit(tree));
    }

    /// [`TreeStand::for_trees_near_segment`], but the visitor also
    /// receives the tree's 2-D distance to the segment — the filter
    /// already computes it, so callers that need it (foliage crossing
    /// tests) avoid recomputing `distance_to_segment` per tree.
    pub fn for_trees_near_segment_dist<'s, F>(&'s self, a: Vec2, b: Vec2, margin: f64, mut visit: F)
    where
        F: FnMut(&'s Tree, f64) -> bool,
    {
        let pad = margin + self.grid_cell_m;
        let min_x = (a.x.min(b.x) - pad).max(0.0);
        let max_x = (a.x.max(b.x) + pad).min(self.size_m);
        let min_y = (a.y.min(b.y) - pad).max(0.0);
        let max_y = (a.y.max(b.y) + pad).min(self.size_m);
        let gx0 = ((min_x / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let gx1 = ((max_x / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let gy0 = ((min_y / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let gy1 = ((max_y / self.grid_cell_m) as usize).min(self.grid_cells - 1);

        // Cell-level cull inside the bounding rectangle: a cell whose
        // rect, inflated by `margin + max_reach_m` (axis inflation is a
        // superset of the Euclidean one, so this is conservative), does
        // not intersect the segment cannot contain a tree passing the
        // per-tree distance filter below — every tree in it sits at
        // least that far from the segment. Skipping such cells removes
        // the O(length²) cell scan on long diagonal queries (the radio
        // links) while visiting the surviving trees in the exact same
        // row-major order.
        let reach = margin + self.max_reach_m;
        for gy in gy0..=gy1 {
            let cy0 = gy as f64 * self.grid_cell_m;
            for gx in gx0..=gx1 {
                let cell = &self.grid[gy * self.grid_cells + gx];
                if cell.is_empty() {
                    continue;
                }
                let cx0 = gx as f64 * self.grid_cell_m;
                let cell_min = Vec2::new(cx0 - reach, cy0 - reach);
                let cell_max = Vec2::new(
                    cx0 + self.grid_cell_m + reach,
                    cy0 + self.grid_cell_m + reach,
                );
                if !Self::segment_intersects_rect(a, b, cell_min, cell_max) {
                    continue;
                }
                for &i in cell {
                    let tree = &self.trees[i as usize];
                    let dist = tree.position.distance_to_segment(a, b);
                    if dist <= margin + tree.canopy_radius_m.max(tree.trunk_radius_m)
                        && !visit(tree, dist)
                    {
                        return;
                    }
                }
            }
        }
    }

    /// FROZEN pre-optimization segment query: collects matching trees
    /// into a fresh `Vec` after scanning *every* grid cell in the
    /// segment's bounding rectangle (no cell-level cull). Returns the
    /// same trees in the same order as [`TreeStand::trees_near_segment`];
    /// only the cost differs. Kept verbatim so the benchmark's "old"
    /// arm reproduces the pre-optimization per-query cost — do not
    /// optimize.
    #[must_use]
    pub fn trees_near_segment_reference(&self, a: Vec2, b: Vec2, margin: f64) -> Vec<&Tree> {
        let pad = margin + self.grid_cell_m;
        let min_x = (a.x.min(b.x) - pad).max(0.0);
        let max_x = (a.x.max(b.x) + pad).min(self.size_m);
        let min_y = (a.y.min(b.y) - pad).max(0.0);
        let max_y = (a.y.max(b.y) + pad).min(self.size_m);
        let gx0 = ((min_x / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let gx1 = ((max_x / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let gy0 = ((min_y / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let gy1 = ((max_y / self.grid_cell_m) as usize).min(self.grid_cells - 1);
        let mut out = Vec::new();
        for gy in gy0..=gy1 {
            for gx in gx0..=gx1 {
                for &i in &self.grid[gy * self.grid_cells + gx] {
                    let tree = &self.trees[i as usize];
                    if tree.position.distance_to_segment(a, b)
                        <= margin + tree.canopy_radius_m.max(tree.trunk_radius_m)
                    {
                        out.push(tree);
                    }
                }
            }
        }
        out
    }

    /// Collects the trees [`TreeStand::for_trees_near_segment`] visits.
    /// Convenient for tests and one-off queries; hot paths should use the
    /// visitor to avoid the allocation.
    pub fn trees_near_segment(&self, a: Vec2, b: Vec2, margin: f64) -> Vec<&Tree> {
        let mut out = Vec::new();
        self.for_trees_near_segment(a, b, margin, |tree| {
            out.push(tree);
            true
        });
        out
    }

    /// Counts the trees [`TreeStand::for_trees_near_segment`] visits
    /// without allocating — the hot-path form of
    /// `trees_near_segment(..).len()` (the worksite's per-tick
    /// sensor-health feature count).
    #[must_use]
    pub fn count_trees_near_segment(&self, a: Vec2, b: Vec2, margin: f64) -> usize {
        let mut count = 0;
        self.for_trees_near_segment(a, b, margin, |_| {
            count += 1;
            true
        });
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stand(seed: u64, density: f64) -> TreeStand {
        let config = StandConfig {
            trees_per_hectare: density,
            ..StandConfig::default()
        };
        TreeStand::generate(&config, 200.0, &mut SimRng::from_seed(seed))
    }

    #[test]
    fn density_approximately_matches() {
        let s = stand(1, 800.0);
        // 200 m × 200 m = 4 ha → ~3200 trees.
        assert_eq!(s.len(), 3200);
        assert!((s.density_per_hectare() - 800.0).abs() < 1.0);
    }

    #[test]
    fn zero_density_gives_empty_stand() {
        let s = stand(1, 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn heights_clamped_to_plausible_range() {
        let s = stand(2, 500.0);
        for t in s.trees() {
            assert!((2.0..=45.0).contains(&t.height_m));
            assert!(t.trunk_radius_m > 0.0 && t.canopy_radius_m >= t.trunk_radius_m);
        }
    }

    #[test]
    fn clear_disc_removes_trees() {
        let mut s = stand(3, 800.0);
        let center = Vec2::new(100.0, 100.0);
        let before = s.len();
        s.clear_disc(center, 30.0);
        assert!(s.len() < before);
        for t in s.trees() {
            assert!(t.position.distance(center) > 30.0);
        }
    }

    #[test]
    fn segment_query_finds_blocking_tree() {
        let tree = Tree {
            position: Vec2::new(50.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.2,
            canopy_radius_m: 2.0,
        };
        let s = TreeStand::from_trees(vec![tree], 100.0);
        let hits = s.trees_near_segment(Vec2::new(0.0, 50.0), Vec2::new(100.0, 50.0), 0.5);
        assert_eq!(hits.len(), 1);
        // A segment far away misses.
        let misses = s.trees_near_segment(Vec2::new(0.0, 90.0), Vec2::new(100.0, 90.0), 0.5);
        assert!(misses.is_empty());
    }

    #[test]
    fn segment_query_matches_brute_force() {
        let s = stand(4, 600.0);
        let a = Vec2::new(10.0, 15.0);
        let b = Vec2::new(190.0, 170.0);
        let margin = 1.0;
        let collected = s.trees_near_segment(a, b, margin);
        let fast: std::collections::HashSet<usize> = collected
            .iter()
            .map(|t| *t as *const Tree as usize)
            .collect();
        let brute: Vec<&Tree> = s
            .trees()
            .iter()
            .filter(|t| {
                t.position.distance_to_segment(a, b)
                    <= margin + t.canopy_radius_m.max(t.trunk_radius_m)
            })
            .collect();
        for t in &brute {
            assert!(
                fast.contains(&(*t as *const Tree as usize)),
                "grid query missed a tree at {:?}",
                t.position
            );
        }
        assert_eq!(
            s.count_trees_near_segment(a, b, margin),
            collected.len(),
            "count form disagrees with the collector"
        );

        // The allocation-free visitor sees exactly the collected set, in
        // the same order — `line_of_sight` relies on this equivalence.
        let mut visited: Vec<usize> = Vec::new();
        s.for_trees_near_segment(a, b, margin, |t| {
            visited.push(t as *const Tree as usize);
            true
        });
        let collected_ids: Vec<usize> = collected
            .iter()
            .map(|t| *t as *const Tree as usize)
            .collect();
        assert_eq!(visited, collected_ids, "visitor and Vec query diverged");
    }

    #[test]
    fn segment_visitor_stops_early() {
        let s = stand(6, 800.0);
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(200.0, 200.0);
        let total = s.trees_near_segment(a, b, 1.0).len();
        assert!(
            total > 3,
            "diagonal through a dense stand should pass many trees"
        );
        let mut seen = 0usize;
        s.for_trees_near_segment(a, b, 1.0, |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3, "returning false must stop the traversal");
    }

    #[test]
    fn deterministic() {
        let a = stand(5, 700.0);
        let b = stand(5, 700.0);
        assert_eq!(a.trees()[10].position, b.trees()[10].position);
    }
}
