//! Deterministic parallel sweep engine for experiment grids.
//!
//! Every quantitative artifact in this reproduction is a *sweep*: a grid
//! of independent evaluation points (density × seed, posture × attack,
//! weather × seed, …) mapped through a pure evaluation function. Each
//! point carries its own RNG seed, so the points share no mutable state
//! and the map is embarrassingly parallel — scheduling order cannot
//! perturb the numbers.
//!
//! [`par_sweep`] exploits that: it fans the points out over a
//! crossbeam-scoped worker pool and returns results **in input order**,
//! bit-identical to the sequential `points.map(f)` it replaces. Callers
//! therefore need no feature flag and no tolerance windows — the
//! equivalence is exact and is enforced by a property test
//! (`tests/proptests.rs`).
//!
//! # Example
//!
//! ```
//! use silvasec_sim::sweep::par_sweep;
//!
//! let points: Vec<u64> = (0..32).collect();
//! let squares = par_sweep(&points, |&p| p * p);
//! assert_eq!(squares, points.iter().map(|&p| p * p).collect::<Vec<_>>());
//! ```
//!
//! The module lives in the simulation kernel (rather than the `silvasec`
//! umbrella crate, which re-exports it as `silvasec::sweep`) so that
//! mid-stack crates — notably the fleet's sharded shadow-site population
//! — can run on the same worker pool without a dependency cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Timing and shape summary of one parallel sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Number of worker threads used.
    pub workers: usize,
    /// Number of sweep points evaluated.
    pub points: usize,
    /// Wall-clock time for the whole sweep, in seconds.
    pub wall_s: f64,
    /// Per-point wall-clock times, in input order, in seconds.
    pub point_wall_s: Vec<f64>,
}

impl SweepStats {
    /// Aggregate throughput in points (episodes) per second of
    /// wall-clock time. Zero-duration sweeps report zero rather than
    /// infinity.
    #[must_use]
    pub fn points_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.points as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Total CPU time spent inside point evaluations, in seconds. On a
    /// multi-core host this exceeds `wall_s` when the sweep scales.
    #[must_use]
    pub fn busy_s(&self) -> f64 {
        self.point_wall_s.iter().sum()
    }
}

/// Number of workers a sweep will use: the available hardware
/// parallelism, capped by the number of points (spawning more threads
/// than points only adds join overhead).
#[must_use]
pub fn worker_count(points: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    hw.min(points).max(1)
}

/// Maps `f` over `points` on a scoped worker pool, returning results in
/// input order.
///
/// Determinism: `f` receives each point exactly once and results are
/// scattered back by input index, so the output is the same `Vec` the
/// sequential `points.iter().map(f).collect()` would produce — bit for
/// bit, for any worker count and any scheduling. Work is distributed by
/// atomic work-stealing (each worker grabs the next unclaimed index), so
/// uneven point costs balance automatically.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_sweep<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    par_sweep_with_stats(points, f).0
}

/// [`par_sweep`] variant that also reports [`SweepStats`].
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_sweep_with_stats<P, R, F>(points: &[P], f: F) -> (Vec<R>, SweepStats)
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let started = Instant::now();
    let workers = worker_count(points.len());

    let mut slots: Vec<Option<(R, f64)>> = Vec::with_capacity(points.len());
    slots.resize_with(points.len(), || None);

    if workers <= 1 {
        for (slot, point) in slots.iter_mut().zip(points) {
            let t0 = Instant::now();
            let r = f(point);
            *slot = Some((r, t0.elapsed().as_secs_f64()));
        }
    } else {
        let next = AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        // Each worker claims indices off the shared counter and returns
        // its locally collected (index, result, seconds) triples through
        // its join handle; the scatter below restores input order.
        let gathered: Vec<Vec<(usize, R, f64)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= points.len() {
                                break;
                            }
                            let t0 = Instant::now();
                            let r = f(&points[idx]);
                            local.push((idx, r, t0.elapsed().as_secs_f64()));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
        .expect("sweep scope panicked");

        for (idx, r, secs) in gathered.into_iter().flatten() {
            slots[idx] = Some((r, secs));
        }
    }

    let mut results = Vec::with_capacity(points.len());
    let mut point_wall_s = Vec::with_capacity(points.len());
    for slot in slots {
        let (r, secs) = slot.expect("every sweep index is claimed exactly once");
        results.push(r);
        point_wall_s.push(secs);
    }

    let stats = SweepStats {
        workers,
        points: points.len(),
        wall_s: started.elapsed().as_secs_f64(),
        point_wall_s,
    };
    (results, stats)
}

/// Maps `f` over mutable `items` on a scoped worker pool, returning the
/// per-item results in input order.
///
/// The mutable sibling of [`par_sweep`], built for *sharded state*: the
/// fleet-scale control plane splits its shadow-site population into
/// independent shards and steps every shard once per tick. Each worker
/// owns a contiguous `chunks_mut` slice (static assignment by position,
/// not work-stealing — safe mutable access needs disjoint borrows, and
/// the workspace forbids `unsafe`), applies `f` to its items in slice
/// order, and the per-chunk result vectors are concatenated in chunk
/// order. The output is therefore the same `Vec` the sequential
/// `items.iter_mut().enumerate().map(..)` loop would produce — bit for
/// bit, for any worker count — which is what lets a sharded fleet trace
/// stay byte-identical to its sequential reference.
///
/// `f` receives `(input_index, &mut item)`.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_sweep_mut<P, R, F>(items: &mut [P], f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, &mut P) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    let gathered: Vec<Vec<R>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move |_| {
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(j, item)| f(ci * chunk + j, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked");
    let mut out = Vec::with_capacity(n);
    for local in gathered {
        out.extend(local);
    }
    out
}

/// Maps `f` over `points` with one lazily-created **per-worker scratch
/// value**, returning results in input order.
///
/// The scratch sibling of [`par_sweep`], built for *reusable episode
/// state*: an episode sweep wants each worker to own one long-lived
/// `Worksite` (terrain grids, telemetry rings, session buffers) and
/// reset it per point instead of rebuilding it. The scratch is created
/// by `init()` **inside** the worker thread, so `S` needs no `Send`
/// bound — `Rc`-backed recorders are fine. `f` receives
/// `(&mut scratch, point, input_index)`.
///
/// Determinism contract: results are scattered back by input index, so
/// the output order matches the sequential map for any worker count and
/// scheduling — but the *values* only match when `f` fully re-derives
/// its output from the point (e.g. via `Worksite::reset_for_episode`),
/// never from scratch state a previous point left behind. That
/// point-independence is what the episode property tests enforce.
///
/// # Panics
///
/// Propagates panics from `init` and `f`.
pub fn par_sweep_scoped<P, S, R, I, F>(points: &[P], init: I, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &P, usize) -> R + Sync,
{
    par_sweep_scoped_workers(points, worker_count(points.len()), init, f)
}

/// [`par_sweep_scoped`] with an explicit worker count (still capped by
/// the number of points). `workers <= 1` runs sequentially with a
/// single scratch — the reference the property tests compare against.
///
/// # Panics
///
/// Propagates panics from `init` and `f`.
pub fn par_sweep_scoped_workers<P, S, R, I, F>(
    points: &[P],
    workers: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    P: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &P, usize) -> R + Sync,
{
    let workers = workers.min(points.len()).max(1);
    if workers <= 1 {
        let mut scratch = init();
        return points
            .iter()
            .enumerate()
            .map(|(i, p)| f(&mut scratch, p, i))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (next, init, f) = (&next, &init, &f);
    let gathered: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut scratch = init();
                    let mut local = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= points.len() {
                            break;
                        }
                        local.push((idx, f(&mut scratch, &points[idx], idx)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked");

    let mut slots: Vec<Option<R>> = Vec::with_capacity(points.len());
    slots.resize_with(points.len(), || None);
    for (idx, r) in gathered.into_iter().flatten() {
        slots[idx] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every sweep index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..257).collect();
        let out = par_sweep(&points, |&p| p.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let expected: Vec<u64> = points
            .iter()
            .map(|&p| p.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_sweep() {
        let points: Vec<u64> = Vec::new();
        let (out, stats) = par_sweep_with_stats(&points, |&p| p);
        assert!(out.is_empty());
        assert_eq!(stats.points, 0);
        assert_eq!(stats.workers, 1);
        assert!(stats.point_wall_s.is_empty());
    }

    #[test]
    fn single_point_sweep() {
        let (out, stats) = par_sweep_with_stats(&[41u32], |&p| p + 1);
        assert_eq!(out, vec![42]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.point_wall_s.len(), 1);
    }

    #[test]
    fn stats_are_consistent() {
        let points: Vec<u64> = (0..64).collect();
        let (out, stats) = par_sweep_with_stats(&points, |&p| {
            // A little real work so timings are non-trivial.
            (0..1000).fold(p, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        assert_eq!(out.len(), 64);
        assert_eq!(stats.points, 64);
        assert_eq!(stats.point_wall_s.len(), 64);
        assert!(stats.workers >= 1);
        assert!(stats.wall_s >= 0.0);
        assert!(stats.point_wall_s.iter().all(|&s| s >= 0.0));
        assert!(stats.points_per_s() > 0.0);
        assert!(stats.busy_s() >= 0.0);
    }

    #[test]
    fn results_can_borrow_from_points() {
        let points: Vec<String> = (0..16).map(|i| format!("point-{i}")).collect();
        let lens = par_sweep(&points, String::len);
        assert_eq!(lens, points.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn float_results_are_bit_identical_to_sequential() {
        // The determinism contract the experiment sweeps rely on:
        // floating-point results match the sequential map exactly.
        let points: Vec<(f64, u64)> = (0..128u32)
            .map(|i| (f64::from(i) * 0.37, u64::from(i)))
            .collect();
        let eval = |&(x, seed): &(f64, u64)| {
            let mut acc = x;
            for k in 1..200u64 {
                acc = (acc * 1.000_1 + (seed ^ k) as f64 * 1e-9)
                    .sin()
                    .mul_add(0.5, acc);
            }
            acc
        };
        let par = par_sweep(&points, eval);
        let seq: Vec<f64> = points.iter().map(eval).collect();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mut_sweep_matches_sequential_reference() {
        // The determinism contract the sharded fleet relies on: the
        // parallel mutable sweep leaves the items in the same state and
        // returns the same results as the sequential loop.
        let eval = |i: usize, item: &mut u64| {
            *item = item.wrapping_mul(31).wrapping_add(i as u64);
            *item ^ 0x5555_5555_5555_5555
        };
        let mut par_items: Vec<u64> = (0..137).map(|i| i * 7 + 3).collect();
        let mut seq_items = par_items.clone();
        let par_out = par_sweep_mut(&mut par_items, eval);
        let seq_out: Vec<u64> = seq_items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| eval(i, item))
            .collect();
        assert_eq!(par_out, seq_out);
        assert_eq!(par_items, seq_items);
    }

    #[test]
    fn mut_sweep_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_sweep_mut(&mut empty, |_, x| *x).is_empty());
        let mut one = vec![41u32];
        assert_eq!(
            par_sweep_mut(&mut one, |i, x| {
                *x += 1;
                *x + i as u32
            }),
            vec![42]
        );
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn scoped_sweep_matches_sequential_for_any_worker_count() {
        // Per-worker scratch must not leak across points: f re-derives
        // everything from the point, so any worker count agrees with
        // the single-scratch sequential reference.
        let points: Vec<u64> = (0..61).map(|i| i * 13 + 5).collect();
        let eval = |scratch: &mut Vec<u64>, &p: &u64, i: usize| {
            scratch.clear(); // episode reset
            scratch.extend((0..8).map(|k| p.wrapping_mul(k ^ i as u64)));
            scratch
                .iter()
                .fold(0u64, |a, &x| a.wrapping_add(x).rotate_left(7))
        };
        let reference = par_sweep_scoped_workers(&points, 1, Vec::new, eval);
        for workers in [2usize, 3, 4] {
            let out = par_sweep_scoped_workers(&points, workers, Vec::new, eval);
            assert_eq!(out, reference, "diverged at {workers} workers");
        }
        assert_eq!(par_sweep_scoped(&points, Vec::new, eval), reference);
    }

    #[test]
    fn scoped_sweep_scratch_is_not_send_constrained() {
        // Rc is !Send: the scratch is created inside each worker, so
        // this must compile and run.
        use std::rc::Rc;
        let points: Vec<u32> = (0..17).collect();
        let out = par_sweep_scoped_workers(&points, 3, || Rc::new(7u32), |rc, &p, _| p + **rc);
        assert_eq!(out, points.iter().map(|p| p + 7).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_sweep_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_sweep_scoped(&empty, || 0u32, |_, &p, _| p).is_empty());
        let out = par_sweep_scoped_workers(&[9u32], 8, || 1u32, |s, &p, i| p + *s + i as u32);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn worker_count_is_capped_by_points() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1024) >= 1);
        assert!(worker_count(2) <= 2);
    }
}
