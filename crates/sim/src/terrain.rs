//! Procedurally generated terrain heightmaps.
//!
//! Terrain is a regular grid of heights generated with multi-octave value
//! noise. It provides bilinear height queries, slope estimates, and is the
//! primary source of the occlusions motivating the paper's Figure 2 use
//! case (a drone's vantage point eliminating terrain occlusions).

use crate::geom::Vec2;
use crate::rng::SimRng;

/// Configuration for terrain generation.
#[derive(Debug, Clone, Copy)]
pub struct TerrainConfig {
    /// Side length of the (square) terrain in metres.
    pub size_m: f64,
    /// Grid cell size in metres.
    pub cell_m: f64,
    /// Peak-to-valley amplitude of the dominant landforms in metres.
    pub relief_m: f64,
    /// Number of noise octaves (1 = smooth rolling hills).
    pub octaves: u32,
    /// Amplitude falloff per octave (0.5 is natural-looking).
    pub persistence: f64,
}

impl Default for TerrainConfig {
    fn default() -> Self {
        TerrainConfig { size_m: 500.0, cell_m: 5.0, relief_m: 18.0, octaves: 4, persistence: 0.5 }
    }
}

/// A square heightmap with bilinear interpolation.
///
/// # Example
///
/// ```
/// use silvasec_sim::terrain::{Terrain, TerrainConfig};
/// use silvasec_sim::rng::SimRng;
/// use silvasec_sim::geom::Vec2;
///
/// let t = Terrain::generate(&TerrainConfig::default(), &mut SimRng::from_seed(1));
/// let h = t.height_at(Vec2::new(250.0, 250.0));
/// assert!(h.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Terrain {
    heights: Vec<f64>,
    cells: usize, // grid points per side
    cell_m: f64,
    size_m: f64,
}

impl Terrain {
    /// Generates terrain from a configuration and RNG.
    ///
    /// # Panics
    ///
    /// Panics if `size_m` or `cell_m` is not positive, or the grid would
    /// be degenerate.
    #[must_use]
    pub fn generate(config: &TerrainConfig, rng: &mut SimRng) -> Self {
        assert!(config.size_m > 0.0 && config.cell_m > 0.0, "terrain dimensions must be positive");
        let cells = (config.size_m / config.cell_m).ceil() as usize + 1;
        assert!(cells >= 2, "terrain grid too small");

        let mut heights = vec![0.0f64; cells * cells];
        let mut amplitude = config.relief_m / 2.0;
        // Base lattice ~8 features per side at octave 0.
        let mut lattice_n = 8usize;

        for _octave in 0..config.octaves.max(1) {
            // Random lattice values for this octave.
            let ln = lattice_n + 1;
            let lattice: Vec<f64> =
                (0..ln * ln).map(|_| rng.uniform_range(-1.0, 1.0)).collect();

            for gy in 0..cells {
                for gx in 0..cells {
                    // Position in lattice coordinates.
                    let fx = gx as f64 / (cells - 1) as f64 * lattice_n as f64;
                    let fy = gy as f64 / (cells - 1) as f64 * lattice_n as f64;
                    let x0 = (fx.floor() as usize).min(lattice_n - 1);
                    let y0 = (fy.floor() as usize).min(lattice_n - 1);
                    let tx = smooth(fx - x0 as f64);
                    let ty = smooth(fy - y0 as f64);
                    let v00 = lattice[y0 * ln + x0];
                    let v10 = lattice[y0 * ln + x0 + 1];
                    let v01 = lattice[(y0 + 1) * ln + x0];
                    let v11 = lattice[(y0 + 1) * ln + x0 + 1];
                    let v = lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty);
                    heights[gy * cells + gx] += amplitude * v;
                }
            }
            amplitude *= config.persistence;
            lattice_n *= 2;
        }

        Terrain { heights, cells, cell_m: config.cell_m, size_m: config.size_m }
    }

    /// Builds perfectly flat terrain (baseline for occlusion experiments).
    #[must_use]
    pub fn flat(size_m: f64, cell_m: f64) -> Self {
        assert!(size_m > 0.0 && cell_m > 0.0, "terrain dimensions must be positive");
        let cells = (size_m / cell_m).ceil() as usize + 1;
        Terrain { heights: vec![0.0; cells * cells], cells, cell_m, size_m }
    }

    /// Side length in metres.
    #[must_use]
    pub fn size_m(&self) -> f64 {
        self.size_m
    }

    /// Whether `p` lies inside the terrain extent.
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        (0.0..=self.size_m).contains(&p.x) && (0.0..=self.size_m).contains(&p.y)
    }

    /// Ground height at `p`, bilinearly interpolated. Points outside the
    /// extent are clamped to the border.
    #[must_use]
    pub fn height_at(&self, p: Vec2) -> f64 {
        let max = (self.cells - 1) as f64;
        let fx = (p.x / self.cell_m).clamp(0.0, max);
        let fy = (p.y / self.cell_m).clamp(0.0, max);
        let x0 = (fx.floor() as usize).min(self.cells - 2);
        let y0 = (fy.floor() as usize).min(self.cells - 2);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let at = |x: usize, y: usize| self.heights[y * self.cells + x];
        lerp(
            lerp(at(x0, y0), at(x0 + 1, y0), tx),
            lerp(at(x0, y0 + 1), at(x0 + 1, y0 + 1), tx),
            ty,
        )
    }

    /// Approximate slope magnitude (rise over run) at `p`.
    #[must_use]
    pub fn slope_at(&self, p: Vec2) -> f64 {
        let d = self.cell_m;
        let hx = (self.height_at(Vec2::new(p.x + d, p.y)) - self.height_at(Vec2::new(p.x - d, p.y)))
            / (2.0 * d);
        let hy = (self.height_at(Vec2::new(p.x, p.y + d)) - self.height_at(Vec2::new(p.x, p.y - d)))
            / (2.0 * d);
        hx.hypot(hy)
    }

    /// Maximum height difference across the map (a roughness summary).
    #[must_use]
    pub fn relief(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &h in &self.heights {
            min = min.min(h);
            max = max.max(h);
        }
        if min.is_finite() {
            max - min
        } else {
            0.0
        }
    }
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Smoothstep easing for value noise.
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_terrain(seed: u64) -> Terrain {
        Terrain::generate(&TerrainConfig::default(), &mut SimRng::from_seed(seed))
    }

    #[test]
    fn deterministic_generation() {
        let a = default_terrain(1);
        let b = default_terrain(1);
        let p = Vec2::new(123.0, 45.0);
        assert_eq!(a.height_at(p), b.height_at(p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = default_terrain(1);
        let b = default_terrain(2);
        let p = Vec2::new(123.0, 45.0);
        assert_ne!(a.height_at(p), b.height_at(p));
    }

    #[test]
    fn relief_is_bounded_by_config() {
        let t = default_terrain(3);
        // Sum of octave amplitudes: 9(1+.5+.25+.125) < 17; peak-to-valley
        // can be at most twice that.
        assert!(t.relief() > 1.0, "terrain should not be flat");
        assert!(t.relief() < 40.0, "relief {} implausibly large", t.relief());
    }

    #[test]
    fn flat_terrain_is_flat() {
        let t = Terrain::flat(100.0, 5.0);
        for p in [Vec2::new(0.0, 0.0), Vec2::new(50.0, 50.0), Vec2::new(99.0, 1.0)] {
            assert_eq!(t.height_at(p), 0.0);
            assert_eq!(t.slope_at(p), 0.0);
        }
        assert_eq!(t.relief(), 0.0);
    }

    #[test]
    fn height_query_is_continuous() {
        let t = default_terrain(4);
        let p = Vec2::new(200.0, 200.0);
        let h0 = t.height_at(p);
        let h1 = t.height_at(p + Vec2::new(0.01, 0.0));
        assert!((h0 - h1).abs() < 0.1, "height jumped by {}", (h0 - h1).abs());
    }

    #[test]
    fn out_of_bounds_clamps() {
        let t = default_terrain(5);
        let inside = t.height_at(Vec2::new(0.0, 0.0));
        let outside = t.height_at(Vec2::new(-100.0, -100.0));
        assert_eq!(inside, outside);
        assert!(t.contains(Vec2::new(1.0, 1.0)));
        assert!(!t.contains(Vec2::new(-1.0, 1.0)));
        assert!(!t.contains(Vec2::new(1.0, 10_000.0)));
    }

    #[test]
    fn slope_positive_on_rough_terrain() {
        let t = default_terrain(6);
        let mut any_slope = false;
        for i in 1..10 {
            let p = Vec2::new(i as f64 * 45.0, i as f64 * 40.0);
            if t.slope_at(p) > 0.01 {
                any_slope = true;
            }
        }
        assert!(any_slope, "expected some sloped ground");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Terrain::flat(0.0, 1.0);
    }
}
