//! Procedurally generated terrain heightmaps.
//!
//! Terrain is a regular grid of heights generated with multi-octave value
//! noise. It provides bilinear height queries, slope estimates, and is the
//! primary source of the occlusions motivating the paper's Figure 2 use
//! case (a drone's vantage point eliminating terrain occlusions).

use crate::geom::Vec2;
use crate::rng::SimRng;

/// Configuration for terrain generation.
#[derive(Debug, Clone, Copy)]
pub struct TerrainConfig {
    /// Side length of the (square) terrain in metres.
    pub size_m: f64,
    /// Grid cell size in metres.
    pub cell_m: f64,
    /// Peak-to-valley amplitude of the dominant landforms in metres.
    pub relief_m: f64,
    /// Number of noise octaves (1 = smooth rolling hills).
    pub octaves: u32,
    /// Amplitude falloff per octave (0.5 is natural-looking).
    pub persistence: f64,
}

impl Default for TerrainConfig {
    fn default() -> Self {
        TerrainConfig {
            size_m: 500.0,
            cell_m: 5.0,
            relief_m: 18.0,
            octaves: 4,
            persistence: 0.5,
        }
    }
}

/// A square heightmap with bilinear interpolation.
///
/// # Example
///
/// ```
/// use silvasec_sim::terrain::{Terrain, TerrainConfig};
/// use silvasec_sim::rng::SimRng;
/// use silvasec_sim::geom::Vec2;
///
/// let t = Terrain::generate(&TerrainConfig::default(), &mut SimRng::from_seed(1));
/// let h = t.height_at(Vec2::new(250.0, 250.0));
/// assert!(h.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Terrain {
    heights: Vec<f64>,
    cells: usize, // grid points per side
    cell_m: f64,
    size_m: f64,
    /// Per-octave lattice values, kept between regenerations so the
    /// episode-reset fast path redraws terrain without allocating.
    lattice_scratch: Vec<f64>,
}

impl Terrain {
    /// Generates terrain from a configuration and RNG.
    ///
    /// # Panics
    ///
    /// Panics if `size_m` or `cell_m` is not positive, or the grid would
    /// be degenerate.
    #[must_use]
    pub fn generate(config: &TerrainConfig, rng: &mut SimRng) -> Self {
        let mut terrain = Terrain {
            heights: Vec::new(),
            cells: 2,
            cell_m: config.cell_m,
            size_m: config.size_m,
            lattice_scratch: Vec::new(),
        };
        terrain.regenerate(config, rng);
        terrain
    }

    /// Redraws this terrain in place from `config` and `rng`, reusing the
    /// height grid and lattice scratch allocations. The RNG draw order
    /// and every computed height are identical to [`Terrain::generate`],
    /// so a regenerated terrain is indistinguishable from a fresh one —
    /// zero allocations once the buffers have warmed to the largest
    /// episode shape.
    ///
    /// # Panics
    ///
    /// Panics if `size_m` or `cell_m` is not positive, or the grid would
    /// be degenerate.
    pub fn regenerate(&mut self, config: &TerrainConfig, rng: &mut SimRng) {
        assert!(
            config.size_m > 0.0 && config.cell_m > 0.0,
            "terrain dimensions must be positive"
        );
        let cells = (config.size_m / config.cell_m).ceil() as usize + 1;
        assert!(cells >= 2, "terrain grid too small");

        self.heights.clear();
        self.heights.resize(cells * cells, 0.0);
        let heights = &mut self.heights;
        let mut amplitude = config.relief_m / 2.0;
        // Base lattice ~8 features per side at octave 0.
        let mut lattice_n = 8usize;
        let mut lattice = std::mem::take(&mut self.lattice_scratch);

        for _octave in 0..config.octaves.max(1) {
            // Random lattice values for this octave.
            let ln = lattice_n + 1;
            lattice.clear();
            lattice.extend((0..ln * ln).map(|_| rng.uniform_range(-1.0, 1.0)));

            for gy in 0..cells {
                for gx in 0..cells {
                    // Position in lattice coordinates.
                    let fx = gx as f64 / (cells - 1) as f64 * lattice_n as f64;
                    let fy = gy as f64 / (cells - 1) as f64 * lattice_n as f64;
                    let x0 = (fx.floor() as usize).min(lattice_n - 1);
                    let y0 = (fy.floor() as usize).min(lattice_n - 1);
                    let tx = smooth(fx - x0 as f64);
                    let ty = smooth(fy - y0 as f64);
                    let v00 = lattice[y0 * ln + x0];
                    let v10 = lattice[y0 * ln + x0 + 1];
                    let v01 = lattice[(y0 + 1) * ln + x0];
                    let v11 = lattice[(y0 + 1) * ln + x0 + 1];
                    let v = lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty);
                    heights[gy * cells + gx] += amplitude * v;
                }
            }
            amplitude *= config.persistence;
            lattice_n *= 2;
        }
        self.lattice_scratch = lattice;

        self.cells = cells;
        self.cell_m = config.cell_m;
        self.size_m = config.size_m;
    }

    /// Builds perfectly flat terrain (baseline for occlusion experiments).
    #[must_use]
    pub fn flat(size_m: f64, cell_m: f64) -> Self {
        assert!(
            size_m > 0.0 && cell_m > 0.0,
            "terrain dimensions must be positive"
        );
        let cells = (size_m / cell_m).ceil() as usize + 1;
        Terrain {
            heights: vec![0.0; cells * cells],
            cells,
            cell_m,
            size_m,
            lattice_scratch: Vec::new(),
        }
    }

    /// Side length in metres.
    #[must_use]
    pub fn size_m(&self) -> f64 {
        self.size_m
    }

    /// Whether `p` lies inside the terrain extent.
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        (0.0..=self.size_m).contains(&p.x) && (0.0..=self.size_m).contains(&p.y)
    }

    /// Ground height at `p`, bilinearly interpolated. Points outside the
    /// extent are clamped to the border.
    #[must_use]
    pub fn height_at(&self, p: Vec2) -> f64 {
        let max = (self.cells - 1) as f64;
        let fx = (p.x / self.cell_m).clamp(0.0, max);
        let fy = (p.y / self.cell_m).clamp(0.0, max);
        let x0 = (fx.floor() as usize).min(self.cells - 2);
        let y0 = (fy.floor() as usize).min(self.cells - 2);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let at = |x: usize, y: usize| self.heights[y * self.cells + x];
        lerp(
            lerp(at(x0, y0), at(x0 + 1, y0), tx),
            lerp(at(x0, y0 + 1), at(x0 + 1, y0 + 1), tx),
            ty,
        )
    }

    /// Approximate slope magnitude (rise over run) at `p`.
    ///
    /// Central differences over the four axis neighbours at `±cell_m`,
    /// computed in a single pass: the two horizontal samples share the
    /// `y`-axis clamp/floor/weight and the two vertical samples share
    /// the `x`-axis one, instead of issuing four full bilinear
    /// `height_at` queries that each redo both axes. Results are
    /// bit-identical to the four-query formulation (each fractional
    /// coordinate is computed with the same operations).
    #[must_use]
    pub fn slope_at(&self, p: Vec2) -> f64 {
        let d = self.cell_m;
        let max = (self.cells - 1) as f64;
        let hi = self.cells - 2;
        let axis = |coord: f64| {
            let f = (coord / self.cell_m).clamp(0.0, max);
            let i0 = (f.floor() as usize).min(hi);
            (i0, f - i0 as f64)
        };
        let at = |x: usize, y: usize| self.heights[y * self.cells + x];
        let sample = |(x0, tx): (usize, f64), (y0, ty): (usize, f64)| {
            lerp(
                lerp(at(x0, y0), at(x0 + 1, y0), tx),
                lerp(at(x0, y0 + 1), at(x0 + 1, y0 + 1), tx),
                ty,
            )
        };
        let ax = axis(p.x);
        let ay = axis(p.y);
        let hx = (sample(axis(p.x + d), ay) - sample(axis(p.x - d), ay)) / (2.0 * d);
        let hy = (sample(ax, axis(p.y + d)) - sample(ax, axis(p.y - d))) / (2.0 * d);
        hx.hypot(hy)
    }

    /// Whether the terrain rises above the straight 3-D segment
    /// `from`–`to` (plus `clearance_m`) anywhere in the parameter window
    /// `t ∈ [t_lo, t_hi]` of the segment.
    ///
    /// This is the line-of-sight terrain test, done exactly: the segment
    /// is walked cell by cell in grid-aligned steps (one cell-corner
    /// fetch per crossed heightmap cell instead of a fixed-step chain of
    /// full bilinear `height_at` queries). Within one cell the bilinear
    /// surface along the segment is a quadratic in `t`, so the *maximum*
    /// terrain excess over the ray is evaluated in closed form — the
    /// result dominates any fixed-step sampling of the same window (a
    /// sampled exceedance is a lower bound on the true maximum), which is
    /// what the equivalence tests in `los.rs` pin down. Early-out on the
    /// first occluding cell is preserved.
    ///
    /// Out-of-extent portions of the segment use the same border
    /// clamping as [`Terrain::height_at`]: between two boundary
    /// crossings the clamped cell coordinates stay affine in `t`, so the
    /// closed form remains exact there too.
    #[must_use]
    pub fn occludes_segment(
        &self,
        from: crate::geom::Vec3,
        to: crate::geom::Vec3,
        t_lo: f64,
        t_hi: f64,
        clearance_m: f64,
    ) -> bool {
        // Degenerate or NaN window: nothing to test.
        if t_lo.partial_cmp(&t_hi) != Some(std::cmp::Ordering::Less) {
            return false;
        }
        let max = (self.cells - 1) as f64;
        let hi = self.cells - 2;
        // Segment in grid (cell-index) coordinates.
        let fx_a = from.x / self.cell_m;
        let fy_a = from.y / self.cell_m;
        let dfx = to.x / self.cell_m - fx_a;
        let dfy = to.y / self.cell_m - fy_a;
        let dz = to.z - from.z;

        // Next grid-line crossing strictly after `t` along one axis.
        let next_crossing = |origin: f64, delta: f64, t: f64| -> f64 {
            if delta.abs() < 1e-12 {
                return f64::INFINITY;
            }
            let here = origin + delta * t;
            let k = if delta > 0.0 {
                here.floor() + 1.0
            } else {
                here.ceil() - 1.0
            };
            let cand = (k - origin) / delta;
            if cand > t {
                cand
            } else {
                // `here` sat exactly on a grid line; take the following one.
                (if delta > 0.0 { k + 1.0 } else { k - 1.0 } - origin) / delta
            }
        };

        let mut t_cur = t_lo;
        // At most one crossing per grid line per axis (plus slack); the
        // bound guards against float-pathological non-advancement.
        for _ in 0..(4 * self.cells + 16) {
            let t_next = next_crossing(fx_a, dfx, t_cur)
                .min(next_crossing(fy_a, dfy, t_cur))
                .min(t_hi);
            let width = t_next - t_cur;
            if width > 1e-12 {
                // Cell under the midpoint, clamped like `height_at`.
                let tm = 0.5 * (t_cur + t_next);
                let fxm = (fx_a + dfx * tm).clamp(0.0, max);
                let fym = (fy_a + dfy * tm).clamp(0.0, max);
                let x0 = (fxm.floor() as usize).min(hi);
                let y0 = (fym.floor() as usize).min(hi);
                let h00 = self.heights[y0 * self.cells + x0];
                let h10 = self.heights[y0 * self.cells + x0 + 1];
                let h01 = self.heights[(y0 + 1) * self.cells + x0];
                let h11 = self.heights[(y0 + 1) * self.cells + x0 + 1];
                let (c1, c2, c3) = (h10 - h00, h01 - h00, h11 - h10 - h01 + h00);
                // Cell-local coordinates at the piece ends; affine across
                // the piece (no grid line is crossed inside it).
                let txs = (fx_a + dfx * t_cur).clamp(0.0, max) - x0 as f64;
                let txe = (fx_a + dfx * t_next).clamp(0.0, max) - x0 as f64;
                let tys = (fy_a + dfy * t_cur).clamp(0.0, max) - y0 as f64;
                let tye = (fy_a + dfy * t_next).clamp(0.0, max) - y0 as f64;
                let (dtx, dty) = (txe - txs, tye - tys);
                // Terrain minus (ray + clearance) as a quadratic in the
                // piece-local parameter s ∈ [0, 1].
                let ray_s = from.z + dz * t_cur + clearance_m;
                let a = c3 * dtx * dty;
                let b = c1 * dtx + c2 * dty + c3 * (txs * dty + dtx * tys) - dz * width;
                let c = h00 + c1 * txs + c2 * tys + c3 * txs * tys - ray_s;
                let g = |s: f64| (a * s + b) * s + c;
                if g(0.0) > 0.0 || g(1.0) > 0.0 {
                    return true;
                }
                if a < 0.0 {
                    let s_peak = -b / (2.0 * a);
                    if s_peak > 0.0 && s_peak < 1.0 && g(s_peak) > 0.0 {
                        return true;
                    }
                }
            }
            if t_next >= t_hi {
                break;
            }
            t_cur = t_next;
        }
        false
    }

    /// Maximum height difference across the map (a roughness summary).
    #[must_use]
    pub fn relief(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &h in &self.heights {
            min = min.min(h);
            max = max.max(h);
        }
        if min.is_finite() {
            max - min
        } else {
            0.0
        }
    }
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Smoothstep easing for value noise.
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_terrain(seed: u64) -> Terrain {
        Terrain::generate(&TerrainConfig::default(), &mut SimRng::from_seed(seed))
    }

    #[test]
    fn deterministic_generation() {
        let a = default_terrain(1);
        let b = default_terrain(1);
        let p = Vec2::new(123.0, 45.0);
        assert_eq!(a.height_at(p), b.height_at(p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = default_terrain(1);
        let b = default_terrain(2);
        let p = Vec2::new(123.0, 45.0);
        assert_ne!(a.height_at(p), b.height_at(p));
    }

    #[test]
    fn relief_is_bounded_by_config() {
        let t = default_terrain(3);
        // Sum of octave amplitudes: 9(1+.5+.25+.125) < 17; peak-to-valley
        // can be at most twice that.
        assert!(t.relief() > 1.0, "terrain should not be flat");
        assert!(t.relief() < 40.0, "relief {} implausibly large", t.relief());
    }

    #[test]
    fn flat_terrain_is_flat() {
        let t = Terrain::flat(100.0, 5.0);
        for p in [
            Vec2::new(0.0, 0.0),
            Vec2::new(50.0, 50.0),
            Vec2::new(99.0, 1.0),
        ] {
            assert_eq!(t.height_at(p), 0.0);
            assert_eq!(t.slope_at(p), 0.0);
        }
        assert_eq!(t.relief(), 0.0);
    }

    #[test]
    fn height_query_is_continuous() {
        let t = default_terrain(4);
        let p = Vec2::new(200.0, 200.0);
        let h0 = t.height_at(p);
        let h1 = t.height_at(p + Vec2::new(0.01, 0.0));
        assert!(
            (h0 - h1).abs() < 0.1,
            "height jumped by {}",
            (h0 - h1).abs()
        );
    }

    #[test]
    fn out_of_bounds_clamps() {
        let t = default_terrain(5);
        let inside = t.height_at(Vec2::new(0.0, 0.0));
        let outside = t.height_at(Vec2::new(-100.0, -100.0));
        assert_eq!(inside, outside);
        assert!(t.contains(Vec2::new(1.0, 1.0)));
        assert!(!t.contains(Vec2::new(-1.0, 1.0)));
        assert!(!t.contains(Vec2::new(1.0, 10_000.0)));
    }

    #[test]
    fn slope_positive_on_rough_terrain() {
        let t = default_terrain(6);
        let mut any_slope = false;
        for i in 1..10 {
            let p = Vec2::new(i as f64 * 45.0, i as f64 * 40.0);
            if t.slope_at(p) > 0.01 {
                any_slope = true;
            }
        }
        assert!(any_slope, "expected some sloped ground");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Terrain::flat(0.0, 1.0);
    }

    #[test]
    fn slope_matches_pinned_four_query_values() {
        // Values captured from the previous implementation (four full
        // bilinear `height_at` queries) before the one-pass rewrite;
        // the rewrite must reproduce them bit for bit.
        let t = default_terrain(7);
        let cases = [
            (Vec2::new(0.0, 0.0), 0.109_999_975_511_147_9),
            (Vec2::new(12.3, 45.6), 0.144_568_858_508_378_28),
            (Vec2::new(250.0, 250.0), 0.147_767_487_256_419_03),
            (Vec2::new(123.4, 77.8), 0.085_919_695_713_150_28),
            (Vec2::new(499.0, 499.0), 0.093_658_360_809_946_86),
            (Vec2::new(-10.0, 600.0), 0.0),
        ];
        for (p, expected) in cases {
            assert_eq!(t.slope_at(p), expected, "slope at ({}, {})", p.x, p.y);
        }
    }

    #[test]
    fn slope_matches_four_query_reference() {
        // Dense cross-check against the naive four-`height_at`
        // formulation the one-pass version replaced.
        let reference = |t: &Terrain, p: Vec2| {
            let d = TerrainConfig::default().cell_m;
            let hx = (t.height_at(Vec2::new(p.x + d, p.y)) - t.height_at(Vec2::new(p.x - d, p.y)))
                / (2.0 * d);
            let hy = (t.height_at(Vec2::new(p.x, p.y + d)) - t.height_at(Vec2::new(p.x, p.y - d)))
                / (2.0 * d);
            hx.hypot(hy)
        };
        for seed in [1, 9, 42] {
            let t = default_terrain(seed);
            for i in 0..40 {
                for j in 0..40 {
                    let p = Vec2::new(i as f64 * 12.7 - 4.0, j as f64 * 13.1 - 4.0);
                    assert_eq!(
                        t.slope_at(p),
                        reference(&t, p),
                        "mismatch at ({}, {})",
                        p.x,
                        p.y
                    );
                }
            }
        }
    }
}
