//! A deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (stable tie-breaking
//! by a monotonically increasing sequence number) — a prerequisite for the
//! determinism invariant of the whole simulator.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry in the queue.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use silvasec_sim::event::EventQueue;
/// use silvasec_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(s) if s.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(5), 'b');
        assert_eq!(
            q.pop_until(SimTime::from_secs(2)).map(|(_, e)| e),
            Some('a')
        );
        assert_eq!(q.pop_until(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)).map(|(_, e)| e),
            Some('b')
        );
    }

    #[test]
    fn next_time_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(SimTime::from_secs(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
