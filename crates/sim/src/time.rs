//! Simulation time: millisecond-resolution instants and durations.
//!
//! There is no wall clock anywhere in the simulator; everything runs on
//! [`SimTime`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulation time (milliseconds since scenario start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The scenario start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from milliseconds since start.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from seconds since start.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Milliseconds since scenario start.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since scenario start (fractional).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Creates a duration from fractional seconds (rounded to ms).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be non-negative and finite"
        );
        SimDuration((s * 1000.0).round() as u64)
    }

    /// Length in milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds (fractional).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be non-negative and finite"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        // Saturating subtraction.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            SimDuration::ZERO
        );
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_millis(250);
        assert_eq!(t2.as_millis(), 250);
    }

    #[test]
    fn since_and_scaling() {
        let a = SimTime::from_secs(4);
        let b = SimTime::from_secs(10);
        assert_eq!(b.since(a), SimDuration::from_secs(6));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.25),
            SimDuration::from_millis(2500)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "t+1.234s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "0.050s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
