//! Weather states and their effect factors on sensors and radio.
//!
//! The paper's SOTIF discussion (Sec. III-C/III-D) calls out inadequate
//! sensing under environmental conditions — precipitation, fog, lighting —
//! as a primary functional-insufficiency trigger. The weather model is a
//! small Markov chain over discrete states, each carrying attenuation
//! factors that the sensor and radio models consume.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Discrete weather states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Weather {
    /// Clear daylight.
    Clear,
    /// Overcast; slightly reduced optical contrast.
    Overcast,
    /// Rain; optical range reduced, radio slightly attenuated.
    Rain,
    /// Heavy rain; strong optical and mild radio degradation.
    HeavyRain,
    /// Fog; severe optical range reduction.
    Fog,
    /// Snow; optical degradation plus ground clutter.
    Snow,
}

impl Weather {
    /// All states, in Markov-chain index order.
    pub const ALL: [Weather; 6] = [
        Weather::Clear,
        Weather::Overcast,
        Weather::Rain,
        Weather::HeavyRain,
        Weather::Fog,
        Weather::Snow,
    ];

    /// Multiplier on optical sensor range (cameras, LiDAR), in `(0, 1]`.
    #[must_use]
    pub fn optical_range_factor(self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Overcast => 0.95,
            Weather::Rain => 0.7,
            Weather::HeavyRain => 0.45,
            Weather::Fog => 0.3,
            Weather::Snow => 0.55,
        }
    }

    /// Additional radio path attenuation in dB (applied to link budgets).
    #[must_use]
    pub fn radio_attenuation_db(self) -> f64 {
        match self {
            Weather::Clear | Weather::Overcast => 0.0,
            Weather::Rain => 1.0,
            Weather::HeavyRain => 3.0,
            Weather::Fog => 0.5,
            Weather::Snow => 1.5,
        }
    }

    /// Multiplier on detection (classification) confidence, in `(0, 1]`.
    #[must_use]
    pub fn detection_confidence_factor(self) -> f64 {
        match self {
            Weather::Clear => 1.0,
            Weather::Overcast => 0.97,
            Weather::Rain => 0.85,
            Weather::HeavyRain => 0.7,
            Weather::Fog => 0.6,
            Weather::Snow => 0.75,
        }
    }
}

/// A simple Markov weather process.
#[derive(Debug, Clone)]
pub struct WeatherModel {
    state: Weather,
    /// Probability of attempting a transition per step.
    change_prob: f64,
}

impl WeatherModel {
    /// Creates a model starting in `initial` with the given per-step
    /// transition probability.
    #[must_use]
    pub fn new(initial: Weather, change_prob: f64) -> Self {
        WeatherModel {
            state: initial,
            change_prob: change_prob.clamp(0.0, 1.0),
        }
    }

    /// The current state.
    #[must_use]
    pub fn current(&self) -> Weather {
        self.state
    }

    /// Advances one step; transitions favour adjacent severities.
    pub fn step(&mut self, rng: &mut SimRng) -> Weather {
        if rng.chance(self.change_prob) {
            let idx = Weather::ALL
                .iter()
                .position(|w| *w == self.state)
                .expect("state in ALL");
            // Move to a neighbouring state (wrapping) or jump anywhere with
            // small probability — keeps sequences realistic but ergodic.
            let next = if rng.chance(0.8) {
                let delta: i64 = if rng.chance(0.5) { 1 } else { -1 };
                let n = Weather::ALL.len() as i64;
                Weather::ALL[(((idx as i64 + delta) % n + n) % n) as usize]
            } else {
                *rng.choose(&Weather::ALL).expect("non-empty")
            };
            self.state = next;
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_in_valid_ranges() {
        for w in Weather::ALL {
            assert!((0.0..=1.0).contains(&w.optical_range_factor()), "{w:?}");
            assert!(w.optical_range_factor() > 0.0);
            assert!(w.radio_attenuation_db() >= 0.0);
            assert!((0.0..=1.0).contains(&w.detection_confidence_factor()));
        }
    }

    #[test]
    fn clear_is_best() {
        for w in Weather::ALL {
            assert!(w.optical_range_factor() <= Weather::Clear.optical_range_factor());
            assert!(w.radio_attenuation_db() >= Weather::Clear.radio_attenuation_db());
        }
    }

    #[test]
    fn fog_degrades_optics_most() {
        for w in Weather::ALL {
            assert!(Weather::Fog.optical_range_factor() <= w.optical_range_factor());
        }
    }

    #[test]
    fn zero_change_prob_is_static() {
        let mut model = WeatherModel::new(Weather::Rain, 0.0);
        let mut rng = SimRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(model.step(&mut rng), Weather::Rain);
        }
    }

    #[test]
    fn model_is_ergodic() {
        let mut model = WeatherModel::new(Weather::Clear, 0.5);
        let mut rng = SimRng::from_seed(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(model.step(&mut rng));
        }
        assert_eq!(
            seen.len(),
            Weather::ALL.len(),
            "all states should be reachable"
        );
    }

    #[test]
    fn deterministic_sequence() {
        let run = |seed| {
            let mut m = WeatherModel::new(Weather::Clear, 0.3);
            let mut rng = SimRng::from_seed(seed);
            (0..50).map(|_| m.step(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
