//! Line-of-sight ray casting against terrain and trees.
//!
//! This is the geometric heart of the Figure 2 experiment: a sensor ray
//! from a forwarder-mounted camera travels near the ground and is blocked
//! by terrain ridges and tree trunks, while a drone-mounted sensor looks
//! down over those occluders (but through canopy).
//!
//! Visibility is **deterministic**: the result is a clear-sight factor in
//! `[0, 1]` (1 = fully clear, 0 = hard-blocked, in between = canopy
//! attenuation). Stochastic detection decisions belong to the sensor
//! models, not here.

use crate::geom::Vec3;
use crate::terrain::Terrain;
use crate::vegetation::TreeStand;
use serde::{Deserialize, Serialize};

/// What blocked (or attenuated) a sight line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Occlusion {
    /// A terrain ridge between the endpoints.
    Terrain,
    /// A tree trunk crossing the sight line.
    TreeTrunk,
    /// One or more tree canopies crossing the sight line.
    Canopy,
}

/// The result of a line-of-sight query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visibility {
    /// Clear-sight factor in `[0, 1]`.
    pub factor: f64,
    /// Dominant occluder, if any.
    pub blocker: Option<Occlusion>,
}

impl Visibility {
    /// A fully clear sight line.
    pub const CLEAR: Visibility = Visibility {
        factor: 1.0,
        blocker: None,
    };

    /// Whether the line is hard-blocked.
    #[must_use]
    pub fn is_blocked(&self) -> bool {
        self.factor <= 0.0
    }
}

/// Fraction of light transmitted through one canopy crossing.
const CANOPY_TRANSMISSION: f64 = 0.6;
/// Crown base as a fraction of tree height.
const CROWN_BASE_FRACTION: f64 = 0.55;
/// Clearance the ray keeps above terrain before counting as blocked.
const TERRAIN_EPS_M: f64 = 0.15;
/// Endpoint margin excluded from the terrain test (fraction of the ray).
const TERRAIN_MARGIN: f64 = 0.02;

/// Casts a sight line from `from` to `to` (absolute altitudes).
///
/// Endpoints themselves never occlude: the terrain test excludes a small
/// margin at both ends so a sensor sitting just above the ground does not
/// "see" its own mounting terrain as a blocker.
///
/// This is the hot path of the Figure 2 study — one call per (sensor,
/// human, tick) — and performs **no heap allocation**: the terrain test
/// walks heightmap cells in grid-aligned steps with an exact per-cell
/// maximum ([`Terrain::occludes_segment`]) and trees are visited through
/// [`TreeStand::for_trees_near_segment`] instead of a collected
/// `Vec<&Tree>`.
#[must_use]
pub fn line_of_sight(terrain: &Terrain, stand: &TreeStand, from: Vec3, to: Vec3) -> Visibility {
    let a2 = from.xy();
    let b2 = to.xy();
    let length = from.distance(to);
    if length < 1e-9 {
        return Visibility::CLEAR;
    }

    // --- Terrain test ---
    let horiz = a2.distance(b2);
    if horiz > 1e-9
        && terrain.occludes_segment(
            from,
            to,
            TERRAIN_MARGIN,
            1.0 - TERRAIN_MARGIN,
            TERRAIN_EPS_M,
        )
    {
        return Visibility {
            factor: 0.0,
            blocker: Some(Occlusion::Terrain),
        };
    }

    // --- Tree test ---
    let mut factor = 1.0;
    let mut canopy_hits = 0usize;
    let mut trunk_hit = false;
    let vertical_ray = horiz < 1e-6;
    let ab = b2 - a2;
    let len2 = ab.dot(ab);
    stand.for_trees_near_segment(a2, b2, 0.0, |tree| {
        let ground_z = terrain.height_at(tree.position);
        let trunk_top = ground_z + tree.height_m;
        let crown_base = ground_z + tree.height_m * CROWN_BASE_FRACTION;
        let ray_lo = from.z.min(to.z);
        let ray_hi = from.z.max(to.z);

        if vertical_ray {
            // A (near-)vertical ray passes through every altitude between
            // its endpoints at a fixed ground position.
            let dist2 = a2.distance(tree.position);
            if dist2 <= tree.trunk_radius_m && ray_lo <= trunk_top && ray_hi >= ground_z {
                trunk_hit = true;
                return false;
            }
            if dist2 <= tree.canopy_radius_m && ray_lo <= trunk_top && ray_hi >= crown_base {
                canopy_hits += 1;
                factor *= CANOPY_TRANSMISSION;
            }
            return true;
        }

        // Parameter of closest approach in 2-D.
        let t = ((tree.position - a2).dot(ab) / len2).clamp(0.0, 1.0);
        // Endpoint margins: a tree exactly at an endpoint is the viewer or
        // the target's own position, not an occluder.
        if !(0.01..=0.99).contains(&t) {
            return true;
        }
        let closest2 = a2.lerp(b2, t);
        let dist2 = closest2.distance(tree.position);
        let ray_z = from.z + (to.z - from.z) * t;

        if dist2 <= tree.trunk_radius_m && ray_z <= trunk_top {
            trunk_hit = true;
            return false;
        }
        if dist2 <= tree.canopy_radius_m && ray_z >= crown_base && ray_z <= trunk_top {
            canopy_hits += 1;
            factor *= CANOPY_TRANSMISSION;
        }
        true
    });

    if trunk_hit {
        Visibility {
            factor: 0.0,
            blocker: Some(Occlusion::TreeTrunk),
        }
    } else if canopy_hits > 0 {
        Visibility {
            factor,
            blocker: Some(Occlusion::Canopy),
        }
    } else {
        Visibility::CLEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Vec2;
    use crate::rng::SimRng;
    use crate::terrain::{Terrain, TerrainConfig};
    use crate::vegetation::{StandConfig, Tree, TreeStand};

    fn flat() -> Terrain {
        Terrain::flat(200.0, 5.0)
    }

    fn empty_stand() -> TreeStand {
        TreeStand::from_trees(Vec::new(), 200.0)
    }

    #[test]
    fn clear_over_flat_empty_ground() {
        let v = line_of_sight(
            &flat(),
            &empty_stand(),
            Vec3::new(10.0, 10.0, 2.0),
            Vec3::new(150.0, 150.0, 1.2),
        );
        assert_eq!(v, Visibility::CLEAR);
        assert!(!v.is_blocked());
    }

    #[test]
    fn terrain_ridge_blocks_ground_ray_but_not_aerial() {
        // Build rough terrain and find a blocked ground-level pair, then
        // show an elevated observer at the same xy sees over it.
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 30.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(9),
        );
        let stand = empty_stand();
        let mut found = false;
        'outer: for i in 0..20 {
            for j in 0..20 {
                let a2 = Vec2::new(25.0 * (i as f64 % 19.0) + 5.0, 13.0 * (i as f64) % 490.0);
                let b2 = Vec2::new(
                    480.0 - 23.0 * (j as f64 % 20.0),
                    490.0 - 11.0 * (j as f64) % 490.0,
                );
                let a = a2.with_z(terrain.height_at(a2) + 2.0);
                let b = b2.with_z(terrain.height_at(b2) + 1.2);
                let ground = line_of_sight(&terrain, &stand, a, b);
                if ground.blocker == Some(Occlusion::Terrain) {
                    // A drone hovering near the target looks down instead.
                    let overhead = (b2 + Vec2::new(20.0, 0.0)).with_z(terrain.height_at(b2) + 80.0);
                    let from_above = line_of_sight(&terrain, &stand, overhead, b);
                    assert_ne!(
                        from_above.blocker,
                        Some(Occlusion::Terrain),
                        "a steep 80 m vantage should clear terrain occlusion"
                    );
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(
            found,
            "expected at least one terrain-occluded pair on rough ground"
        );
    }

    #[test]
    fn trunk_blocks_ray() {
        let tree = Tree {
            position: Vec2::new(50.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.3,
            canopy_radius_m: 2.5,
        };
        let stand = TreeStand::from_trees(vec![tree], 200.0);
        let v = line_of_sight(
            &flat(),
            &stand,
            Vec3::new(10.0, 50.0, 1.5),
            Vec3::new(90.0, 50.0, 1.2),
        );
        assert_eq!(v.blocker, Some(Occlusion::TreeTrunk));
        assert!(v.is_blocked());
    }

    #[test]
    fn ray_above_tree_clears() {
        let tree = Tree {
            position: Vec2::new(50.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.3,
            canopy_radius_m: 2.5,
        };
        let stand = TreeStand::from_trees(vec![tree], 200.0);
        let v = line_of_sight(
            &flat(),
            &stand,
            Vec3::new(10.0, 50.0, 25.0),
            Vec3::new(90.0, 50.0, 25.0),
        );
        assert_eq!(v, Visibility::CLEAR);
    }

    #[test]
    fn canopy_attenuates_but_does_not_block() {
        let tree = Tree {
            position: Vec2::new(50.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.3,
            canopy_radius_m: 2.5,
        };
        let stand = TreeStand::from_trees(vec![tree], 200.0);
        // Ray passes through the crown band (z 11..20) but misses the trunk
        // horizontally? No — a straight ray at crown height with dist2 <
        // trunk radius would hit the trunk; offset laterally by 1 m.
        let v = line_of_sight(
            &flat(),
            &stand,
            Vec3::new(10.0, 51.0, 15.0),
            Vec3::new(90.0, 51.0, 15.0),
        );
        assert_eq!(v.blocker, Some(Occlusion::Canopy));
        assert!((v.factor - 0.6).abs() < 1e-9);
        assert!(!v.is_blocked());
    }

    #[test]
    fn drone_looking_down_through_canopy() {
        let tree = Tree {
            position: Vec2::new(50.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.3,
            canopy_radius_m: 2.5,
        };
        let stand = TreeStand::from_trees(vec![tree], 200.0);
        // Person 1 m from the trunk; drone directly overhead at 60 m looks
        // down: the ray crosses the crown band near the top.
        let v = line_of_sight(
            &flat(),
            &stand,
            Vec3::new(51.0, 50.0, 60.0),
            Vec3::new(51.0, 50.0, 1.2),
        );
        assert_eq!(v.blocker, Some(Occlusion::Canopy));
        assert!(v.factor > 0.0);
    }

    #[test]
    fn endpoint_tree_does_not_self_occlude() {
        // The target stands exactly at a tree position (leaning on it).
        let tree = Tree {
            position: Vec2::new(90.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.3,
            canopy_radius_m: 2.5,
        };
        let stand = TreeStand::from_trees(vec![tree], 200.0);
        let v = line_of_sight(
            &flat(),
            &stand,
            Vec3::new(10.0, 50.0, 1.5),
            Vec3::new(90.0, 50.0, 1.2),
        );
        assert!(
            !v.is_blocked(),
            "tree at the target position must not block"
        );
    }

    #[test]
    fn denser_stand_lowers_average_visibility() {
        let mut rng = SimRng::from_seed(11);
        let terrain = Terrain::flat(200.0, 5.0);
        let avg_factor = |density: f64, rng: &mut SimRng| -> f64 {
            let stand = TreeStand::generate(
                &StandConfig {
                    trees_per_hectare: density,
                    ..StandConfig::default()
                },
                200.0,
                rng,
            );
            let mut sum = 0.0;
            let n = 50;
            for i in 0..n {
                let from = Vec3::new(5.0, 4.0 * i as f64, 2.5);
                let to = Vec3::new(195.0, 200.0 - 4.0 * i as f64, 1.2);
                sum += line_of_sight(&terrain, &stand, from, to).factor;
            }
            sum / n as f64
        };
        let sparse = avg_factor(100.0, &mut rng);
        let dense = avg_factor(1500.0, &mut rng);
        assert!(
            dense < sparse,
            "denser stand should reduce visibility ({dense} vs {sparse})"
        );
    }

    #[test]
    fn zero_length_ray_is_clear() {
        let p = Vec3::new(10.0, 10.0, 1.0);
        assert_eq!(
            line_of_sight(&flat(), &empty_stand(), p, p),
            Visibility::CLEAR
        );
    }

    /// The terrain test this module shipped with before the grid-aligned
    /// fast path: fixed 2 m sampling of `height_at` along the ray.
    fn terrain_blocks_by_sampling(terrain: &Terrain, from: Vec3, to: Vec3) -> bool {
        const STEP_M: f64 = 2.0;
        let a2 = from.xy();
        let b2 = to.xy();
        let horiz = a2.distance(b2);
        if horiz <= 1e-9 {
            return false;
        }
        let steps = (horiz / STEP_M).ceil().max(2.0) as usize;
        for i in 1..steps {
            let t = i as f64 / steps as f64;
            if !(0.02..=0.98).contains(&t) {
                continue;
            }
            let p2 = a2.lerp(b2, t);
            let ray_z = from.z + (to.z - from.z) * t;
            if terrain.height_at(p2) > ray_z + TERRAIN_EPS_M {
                return true;
            }
        }
        false
    }

    /// Deterministic pseudo-random ray endpoints for the equivalence
    /// sweeps below.
    fn test_rays(terrain: &Terrain, n: usize, seed: u64) -> Vec<(Vec3, Vec3)> {
        let mut rng = SimRng::from_seed(seed);
        (0..n)
            .map(|_| {
                let a2 = Vec2::new(rng.uniform_range(0.0, 500.0), rng.uniform_range(0.0, 500.0));
                let b2 = Vec2::new(rng.uniform_range(0.0, 500.0), rng.uniform_range(0.0, 500.0));
                let a = a2.with_z(terrain.height_at(a2) + rng.uniform_range(0.5, 4.0));
                let b = b2.with_z(terrain.height_at(b2) + rng.uniform_range(0.5, 80.0));
                (a, b)
            })
            .collect()
    }

    #[test]
    fn grid_terrain_test_dominates_fixed_step_sampling() {
        // The exact per-cell maximum can only find *more* occlusions than
        // sampling the same window at discrete points: every sampled
        // exceedance is a lower bound on the cell maximum. So on any ray
        // where the old fixed-step test blocked, the new test must block
        // too — one-sided equivalence, no tolerance window needed.
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 30.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(9),
        );
        let mut sampled_blocked = 0usize;
        let mut exact_blocked = 0usize;
        for (a, b) in test_rays(&terrain, 400, 1234) {
            let old = terrain_blocks_by_sampling(&terrain, a, b);
            let new = terrain.occludes_segment(a, b, 0.02, 0.98, TERRAIN_EPS_M);
            sampled_blocked += usize::from(old);
            exact_blocked += usize::from(new);
            assert!(
                !old || new,
                "sampling blocked a ray the exact test cleared: {a:?} -> {b:?}"
            );
        }
        assert!(
            sampled_blocked > 0,
            "rough 30 m relief should occlude some test rays"
        );
        assert!(
            exact_blocked >= sampled_blocked,
            "exact test found fewer occlusions ({exact_blocked}) than sampling ({sampled_blocked})"
        );
        // The two tests agree on the overwhelming majority of rays; the
        // residue is exactly the near-graze geometry 2 m sampling steps
        // over. Pinned so a regression in either direction shows up.
        assert!(
            exact_blocked - sampled_blocked <= 400 / 20,
            "exact and sampled terrain tests diverged on >5% of rays ({exact_blocked} vs {sampled_blocked})"
        );
    }

    #[test]
    fn grid_terrain_test_matches_dense_sampling() {
        // Sampling at 0.05 m (40× finer than the old 2 m step) converges
        // to the true maximum; the closed-form test must agree with it on
        // every ray.
        let terrain = Terrain::generate(
            &TerrainConfig {
                relief_m: 25.0,
                ..TerrainConfig::default()
            },
            &mut SimRng::from_seed(21),
        );
        for (a, b) in test_rays(&terrain, 120, 99) {
            let a2 = a.xy();
            let b2 = b.xy();
            let horiz = a2.distance(b2);
            if horiz <= 1e-9 {
                continue;
            }
            let steps = ((horiz / 0.05).ceil() as usize).max(2);
            let mut worst = f64::NEG_INFINITY;
            for i in 0..=steps {
                let t = i as f64 / steps as f64;
                if !(0.02..=0.98).contains(&t) {
                    continue;
                }
                let ray_z = a.z + (b.z - a.z) * t;
                worst = worst.max(terrain.height_at(a2.lerp(b2, t)) - ray_z - TERRAIN_EPS_M);
            }
            let new = terrain.occludes_segment(a, b, 0.02, 0.98, TERRAIN_EPS_M);
            // Skip hairline cases within float noise of the threshold.
            if worst.abs() < 1e-6 {
                continue;
            }
            assert_eq!(
                new,
                worst > 0.0,
                "exact test disagrees with 0.05 m sampling (excess {worst}): {a:?} -> {b:?}"
            );
        }
    }

    #[test]
    fn visitor_tree_path_matches_vec_reference() {
        // Full line-of-sight equivalence on flat terrain (where the
        // terrain tests trivially agree): the visitor-based hot path must
        // reproduce the old collect-into-`Vec` implementation bit for
        // bit, including canopy attenuation products.
        let terrain = Terrain::flat(200.0, 5.0);
        let mut rng = SimRng::from_seed(31);
        let stand = TreeStand::generate(
            &StandConfig {
                trees_per_hectare: 900.0,
                ..StandConfig::default()
            },
            200.0,
            &mut rng,
        );
        let reference = |from: Vec3, to: Vec3| -> Visibility {
            let a2 = from.xy();
            let b2 = to.xy();
            if from.distance(to) < 1e-9 {
                return Visibility::CLEAR;
            }
            let horiz = a2.distance(b2);
            let mut factor = 1.0;
            let mut canopy_hits = 0usize;
            let vertical_ray = horiz < 1e-6;
            for tree in stand.trees_near_segment(a2, b2, 0.0) {
                let ground_z = terrain.height_at(tree.position);
                let trunk_top = ground_z + tree.height_m;
                let crown_base = ground_z + tree.height_m * CROWN_BASE_FRACTION;
                let ray_lo = from.z.min(to.z);
                let ray_hi = from.z.max(to.z);
                if vertical_ray {
                    let dist2 = a2.distance(tree.position);
                    if dist2 <= tree.trunk_radius_m && ray_lo <= trunk_top && ray_hi >= ground_z {
                        return Visibility {
                            factor: 0.0,
                            blocker: Some(Occlusion::TreeTrunk),
                        };
                    }
                    if dist2 <= tree.canopy_radius_m && ray_lo <= trunk_top && ray_hi >= crown_base
                    {
                        canopy_hits += 1;
                        factor *= CANOPY_TRANSMISSION;
                    }
                    continue;
                }
                let ab = b2 - a2;
                let len2 = ab.dot(ab);
                let t = ((tree.position - a2).dot(ab) / len2).clamp(0.0, 1.0);
                if !(0.01..=0.99).contains(&t) {
                    continue;
                }
                let closest2 = a2.lerp(b2, t);
                let dist2 = closest2.distance(tree.position);
                let ray_z = from.z + (to.z - from.z) * t;
                if dist2 <= tree.trunk_radius_m && ray_z <= trunk_top {
                    return Visibility {
                        factor: 0.0,
                        blocker: Some(Occlusion::TreeTrunk),
                    };
                }
                if dist2 <= tree.canopy_radius_m && ray_z >= crown_base && ray_z <= trunk_top {
                    canopy_hits += 1;
                    factor *= CANOPY_TRANSMISSION;
                }
            }
            if canopy_hits > 0 {
                Visibility {
                    factor,
                    blocker: Some(Occlusion::Canopy),
                }
            } else {
                Visibility::CLEAR
            }
        };

        let mut rng = SimRng::from_seed(77);
        let mut blocked = 0usize;
        let mut attenuated = 0usize;
        for _ in 0..300 {
            let a2 = Vec2::new(rng.uniform_range(0.0, 200.0), rng.uniform_range(0.0, 200.0));
            let b2 = Vec2::new(rng.uniform_range(0.0, 200.0), rng.uniform_range(0.0, 200.0));
            let from = a2.with_z(rng.uniform_range(0.5, 30.0));
            let to = b2.with_z(rng.uniform_range(0.5, 60.0));
            let new = line_of_sight(&terrain, &stand, from, to);
            let old = reference(from, to);
            assert_eq!(
                new, old,
                "visitor path diverged from Vec path: {from:?} -> {to:?}"
            );
            blocked += usize::from(new.blocker == Some(Occlusion::TreeTrunk));
            attenuated += usize::from(new.blocker == Some(Occlusion::Canopy));
        }
        assert!(blocked > 0, "a 900/ha stand should trunk-block some rays");
        assert!(
            attenuated > 0,
            "a 900/ha stand should canopy-attenuate some rays"
        );
    }

    // Also include a vertical-ray case against the reference (drone
    // directly overhead), which takes the `vertical_ray` branch.
    #[test]
    fn vertical_rays_behave_like_before() {
        let terrain = Terrain::flat(200.0, 5.0);
        let tree = Tree {
            position: Vec2::new(50.0, 50.0),
            height_m: 20.0,
            trunk_radius_m: 0.3,
            canopy_radius_m: 2.5,
        };
        let stand = TreeStand::from_trees(vec![tree], 200.0);
        // Through the trunk column.
        let v = line_of_sight(
            &terrain,
            &stand,
            Vec3::new(50.0, 50.0, 60.0),
            Vec3::new(50.0, 50.0, 0.5),
        );
        assert_eq!(v.blocker, Some(Occlusion::TreeTrunk));
        // Through the canopy only.
        let v = line_of_sight(
            &terrain,
            &stand,
            Vec3::new(51.5, 50.0, 60.0),
            Vec3::new(51.5, 50.0, 0.5),
        );
        assert_eq!(v.blocker, Some(Occlusion::Canopy));
        // Outside the canopy disc.
        let v = line_of_sight(
            &terrain,
            &stand,
            Vec3::new(55.0, 50.0, 60.0),
            Vec3::new(55.0, 50.0, 0.5),
        );
        assert_eq!(v, Visibility::CLEAR);
    }
}
