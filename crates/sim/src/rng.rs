//! The seeded simulation random number generator and distributions.
//!
//! [`SimRng`] wraps the crate-local ChaCha20 DRBG and adds the sampling
//! methods the world model needs. Independent subsystems fork labelled
//! child streams so that adding draws in one subsystem never perturbs
//! another — a prerequisite for meaningful ablation experiments.

use silvasec_crypto::drbg::ChaChaDrbg;

/// A deterministic random number generator for the simulation.
///
/// # Example
///
/// ```
/// use silvasec_sim::rng::SimRng;
///
/// let mut rng = SimRng::from_seed(42);
/// let mut comms = rng.fork("comms");
/// let mut attacks = rng.fork("attacks");
/// // The two streams are independent.
/// assert_ne!(comms.next_u64(), attacks.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaChaDrbg,
    // Cached second Box–Muller sample.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a numeric seed.
    ///
    /// Allocation-free (the seed material is assembled on the stack):
    /// the episode-reset fast path re-seeds generators per episode and
    /// must stay at zero allocations.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut material = [0u8; 24];
        material[..16].copy_from_slice(b"silvasec-sim-rng");
        material[16..].copy_from_slice(&seed.to_le_bytes());
        SimRng {
            inner: ChaChaDrbg::from_seed(&material),
            gauss_spare: None,
        }
    }

    /// Derives an independent labelled child generator.
    #[must_use]
    pub fn fork(&self, label: &str) -> Self {
        SimRng {
            inner: self.inner.fork(label.as_bytes()),
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.next_bounded(bound)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        // Avoid log(0).
        let u1 = loop {
            let v = self.uniform();
            if v > 1e-300 {
                break v;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential sample with the given rate λ (mean 1/λ).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = loop {
            let v = self.uniform();
            if v > 1e-300 {
                break v;
            }
        };
        -u.ln() / rate
    }

    /// Poisson sample with the given mean (Knuth's algorithm; suitable for
    /// the small means used by the world model).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
            // Guard against pathological means.
            if k > 10_000_000 {
                return k;
            }
        }
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.inner.fill_bytes(out);
    }

    /// Returns a fresh 32-byte seed (for keying crypto components).
    pub fn next_seed(&mut self) -> [u8; 32] {
        self.inner.next_seed()
    }
}

// ---------------------------------------------------------------------
// Stateless counter-based randomness.
//
// A full SimRng (ChaCha20 stream + fork labels) costs hundreds of bytes
// and a keyed setup per consumer; components that need one independent
// uniform draw per *counter tuple* — shadow fleet sites, ops queue
// backoff jitter — instead derive it from a splitmix64-style hash of
// (seed, id, …). Deterministic, order-independent, zero state.
// ---------------------------------------------------------------------

/// SplitMix64 finalizer: a cheap, well-mixed 64→64 bit hash.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of three counters, suitable as an independent uniform draw per
/// `(a, b, c)` tuple.
#[must_use]
pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
    mix64(a ^ mix64(b ^ mix64(c)))
}

/// Maps a hash to a uniform draw in `[0, 1)` (53 mantissa bits).
#[must_use]
pub fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_stable_and_independent() {
        let root = SimRng::from_seed(1);
        let mut f1 = root.fork("a");
        let mut f1_again = root.fork("a");
        let mut f2 = root.fork("b");
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::from_seed(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::from_seed(3);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean() {
        let mut rng = SimRng::from_seed(4);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = SimRng::from_seed(6);
        let empty: [u32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42u32];
        assert_eq!(rng.choose(&one), Some(&42));
        let many = [1u32, 2, 3];
        for _ in 0..20 {
            assert!(many.contains(rng.choose(&many).unwrap()));
        }
    }

    #[test]
    fn stateless_hash_is_deterministic_and_uniform() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        assert_eq!(u01(hash3(1, 2, 3)), u01(hash3(1, 2, 3)));
        assert_ne!(u01(hash3(1, 2, 3)), u01(hash3(1, 2, 4)));
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| u01(mix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for i in 0..1_000u64 {
            let v = u01(mix64(i));
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::from_seed(7);
        for _ in 0..1000 {
            let v = rng.uniform_range(-5.0, 3.0);
            assert!((-5.0..3.0).contains(&v));
        }
        assert_eq!(rng.uniform_range(2.0, 2.0), 2.0);
    }
}
