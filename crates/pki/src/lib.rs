//! Public-key infrastructure for the SilvaSec forestry worksite.
//!
//! Chattopadhyay & Lam (cited by the reproduced paper) argue that a
//! certificate authority issuing certificates to every component of a
//! cyber-physical system is the foundation for keeping untrusted
//! components out of safety-critical communication. This crate provides
//! that CA, plus the certificate, chain-validation, trust-store and
//! revocation machinery the secure channel and secure boot layers build on.
//!
//! * [`cert`] — certificates with a canonical signed encoding.
//! * [`ca`] — certificate authorities (root and intermediate) and issuance.
//! * [`crl`] — signed certificate revocation lists.
//! * [`store`] — trust stores and full chain validation.
//! * [`types`] — component roles, key-usage flags and validity windows.
//!
//! # Example: a worksite PKI in six lines
//!
//! ```
//! use silvasec_pki::prelude::*;
//!
//! let root = CertificateAuthority::new_root("RISE worksite root", &[1u8; 32], Validity::new(0, 1_000_000));
//! let mut forwarder_key = silvasec_crypto::schnorr::SigningKey::from_seed(&[2u8; 32]);
//! let cert = root.issue(
//!     &Subject::new("forwarder-01", ComponentRole::Forwarder),
//!     &forwarder_key.verifying_key(),
//!     KeyUsage::AUTHENTICATION,
//!     Validity::new(0, 500_000),
//! );
//! let store = TrustStore::with_roots([root.certificate().clone()]);
//! assert!(store.validate_chain(&[cert], 100, &[]).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cert;
pub mod crl;
pub mod error;
pub mod store;
pub mod types;

pub use ca::CertificateAuthority;
pub use cert::Certificate;
pub use crl::CertificateRevocationList;
pub use error::PkiError;
pub use store::TrustStore;
pub use types::{ComponentRole, KeyUsage, Subject, Validity};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::ca::CertificateAuthority;
    pub use crate::cert::Certificate;
    pub use crate::crl::CertificateRevocationList;
    pub use crate::error::PkiError;
    pub use crate::store::TrustStore;
    pub use crate::types::{ComponentRole, KeyUsage, Subject, Validity};
}
