//! Signed certificate revocation lists.

use crate::error::PkiError;
use serde::{Deserialize, Serialize};
use silvasec_crypto::schnorr::{Signature, SigningKey, VerifyingKey};

/// A revocation entry: which serial was revoked and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationEntry {
    /// Serial number of the revoked certificate.
    pub serial: u64,
    /// Worksite time at which revocation took effect.
    pub revoked_at: u64,
}

/// A signed list of revoked certificate serials for one issuer.
///
/// The paper's "remote and isolated locations" characteristic (Table I)
/// makes CRL freshness a real concern: machines may be offline for long
/// periods, so validators track the CRL `sequence` and `issued_at` and can
/// enforce a maximum staleness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertificateRevocationList {
    /// Id of the issuing authority.
    pub issuer_id: String,
    /// Monotonically increasing CRL sequence number.
    pub sequence: u64,
    /// Worksite time of issuance.
    pub issued_at: u64,
    /// The revoked serials.
    pub entries: Vec<RevocationEntry>,
    /// Issuer signature over the canonical encoding.
    pub signature: Vec<u8>,
}

impl CertificateRevocationList {
    /// Builds and signs a CRL. Used by
    /// [`crate::ca::CertificateAuthority::sign_crl`].
    #[must_use]
    pub fn new_signed(
        key: &SigningKey,
        issuer_id: &str,
        sequence: u64,
        issued_at: u64,
        revoked: &[(u64, u64)],
    ) -> Self {
        let mut entries: Vec<RevocationEntry> = revoked
            .iter()
            .map(|&(serial, revoked_at)| RevocationEntry { serial, revoked_at })
            .collect();
        entries.sort_by_key(|e| e.serial);
        let mut crl = CertificateRevocationList {
            issuer_id: issuer_id.to_owned(),
            sequence,
            issued_at,
            entries,
            signature: Vec::new(),
        };
        let sig = key.sign(&crl.tbs_bytes());
        crl.signature = sig.to_bytes().to_vec();
        crl
    }

    /// The canonical to-be-signed encoding.
    #[must_use]
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.tbs_len());
        self.tbs_write(&mut |b| out.extend_from_slice(b));
        out
    }

    /// Exact byte length of [`CertificateRevocationList::tbs_bytes`],
    /// without building it.
    #[must_use]
    pub fn tbs_len(&self) -> usize {
        15 + (4 + self.issuer_id.len()) + 8 + 8 + 4 + self.entries.len() * 16
    }

    /// Streams the TBS encoding into `sink` — the single source of truth
    /// for the encoding, shared by `tbs_bytes` and the streaming
    /// fingerprint path.
    fn tbs_write(&self, sink: &mut dyn FnMut(&[u8])) {
        sink(b"silvasec-crl-v1");
        sink(&(self.issuer_id.len() as u32).to_le_bytes());
        sink(self.issuer_id.as_bytes());
        sink(&self.sequence.to_le_bytes());
        sink(&self.issued_at.to_le_bytes());
        sink(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            sink(&e.serial.to_le_bytes());
            sink(&e.revoked_at.to_le_bytes());
        }
    }

    /// Absorbs `len(tbs) || tbs || len(sig) || sig` (u64 LE lengths) into
    /// a streaming hasher without materializing the TBS encoding.
    pub fn absorb_fingerprint(&self, h: &mut silvasec_crypto::sha256::Sha256) {
        h.update(&(self.tbs_len() as u64).to_le_bytes());
        self.tbs_write(&mut |b| h.update(b));
        h.update(&(self.signature.len() as u64).to_le_bytes());
        h.update(&self.signature);
    }

    /// Verifies the CRL signature against the issuer's key.
    ///
    /// # Errors
    ///
    /// Returns [`PkiError::BadCrl`] if the signature is malformed or does
    /// not verify.
    pub fn verify_signature(&self, issuer_key: &VerifyingKey) -> Result<(), PkiError> {
        let sig = Signature::from_bytes(&self.signature).map_err(|_| PkiError::BadCrl)?;
        issuer_key
            .verify(&self.tbs_bytes(), &sig)
            .map_err(|_| PkiError::BadCrl)
    }

    /// Whether `serial` is revoked at `time` according to this CRL.
    #[must_use]
    pub fn is_revoked(&self, serial: u64, time: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.serial == serial && e.revoked_at <= time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signed_crl() -> (CertificateRevocationList, SigningKey) {
        let key = SigningKey::from_seed(&[4u8; 32]);
        let crl = CertificateRevocationList::new_signed(&key, "root", 3, 100, &[(7, 50), (2, 90)]);
        (crl, key)
    }

    #[test]
    fn signature_verifies() {
        let (crl, key) = signed_crl();
        assert!(crl.verify_signature(&key.verifying_key()).is_ok());
    }

    #[test]
    fn entries_sorted_by_serial() {
        let (crl, _) = signed_crl();
        assert_eq!(crl.entries[0].serial, 2);
        assert_eq!(crl.entries[1].serial, 7);
    }

    #[test]
    fn tamper_detected() {
        let (mut crl, key) = signed_crl();
        crl.entries.pop();
        assert_eq!(
            crl.verify_signature(&key.verifying_key()),
            Err(PkiError::BadCrl)
        );
    }

    #[test]
    fn revocation_respects_time() {
        let (crl, _) = signed_crl();
        assert!(!crl.is_revoked(7, 49));
        assert!(crl.is_revoked(7, 50));
        assert!(crl.is_revoked(7, 1000));
        assert!(!crl.is_revoked(99, 1000));
    }

    #[test]
    fn serde_roundtrip() {
        let (crl, _) = signed_crl();
        let json = serde_json::to_string(&crl).unwrap();
        let back: CertificateRevocationList = serde_json::from_str(&json).unwrap();
        assert_eq!(back, crl);
    }
}
