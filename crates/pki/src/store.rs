//! Trust stores and chain validation.
//!
//! Chain validation is the per-handshake / per-OTA-verify hot path, so
//! it is organised around two amortisations (see DESIGN.md):
//!
//! * **Batched signature checks**: a validation pass first runs every
//!   cheap structural check in the original order while *collecting*
//!   the signature jobs (certificate and CRL signatures), then verifies
//!   them all in one [`silvasec_crypto::schnorr::verify_batch`] call.
//!   Any failure falls back to the exact sequential path, so the first
//!   error reported is always the same one the unbatched code returned.
//! * **A verified-chain cache**: once every signature in a chain (+ its
//!   CRLs, + the resolved root) has verified, that fact is recorded
//!   under a content fingerprint. Signature validity is a pure function
//!   of those bytes, so a later validation of the same chain can skip
//!   the signature work and re-run only the cheap, time-dependent
//!   checks (validity windows, CRL staleness, revocation) — outcomes
//!   are bit-identical to a full validation.

use crate::cert::Certificate;
use crate::crl::CertificateRevocationList;
use crate::error::PkiError;
use crate::types::KeyUsage;
use silvasec_crypto::schnorr::{self, Signature, VerifyingKey};
use silvasec_crypto::sha256::Sha256;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Default maximum accepted chain length (end entity + intermediates).
pub const DEFAULT_MAX_CHAIN_LEN: usize = 4;

/// Width of the verified-chain cache's validation-time bucket. Entries
/// are keyed by `time / bucket` in addition to the content fingerprint,
/// so a cached "signatures verified" fact is never consulted more than
/// one bucket away from when it was established (defense in depth — the
/// cached fact itself is time-independent).
pub const CHAIN_CACHE_TIME_BUCKET: u64 = 60_000;

/// Cache-size bound: when an insert would exceed this many entries, all
/// entries outside the current time bucket are evicted (deterministic,
/// no LRU clocks).
const CHAIN_CACHE_MAX_ENTRIES: usize = 1024;

/// A collected signature-verification job (deferred for batching).
struct SigJob {
    message: Vec<u8>,
    signature: Signature,
    key: VerifyingKey,
}

/// How [`TrustStore::validate_chain_inner`] treats signature checks.
enum SigCheck<'a> {
    /// Verify each signature inline, exactly like the original
    /// sequential implementation (error-precedence reference).
    Sequential,
    /// Skip signature checks: the verified-chain cache has already
    /// established that every signature over these exact bytes is good.
    Skip,
    /// Parse each signature (malformed signatures must still fail in
    /// order) and collect the verification jobs for one batched check.
    Collect(&'a mut Vec<SigJob>),
}

/// Verified-chain cache entries: a content fingerprint over the
/// chain+CRL+root bytes plus the validation-time bucket it was proven
/// in. See [`TrustStore::validate_chain`].
type VerifiedChainSet = Arc<Mutex<HashSet<([u8; 32], u64)>>>;

/// A set of trusted root certificates plus validation policy.
///
/// # Example
///
/// ```
/// use silvasec_pki::prelude::*;
/// use silvasec_crypto::schnorr::SigningKey;
///
/// let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1_000));
/// let key = SigningKey::from_seed(&[2u8; 32]);
/// let cert = root.issue_mut(
///     &Subject::new("drone-01", ComponentRole::Drone),
///     &key.verifying_key(),
///     KeyUsage::AUTHENTICATION,
///     Validity::new(0, 500),
/// );
/// let store = TrustStore::with_roots([root.certificate().clone()]);
/// assert!(store.validate_chain(&[cert.clone()], 100, &[]).is_ok());
/// assert!(store.validate_chain(&[cert], 600, &[]).is_err()); // expired
/// ```
#[derive(Debug, Clone)]
pub struct TrustStore {
    roots: HashMap<String, Certificate>,
    max_chain_len: usize,
    /// Maximum accepted CRL age; `None` disables staleness checks.
    max_crl_age: Option<u64>,
    /// Verified-chain cache: fingerprints of chain+CRL+root byte
    /// contents whose signatures have all verified, keyed additionally
    /// by validation-time bucket. Shared across clones (`Arc`) — safe,
    /// because entries are content-addressed facts, not policy
    /// decisions; all policy/time checks re-run on every hit.
    verified_chains: VerifiedChainSet,
}

impl Default for TrustStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TrustStore {
    /// Creates an empty trust store with default policy.
    #[must_use]
    pub fn new() -> Self {
        TrustStore {
            roots: HashMap::new(),
            max_chain_len: DEFAULT_MAX_CHAIN_LEN,
            max_crl_age: None,
            verified_chains: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    /// Creates a store trusting the given self-signed roots.
    ///
    /// # Panics
    ///
    /// Panics if any certificate is not self-signed or fails its own
    /// signature check — a trust anchor must at minimum be internally
    /// consistent.
    #[must_use]
    pub fn with_roots(roots: impl IntoIterator<Item = Certificate>) -> Self {
        let mut store = Self::new();
        for root in roots {
            store
                .add_root(root)
                .expect("trust anchor must be a valid self-signed certificate");
        }
        store
    }

    /// Adds a trusted root.
    ///
    /// # Errors
    ///
    /// Returns [`PkiError::BadSignature`] when the certificate is not a
    /// correctly self-signed authority certificate.
    pub fn add_root(&mut self, root: Certificate) -> Result<(), PkiError> {
        if !root.is_self_signed() {
            return Err(PkiError::BadSignature {
                subject: root.subject.id,
            });
        }
        let key = root.subject_key()?;
        root.verify_signature(&key)?;
        self.roots.insert(root.subject.id.clone(), root);
        Ok(())
    }

    /// Sets the maximum chain length.
    pub fn set_max_chain_len(&mut self, len: usize) {
        self.max_chain_len = len;
    }

    /// Requires CRLs to be no older than `age` time units at validation.
    pub fn set_max_crl_age(&mut self, age: u64) {
        self.max_crl_age = Some(age);
    }

    /// Whether an issuer id is a trusted root.
    #[must_use]
    pub fn is_trusted_root(&self, id: &str) -> bool {
        self.roots.contains_key(id)
    }

    /// Validates a chain `[end_entity, intermediate…]` at `time`.
    ///
    /// The chain is ordered from the end entity towards (but excluding)
    /// the root; the last element's issuer must be a trusted root. Every
    /// CRL in `crls` that matches an issuer in the chain is checked (after
    /// verifying the CRL's own signature and freshness).
    ///
    /// # Errors
    ///
    /// Any [`PkiError`] variant describing the first failure found,
    /// checking (in order): shape, issuer links, signatures, validity
    /// windows, key usage of intermediates, and revocation.
    pub fn validate_chain(
        &self,
        chain: &[Certificate],
        time: u64,
        crls: &[CertificateRevocationList],
    ) -> Result<(), PkiError> {
        if chain.is_empty() {
            return Err(PkiError::EmptyChain);
        }
        let cache_key = self.chain_cache_key(chain, time, crls);
        if self
            .verified_chains
            .lock()
            .expect("chain cache lock poisoned")
            .contains(&cache_key)
        {
            // Every signature over these exact bytes is known-good, so
            // skipping the signature checks cannot change which check
            // fails first; only the cheap time/policy checks re-run.
            return self.validate_chain_inner(chain, time, crls, &mut SigCheck::Skip);
        }

        // First pass: cheap checks in original order, signatures
        // collected for one batched verification.
        let mut jobs = Vec::new();
        let cheap = self.validate_chain_inner(chain, time, crls, &mut SigCheck::Collect(&mut jobs));
        let batch_ok = cheap.is_ok() && {
            let items: Vec<schnorr::BatchItem<'_>> = jobs
                .iter()
                .map(|j| schnorr::BatchItem {
                    message: &j.message,
                    signature: &j.signature,
                    key: &j.key,
                })
                .collect();
            schnorr::verify_batch(&items)
        };
        if batch_ok {
            self.chain_cache_insert(cache_key);
            return Ok(());
        }

        // Something failed — either a cheap check (whose error may be
        // preempted by an earlier signature failure in sequential
        // order) or the batch itself (which cannot name the failing
        // signature). Re-run the exact sequential reference path so the
        // reported error is identical to the pre-batching code.
        let result = self.validate_chain_inner(chain, time, crls, &mut SigCheck::Sequential);
        if result.is_ok() {
            self.chain_cache_insert(cache_key);
        }
        result
    }

    /// Content fingerprint for the verified-chain cache: hashes every
    /// chain certificate (TBS + signature), every CRL (TBS + signature),
    /// and the resolved root certificate's bytes, then pairs the digest
    /// with the validation-time bucket. Any change to chain bytes, CRL
    /// contents (including sequence bumps / new revocations), or the
    /// trusted root resolving the chain produces a different key.
    fn chain_cache_key(
        &self,
        chain: &[Certificate],
        time: u64,
        crls: &[CertificateRevocationList],
    ) -> ([u8; 32], u64) {
        // Every TBS encoding streams straight into the hasher
        // (`absorb_fingerprint` feeds the identical `len || tbs || len
        // || sig` framing) — no per-certificate buffer is materialized.
        let mut h = Sha256::new();
        h.update(b"silvasec-chain-cache-v1");
        h.update(&(chain.len() as u64).to_le_bytes());
        for cert in chain {
            cert.absorb_fingerprint(&mut h);
        }
        h.update(&(crls.len() as u64).to_le_bytes());
        for crl in crls {
            crl.absorb_fingerprint(&mut h);
        }
        // The root that will anchor this chain (if known): replacing a
        // root under the same id must invalidate cached verdicts.
        if let Some(root) = chain.last().and_then(|c| self.roots.get(&c.issuer_id)) {
            root.absorb_fingerprint(&mut h);
        }
        (h.finalize(), time / CHAIN_CACHE_TIME_BUCKET)
    }

    fn chain_cache_insert(&self, key: ([u8; 32], u64)) {
        let mut cache = self
            .verified_chains
            .lock()
            .expect("chain cache lock poisoned");
        if cache.len() >= CHAIN_CACHE_MAX_ENTRIES {
            // Deterministic eviction: drop everything outside the
            // current time bucket.
            let bucket = key.1;
            cache.retain(|entry| entry.1 == bucket);
        }
        cache.insert(key);
    }

    /// Number of entries currently in the verified-chain cache.
    #[must_use]
    pub fn chain_cache_len(&self) -> usize {
        self.verified_chains
            .lock()
            .expect("chain cache lock poisoned")
            .len()
    }

    /// The single source of truth for chain-validation check order.
    /// `mode` selects how signature checks are performed; every other
    /// check is identical across modes, which is what keeps the batched
    /// and cached paths' outcomes bit-identical to the sequential one.
    fn validate_chain_inner(
        &self,
        chain: &[Certificate],
        time: u64,
        crls: &[CertificateRevocationList],
        mode: &mut SigCheck<'_>,
    ) -> Result<(), PkiError> {
        if chain.is_empty() {
            return Err(PkiError::EmptyChain);
        }
        if chain.len() > self.max_chain_len {
            return Err(PkiError::ChainTooLong {
                max: self.max_chain_len,
                actual: chain.len(),
            });
        }

        // Resolve each certificate's issuer key: the next chain element,
        // or a trusted root for the last element.
        for (i, cert) in chain.iter().enumerate() {
            let issuer_cert = if i + 1 < chain.len() {
                let next = &chain[i + 1];
                if next.subject.id != cert.issuer_id {
                    return Err(PkiError::BrokenLink {
                        subject: cert.subject.id.clone(),
                    });
                }
                next
            } else {
                self.roots
                    .get(&cert.issuer_id)
                    .ok_or_else(|| PkiError::UntrustedRoot {
                        issuer: cert.issuer_id.clone(),
                    })?
            };

            // Intermediates and roots must be allowed to sign certificates.
            if !issuer_cert.key_usage.permits(KeyUsage::CERT_SIGNING) {
                return Err(PkiError::KeyUsageViolation {
                    subject: issuer_cert.subject.id.clone(),
                });
            }

            let issuer_key = issuer_cert.subject_key()?;
            match mode {
                SigCheck::Sequential => cert.verify_signature(&issuer_key)?,
                SigCheck::Skip => {}
                SigCheck::Collect(jobs) => {
                    // A malformed signature must fail here, in order;
                    // only the curve equation check is deferred.
                    let sig = Signature::from_bytes(&cert.signature).map_err(|_| {
                        PkiError::BadSignature {
                            subject: cert.subject.id.clone(),
                        }
                    })?;
                    jobs.push(SigJob {
                        message: cert.tbs_bytes(),
                        signature: sig,
                        key: issuer_key,
                    });
                }
            }

            if time < cert.validity.not_before {
                return Err(PkiError::NotYetValid {
                    subject: cert.subject.id.clone(),
                });
            }
            if time > cert.validity.not_after {
                return Err(PkiError::Expired {
                    subject: cert.subject.id.clone(),
                });
            }

            // Revocation: find CRLs from this certificate's issuer.
            for crl in crls.iter().filter(|c| c.issuer_id == cert.issuer_id) {
                let crl_key = issuer_cert.subject_key()?;
                if !issuer_cert.key_usage.permits(KeyUsage::CRL_SIGNING) {
                    return Err(PkiError::BadCrl);
                }
                match mode {
                    SigCheck::Sequential => crl.verify_signature(&crl_key)?,
                    SigCheck::Skip => {}
                    SigCheck::Collect(jobs) => {
                        let sig =
                            Signature::from_bytes(&crl.signature).map_err(|_| PkiError::BadCrl)?;
                        jobs.push(SigJob {
                            message: crl.tbs_bytes(),
                            signature: sig,
                            key: crl_key,
                        });
                    }
                }
                if let Some(max_age) = self.max_crl_age {
                    if time.saturating_sub(crl.issued_at) > max_age {
                        return Err(PkiError::BadCrl);
                    }
                }
                if crl.is_revoked(cert.serial, time) {
                    return Err(PkiError::Revoked {
                        subject: cert.subject.id.clone(),
                        serial: cert.serial,
                    });
                }
            }
        }

        // Validity of the root itself.
        let last = chain.last().expect("non-empty checked above");
        if let Some(root) = self.roots.get(&last.issuer_id) {
            if !root.validity.contains(time) {
                return Err(PkiError::Expired {
                    subject: root.subject.id.clone(),
                });
            }
        }
        Ok(())
    }

    /// Validates a chain and additionally requires the end entity to carry
    /// the given key usage.
    ///
    /// # Errors
    ///
    /// As [`TrustStore::validate_chain`], plus
    /// [`PkiError::KeyUsageViolation`] when the end entity lacks `usage`.
    pub fn validate_chain_for_usage(
        &self,
        chain: &[Certificate],
        time: u64,
        crls: &[CertificateRevocationList],
        usage: KeyUsage,
    ) -> Result<(), PkiError> {
        self.validate_chain(chain, time, crls)?;
        let end = &chain[0];
        if !end.key_usage.permits(usage) {
            return Err(PkiError::KeyUsageViolation {
                subject: end.subject.id.clone(),
            });
        }
        Ok(())
    }

    /// Number of trusted roots.
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::types::{ComponentRole, Subject, Validity};
    use silvasec_crypto::schnorr::SigningKey;

    struct Fixture {
        root: CertificateAuthority,
        site: CertificateAuthority,
        store: TrustStore,
        end_key: SigningKey,
    }

    fn fixture() -> Fixture {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 10_000));
        let site = root.issue_intermediate_mut("site", &[2u8; 32], Validity::new(0, 8_000));
        let store = TrustStore::with_roots([root.certificate().clone()]);
        let end_key = SigningKey::from_seed(&[3u8; 32]);
        Fixture {
            root,
            site,
            store,
            end_key,
        }
    }

    fn issue_end(f: &mut Fixture, validity: Validity) -> Certificate {
        f.site.issue_mut(
            &Subject::new("fw-01", ComponentRole::Forwarder),
            &f.end_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            validity,
        )
    }

    #[test]
    fn two_level_chain_validates() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f.store.validate_chain(&chain, 100, &[]).is_ok());
    }

    #[test]
    fn direct_root_issue_validates() {
        let mut f = fixture();
        let end = f.root.issue_mut(
            &Subject::new("bs-01", ComponentRole::BaseStation),
            &f.end_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 5_000),
        );
        assert!(f.store.validate_chain(&[end], 100, &[]).is_ok());
    }

    #[test]
    fn empty_chain_rejected() {
        let f = fixture();
        assert_eq!(
            f.store.validate_chain(&[], 0, &[]),
            Err(PkiError::EmptyChain)
        );
    }

    #[test]
    fn expired_and_not_yet_valid() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(100, 200));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 50, &[]),
            Err(PkiError::NotYetValid { .. })
        ));
        assert!(matches!(
            f.store.validate_chain(&chain, 201, &[]),
            Err(PkiError::Expired { .. })
        ));
        assert!(f.store.validate_chain(&chain, 150, &[]).is_ok());
    }

    #[test]
    fn unknown_root_rejected() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let empty_store = TrustStore::new();
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            empty_store.validate_chain(&chain, 100, &[]),
            Err(PkiError::UntrustedRoot { .. })
        ));
    }

    #[test]
    fn broken_link_rejected() {
        let mut f = fixture();
        let mut end = issue_end(&mut f, Validity::new(0, 5_000));
        end.issuer_id = "someone-else".into();
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 100, &[]),
            Err(PkiError::BrokenLink { .. })
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let mut f = fixture();
        let mut end = issue_end(&mut f, Validity::new(0, 5_000));
        end.serial += 1; // invalidates the signature
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 100, &[]),
            Err(PkiError::BadSignature { .. })
        ));
    }

    #[test]
    fn end_entity_cannot_act_as_ca() {
        let mut f = fixture();
        // Issue a cert chained under a *non-CA* certificate: build a fake
        // intermediate from the forwarder's own (AUTHENTICATION-only) cert.
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let rogue_key = SigningKey::from_seed(&[4u8; 32]);
        let mut rogue = Certificate {
            subject: Subject::new("rogue", ComponentRole::Sensor),
            issuer_id: end.subject.id.clone(),
            serial: 1,
            validity: Validity::new(0, 5_000),
            key_usage: KeyUsage::AUTHENTICATION,
            public_key: rogue_key.verifying_key().to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = f.end_key.sign(&rogue.tbs_bytes());
        rogue.signature = sig.to_bytes().to_vec();

        let chain = vec![rogue, end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 100, &[]),
            Err(PkiError::KeyUsageViolation { .. })
        ));
    }

    #[test]
    fn revoked_certificate_rejected() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        f.site.revoke(end.serial, 150);
        let crl = f.site.sign_crl(160);
        let chain = vec![end, f.site.certificate().clone()];
        // Before revocation takes effect the chain is fine.
        assert!(f
            .store
            .validate_chain(&chain, 100, std::slice::from_ref(&crl))
            .is_ok());
        // After, it is revoked.
        assert!(matches!(
            f.store.validate_chain(&chain, 200, &[crl]),
            Err(PkiError::Revoked { .. })
        ));
    }

    #[test]
    fn stale_crl_rejected_when_policy_set() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let crl = f.site.sign_crl(100);
        f.store.set_max_crl_age(50);
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f
            .store
            .validate_chain(&chain, 120, std::slice::from_ref(&crl))
            .is_ok());
        assert_eq!(
            f.store.validate_chain(&chain, 200, &[crl]),
            Err(PkiError::BadCrl)
        );
    }

    #[test]
    fn chain_length_limit() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let mut store = f.store.clone();
        store.set_max_chain_len(1);
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            store.validate_chain(&chain, 100, &[]),
            Err(PkiError::ChainTooLong { .. })
        ));
    }

    #[test]
    fn usage_check_on_end_entity() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f
            .store
            .validate_chain_for_usage(&chain, 100, &[], KeyUsage::AUTHENTICATION)
            .is_ok());
        assert!(matches!(
            f.store
                .validate_chain_for_usage(&chain, 100, &[], KeyUsage::FIRMWARE_SIGNING),
            Err(PkiError::KeyUsageViolation { .. })
        ));
    }

    #[test]
    fn chain_cache_populates_and_repeats() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert_eq!(f.store.chain_cache_len(), 0);
        assert!(f.store.validate_chain(&chain, 100, &[]).is_ok());
        assert_eq!(f.store.chain_cache_len(), 1);
        // Second validation hits the cache (no new entry) and agrees.
        assert!(f.store.validate_chain(&chain, 120, &[]).is_ok());
        assert_eq!(f.store.chain_cache_len(), 1);
        // A different time bucket is a different key — the cert has
        // expired by the next bucket, so this misses the cache, fails,
        // and must not add an entry.
        assert!(matches!(
            f.store
                .validate_chain(&chain, 100 + CHAIN_CACHE_TIME_BUCKET, &[]),
            Err(PkiError::Expired { .. })
        ));
        assert_eq!(f.store.chain_cache_len(), 1);
    }

    #[test]
    fn cache_hit_still_enforces_time_checks() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 200));
        f.site.revoke(end.serial, 150);
        let crl = f.site.sign_crl(100);
        let chain = vec![end, f.site.certificate().clone()];
        // Populate the cache with a successful validation…
        assert!(f
            .store
            .validate_chain(&chain, 100, std::slice::from_ref(&crl))
            .is_ok());
        assert_eq!(f.store.chain_cache_len(), 1);
        // …then re-validate the *same bytes in the same bucket* at a
        // time where revocation has taken effect: the cached signature
        // verdict must not mask the revocation check.
        assert!(matches!(
            f.store
                .validate_chain(&chain, 180, std::slice::from_ref(&crl)),
            Err(PkiError::Revoked { .. })
        ));
        // Likewise expiry on a cache hit: same bytes, same bucket,
        // later time.
        assert!(f.store.validate_chain(&chain, 100, &[]).is_ok());
        assert!(matches!(
            f.store.validate_chain(&chain, 250, &[]),
            Err(PkiError::Expired { .. })
        ));
    }

    #[test]
    fn crl_revoking_cached_chains_issuer_invalidates() {
        // Satellite regression: a chain is validated and cached, then a
        // *new* CRL from the root revokes the cached chain's issuing
        // intermediate. The CRL bytes are part of the cache key, so the
        // next validation must miss the cache and report the revocation.
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f.store.validate_chain(&chain, 100, &[]).is_ok());
        assert_eq!(f.store.chain_cache_len(), 1);

        let site_serial = f.site.certificate().serial;
        f.root.revoke(site_serial, 110);
        let root_crl = f.root.sign_crl(120);
        let err = f
            .store
            .validate_chain(&chain, 130, std::slice::from_ref(&root_crl));
        assert!(
            matches!(err, Err(PkiError::Revoked { ref subject, .. }) if subject == "site"),
            "{err:?}"
        );
    }

    #[test]
    fn replacing_a_root_invalidates_cached_verdicts() {
        // Same chain bytes, different trust anchor under the same id:
        // the cached "signatures verified" fact must not carry over.
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f.store.validate_chain(&chain, 100, &[]).is_ok());

        let imposter =
            CertificateAuthority::new_root("root", &[99u8; 32], Validity::new(0, 10_000));
        let mut store = f.store.clone();
        store
            .add_root(imposter.certificate().clone())
            .expect("self-signed root");
        assert!(matches!(
            store.validate_chain(&chain, 100, &[]),
            Err(PkiError::BadSignature { .. })
        ));
    }

    #[test]
    fn add_root_rejects_non_self_signed() {
        let mut f = fixture();
        let mut store = TrustStore::new();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        assert!(store.add_root(end).is_err());
        assert_eq!(store.root_count(), 0);
    }
}
