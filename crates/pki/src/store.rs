//! Trust stores and chain validation.

use crate::cert::Certificate;
use crate::crl::CertificateRevocationList;
use crate::error::PkiError;
use crate::types::KeyUsage;
use std::collections::HashMap;

/// Default maximum accepted chain length (end entity + intermediates).
pub const DEFAULT_MAX_CHAIN_LEN: usize = 4;

/// A set of trusted root certificates plus validation policy.
///
/// # Example
///
/// ```
/// use silvasec_pki::prelude::*;
/// use silvasec_crypto::schnorr::SigningKey;
///
/// let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1_000));
/// let key = SigningKey::from_seed(&[2u8; 32]);
/// let cert = root.issue_mut(
///     &Subject::new("drone-01", ComponentRole::Drone),
///     &key.verifying_key(),
///     KeyUsage::AUTHENTICATION,
///     Validity::new(0, 500),
/// );
/// let store = TrustStore::with_roots([root.certificate().clone()]);
/// assert!(store.validate_chain(&[cert.clone()], 100, &[]).is_ok());
/// assert!(store.validate_chain(&[cert], 600, &[]).is_err()); // expired
/// ```
#[derive(Debug, Clone)]
pub struct TrustStore {
    roots: HashMap<String, Certificate>,
    max_chain_len: usize,
    /// Maximum accepted CRL age; `None` disables staleness checks.
    max_crl_age: Option<u64>,
}

impl Default for TrustStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TrustStore {
    /// Creates an empty trust store with default policy.
    #[must_use]
    pub fn new() -> Self {
        TrustStore {
            roots: HashMap::new(),
            max_chain_len: DEFAULT_MAX_CHAIN_LEN,
            max_crl_age: None,
        }
    }

    /// Creates a store trusting the given self-signed roots.
    ///
    /// # Panics
    ///
    /// Panics if any certificate is not self-signed or fails its own
    /// signature check — a trust anchor must at minimum be internally
    /// consistent.
    #[must_use]
    pub fn with_roots(roots: impl IntoIterator<Item = Certificate>) -> Self {
        let mut store = Self::new();
        for root in roots {
            store
                .add_root(root)
                .expect("trust anchor must be a valid self-signed certificate");
        }
        store
    }

    /// Adds a trusted root.
    ///
    /// # Errors
    ///
    /// Returns [`PkiError::BadSignature`] when the certificate is not a
    /// correctly self-signed authority certificate.
    pub fn add_root(&mut self, root: Certificate) -> Result<(), PkiError> {
        if !root.is_self_signed() {
            return Err(PkiError::BadSignature {
                subject: root.subject.id,
            });
        }
        let key = root.subject_key()?;
        root.verify_signature(&key)?;
        self.roots.insert(root.subject.id.clone(), root);
        Ok(())
    }

    /// Sets the maximum chain length.
    pub fn set_max_chain_len(&mut self, len: usize) {
        self.max_chain_len = len;
    }

    /// Requires CRLs to be no older than `age` time units at validation.
    pub fn set_max_crl_age(&mut self, age: u64) {
        self.max_crl_age = Some(age);
    }

    /// Whether an issuer id is a trusted root.
    #[must_use]
    pub fn is_trusted_root(&self, id: &str) -> bool {
        self.roots.contains_key(id)
    }

    /// Validates a chain `[end_entity, intermediate…]` at `time`.
    ///
    /// The chain is ordered from the end entity towards (but excluding)
    /// the root; the last element's issuer must be a trusted root. Every
    /// CRL in `crls` that matches an issuer in the chain is checked (after
    /// verifying the CRL's own signature and freshness).
    ///
    /// # Errors
    ///
    /// Any [`PkiError`] variant describing the first failure found,
    /// checking (in order): shape, issuer links, signatures, validity
    /// windows, key usage of intermediates, and revocation.
    pub fn validate_chain(
        &self,
        chain: &[Certificate],
        time: u64,
        crls: &[CertificateRevocationList],
    ) -> Result<(), PkiError> {
        if chain.is_empty() {
            return Err(PkiError::EmptyChain);
        }
        if chain.len() > self.max_chain_len {
            return Err(PkiError::ChainTooLong {
                max: self.max_chain_len,
                actual: chain.len(),
            });
        }

        // Resolve each certificate's issuer key: the next chain element,
        // or a trusted root for the last element.
        for (i, cert) in chain.iter().enumerate() {
            let issuer_cert = if i + 1 < chain.len() {
                let next = &chain[i + 1];
                if next.subject.id != cert.issuer_id {
                    return Err(PkiError::BrokenLink {
                        subject: cert.subject.id.clone(),
                    });
                }
                next
            } else {
                self.roots
                    .get(&cert.issuer_id)
                    .ok_or_else(|| PkiError::UntrustedRoot {
                        issuer: cert.issuer_id.clone(),
                    })?
            };

            // Intermediates and roots must be allowed to sign certificates.
            if !issuer_cert.key_usage.permits(KeyUsage::CERT_SIGNING) {
                return Err(PkiError::KeyUsageViolation {
                    subject: issuer_cert.subject.id.clone(),
                });
            }

            let issuer_key = issuer_cert.subject_key()?;
            cert.verify_signature(&issuer_key)?;

            if time < cert.validity.not_before {
                return Err(PkiError::NotYetValid {
                    subject: cert.subject.id.clone(),
                });
            }
            if time > cert.validity.not_after {
                return Err(PkiError::Expired {
                    subject: cert.subject.id.clone(),
                });
            }

            // Revocation: find CRLs from this certificate's issuer.
            for crl in crls.iter().filter(|c| c.issuer_id == cert.issuer_id) {
                let crl_key = issuer_cert.subject_key()?;
                if !issuer_cert.key_usage.permits(KeyUsage::CRL_SIGNING) {
                    return Err(PkiError::BadCrl);
                }
                crl.verify_signature(&crl_key)?;
                if let Some(max_age) = self.max_crl_age {
                    if time.saturating_sub(crl.issued_at) > max_age {
                        return Err(PkiError::BadCrl);
                    }
                }
                if crl.is_revoked(cert.serial, time) {
                    return Err(PkiError::Revoked {
                        subject: cert.subject.id.clone(),
                        serial: cert.serial,
                    });
                }
            }
        }

        // Validity of the root itself.
        let last = chain.last().expect("non-empty checked above");
        if let Some(root) = self.roots.get(&last.issuer_id) {
            if !root.validity.contains(time) {
                return Err(PkiError::Expired {
                    subject: root.subject.id.clone(),
                });
            }
        }
        Ok(())
    }

    /// Validates a chain and additionally requires the end entity to carry
    /// the given key usage.
    ///
    /// # Errors
    ///
    /// As [`TrustStore::validate_chain`], plus
    /// [`PkiError::KeyUsageViolation`] when the end entity lacks `usage`.
    pub fn validate_chain_for_usage(
        &self,
        chain: &[Certificate],
        time: u64,
        crls: &[CertificateRevocationList],
        usage: KeyUsage,
    ) -> Result<(), PkiError> {
        self.validate_chain(chain, time, crls)?;
        let end = &chain[0];
        if !end.key_usage.permits(usage) {
            return Err(PkiError::KeyUsageViolation {
                subject: end.subject.id.clone(),
            });
        }
        Ok(())
    }

    /// Number of trusted roots.
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::types::{ComponentRole, Subject, Validity};
    use silvasec_crypto::schnorr::SigningKey;

    struct Fixture {
        root: CertificateAuthority,
        site: CertificateAuthority,
        store: TrustStore,
        end_key: SigningKey,
    }

    fn fixture() -> Fixture {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 10_000));
        let site = root.issue_intermediate_mut("site", &[2u8; 32], Validity::new(0, 8_000));
        let store = TrustStore::with_roots([root.certificate().clone()]);
        let end_key = SigningKey::from_seed(&[3u8; 32]);
        Fixture {
            root,
            site,
            store,
            end_key,
        }
    }

    fn issue_end(f: &mut Fixture, validity: Validity) -> Certificate {
        f.site.issue_mut(
            &Subject::new("fw-01", ComponentRole::Forwarder),
            &f.end_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            validity,
        )
    }

    #[test]
    fn two_level_chain_validates() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f.store.validate_chain(&chain, 100, &[]).is_ok());
    }

    #[test]
    fn direct_root_issue_validates() {
        let mut f = fixture();
        let end = f.root.issue_mut(
            &Subject::new("bs-01", ComponentRole::BaseStation),
            &f.end_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 5_000),
        );
        assert!(f.store.validate_chain(&[end], 100, &[]).is_ok());
    }

    #[test]
    fn empty_chain_rejected() {
        let f = fixture();
        assert_eq!(
            f.store.validate_chain(&[], 0, &[]),
            Err(PkiError::EmptyChain)
        );
    }

    #[test]
    fn expired_and_not_yet_valid() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(100, 200));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 50, &[]),
            Err(PkiError::NotYetValid { .. })
        ));
        assert!(matches!(
            f.store.validate_chain(&chain, 201, &[]),
            Err(PkiError::Expired { .. })
        ));
        assert!(f.store.validate_chain(&chain, 150, &[]).is_ok());
    }

    #[test]
    fn unknown_root_rejected() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let empty_store = TrustStore::new();
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            empty_store.validate_chain(&chain, 100, &[]),
            Err(PkiError::UntrustedRoot { .. })
        ));
    }

    #[test]
    fn broken_link_rejected() {
        let mut f = fixture();
        let mut end = issue_end(&mut f, Validity::new(0, 5_000));
        end.issuer_id = "someone-else".into();
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 100, &[]),
            Err(PkiError::BrokenLink { .. })
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let mut f = fixture();
        let mut end = issue_end(&mut f, Validity::new(0, 5_000));
        end.serial += 1; // invalidates the signature
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 100, &[]),
            Err(PkiError::BadSignature { .. })
        ));
    }

    #[test]
    fn end_entity_cannot_act_as_ca() {
        let mut f = fixture();
        // Issue a cert chained under a *non-CA* certificate: build a fake
        // intermediate from the forwarder's own (AUTHENTICATION-only) cert.
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let rogue_key = SigningKey::from_seed(&[4u8; 32]);
        let mut rogue = Certificate {
            subject: Subject::new("rogue", ComponentRole::Sensor),
            issuer_id: end.subject.id.clone(),
            serial: 1,
            validity: Validity::new(0, 5_000),
            key_usage: KeyUsage::AUTHENTICATION,
            public_key: rogue_key.verifying_key().to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = f.end_key.sign(&rogue.tbs_bytes());
        rogue.signature = sig.to_bytes().to_vec();

        let chain = vec![rogue, end, f.site.certificate().clone()];
        assert!(matches!(
            f.store.validate_chain(&chain, 100, &[]),
            Err(PkiError::KeyUsageViolation { .. })
        ));
    }

    #[test]
    fn revoked_certificate_rejected() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        f.site.revoke(end.serial, 150);
        let crl = f.site.sign_crl(160);
        let chain = vec![end, f.site.certificate().clone()];
        // Before revocation takes effect the chain is fine.
        assert!(f
            .store
            .validate_chain(&chain, 100, std::slice::from_ref(&crl))
            .is_ok());
        // After, it is revoked.
        assert!(matches!(
            f.store.validate_chain(&chain, 200, &[crl]),
            Err(PkiError::Revoked { .. })
        ));
    }

    #[test]
    fn stale_crl_rejected_when_policy_set() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let crl = f.site.sign_crl(100);
        f.store.set_max_crl_age(50);
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f
            .store
            .validate_chain(&chain, 120, std::slice::from_ref(&crl))
            .is_ok());
        assert_eq!(
            f.store.validate_chain(&chain, 200, &[crl]),
            Err(PkiError::BadCrl)
        );
    }

    #[test]
    fn chain_length_limit() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let mut store = f.store.clone();
        store.set_max_chain_len(1);
        let chain = vec![end, f.site.certificate().clone()];
        assert!(matches!(
            store.validate_chain(&chain, 100, &[]),
            Err(PkiError::ChainTooLong { .. })
        ));
    }

    #[test]
    fn usage_check_on_end_entity() {
        let mut f = fixture();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        let chain = vec![end, f.site.certificate().clone()];
        assert!(f
            .store
            .validate_chain_for_usage(&chain, 100, &[], KeyUsage::AUTHENTICATION)
            .is_ok());
        assert!(matches!(
            f.store
                .validate_chain_for_usage(&chain, 100, &[], KeyUsage::FIRMWARE_SIGNING),
            Err(PkiError::KeyUsageViolation { .. })
        ));
    }

    #[test]
    fn add_root_rejects_non_self_signed() {
        let mut f = fixture();
        let mut store = TrustStore::new();
        let end = issue_end(&mut f, Validity::new(0, 5_000));
        assert!(store.add_root(end).is_err());
        assert_eq!(store.root_count(), 0);
    }
}
