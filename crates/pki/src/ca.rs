//! Certificate authorities: roots, intermediates and issuance.

use crate::cert::Certificate;
use crate::crl::CertificateRevocationList;
use crate::types::{ComponentRole, KeyUsage, Subject, Validity};
use silvasec_crypto::schnorr::{SigningKey, VerifyingKey};

/// A certificate authority holding a signing key and its own certificate.
///
/// Roots are self-signed; intermediates carry a certificate issued by a
/// parent authority.
///
/// # Example
///
/// ```
/// use silvasec_pki::prelude::*;
///
/// let root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 10_000));
/// let intermediate = root.issue_intermediate("site-ca", &[2u8; 32], Validity::new(0, 5_000));
/// assert_eq!(intermediate.certificate().issuer_id, "root");
/// ```
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    key: SigningKey,
    certificate: Certificate,
    next_serial: u64,
    revoked: Vec<(u64, u64)>, // (serial, revocation time)
    crl_sequence: u64,
}

impl CertificateAuthority {
    /// Creates a self-signed root authority.
    #[must_use]
    pub fn new_root(id: &str, seed: &[u8; 32], validity: Validity) -> Self {
        let key = SigningKey::from_seed(seed);
        let mut certificate = Certificate {
            subject: Subject::new(id, ComponentRole::Authority),
            issuer_id: id.to_owned(),
            serial: 0,
            validity,
            key_usage: KeyUsage::CERT_SIGNING | KeyUsage::CRL_SIGNING,
            public_key: key.verifying_key().to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = key.sign(&certificate.tbs_bytes());
        certificate.signature = sig.to_bytes().to_vec();
        CertificateAuthority {
            key,
            certificate,
            next_serial: 1,
            revoked: Vec::new(),
            crl_sequence: 0,
        }
    }

    /// Issues an intermediate authority under this one.
    #[must_use]
    pub fn issue_intermediate(
        &self,
        id: &str,
        seed: &[u8; 32],
        validity: Validity,
    ) -> CertificateAuthority {
        // A fresh key for the intermediate; `self` keeps its own counter,
        // so callers should use a `&mut` method when serial uniqueness
        // matters — see `issue_intermediate_mut`.
        let key = SigningKey::from_seed(seed);
        let mut certificate = Certificate {
            subject: Subject::new(id, ComponentRole::Authority),
            issuer_id: self.certificate.subject.id.clone(),
            serial: u64::MAX, // reserved serial band for intermediates issued immutably
            validity,
            key_usage: KeyUsage::CERT_SIGNING | KeyUsage::CRL_SIGNING,
            public_key: key.verifying_key().to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = self.key.sign(&certificate.tbs_bytes());
        certificate.signature = sig.to_bytes().to_vec();
        CertificateAuthority {
            key,
            certificate,
            next_serial: 1,
            revoked: Vec::new(),
            crl_sequence: 0,
        }
    }

    /// Issues an intermediate authority, consuming a serial from this CA.
    pub fn issue_intermediate_mut(
        &mut self,
        id: &str,
        seed: &[u8; 32],
        validity: Validity,
    ) -> CertificateAuthority {
        let key = SigningKey::from_seed(seed);
        let mut certificate = Certificate {
            subject: Subject::new(id, ComponentRole::Authority),
            issuer_id: self.certificate.subject.id.clone(),
            serial: self.take_serial(),
            validity,
            key_usage: KeyUsage::CERT_SIGNING | KeyUsage::CRL_SIGNING,
            public_key: key.verifying_key().to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = self.key.sign(&certificate.tbs_bytes());
        certificate.signature = sig.to_bytes().to_vec();
        CertificateAuthority {
            key,
            certificate,
            next_serial: 1,
            revoked: Vec::new(),
            crl_sequence: 0,
        }
    }

    /// Issues an end-entity certificate.
    ///
    /// NOTE: this non-mut variant always uses serial `0` plus a hash-free
    /// scheme is unsuitable when the same CA issues many certificates —
    /// prefer [`CertificateAuthority::issue_mut`] in scenario code. It is
    /// kept for doc examples and single-issuance setups.
    #[must_use]
    pub fn issue(
        &self,
        subject: &Subject,
        key: &VerifyingKey,
        usage: KeyUsage,
        validity: Validity,
    ) -> Certificate {
        self.sign_end_entity(subject, key, usage, validity, 0)
    }

    /// Issues an end-entity certificate with a unique serial number.
    pub fn issue_mut(
        &mut self,
        subject: &Subject,
        key: &VerifyingKey,
        usage: KeyUsage,
        validity: Validity,
    ) -> Certificate {
        let serial = self.take_serial();
        self.sign_end_entity(subject, key, usage, validity, serial)
    }

    fn sign_end_entity(
        &self,
        subject: &Subject,
        key: &VerifyingKey,
        usage: KeyUsage,
        validity: Validity,
        serial: u64,
    ) -> Certificate {
        let mut certificate = Certificate {
            subject: subject.clone(),
            issuer_id: self.certificate.subject.id.clone(),
            serial,
            validity,
            key_usage: usage,
            public_key: key.to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = self.key.sign(&certificate.tbs_bytes());
        certificate.signature = sig.to_bytes().to_vec();
        certificate
    }

    fn take_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }

    /// Marks `serial` revoked as of `time`; reflected in the next CRL.
    pub fn revoke(&mut self, serial: u64, time: u64) {
        if !self.revoked.iter().any(|(s, _)| *s == serial) {
            self.revoked.push((serial, time));
        }
    }

    /// Produces a signed CRL with all revocations so far.
    pub fn sign_crl(&mut self, issued_at: u64) -> CertificateRevocationList {
        self.crl_sequence += 1;
        CertificateRevocationList::new_signed(
            &self.key,
            &self.certificate.subject.id,
            self.crl_sequence,
            issued_at,
            &self.revoked,
        )
    }

    /// This authority's own certificate.
    #[must_use]
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// This authority's verifying key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Number of certificates this authority has revoked.
    #[must_use]
    pub fn revoked_count(&self) -> usize {
        self.revoked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_crypto::schnorr::SigningKey;

    #[test]
    fn root_is_self_signed_and_valid() {
        let root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100));
        assert!(root.certificate().is_self_signed());
        assert!(root
            .certificate()
            .verify_signature(&root.verifying_key())
            .is_ok());
    }

    #[test]
    fn issued_cert_verifies_against_issuer() {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100));
        let subject_key = SigningKey::from_seed(&[9u8; 32]);
        let cert = root.issue_mut(
            &Subject::new("drone-01", ComponentRole::Drone),
            &subject_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 50),
        );
        assert!(cert.verify_signature(&root.verifying_key()).is_ok());
        assert_eq!(cert.issuer_id, "root");
        assert_eq!(cert.serial, 1);
    }

    #[test]
    fn serials_are_unique_and_increasing() {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100));
        let key = SigningKey::from_seed(&[9u8; 32]);
        let mut serials = Vec::new();
        for i in 0..5 {
            let cert = root.issue_mut(
                &Subject::new(format!("s-{i}"), ComponentRole::Sensor),
                &key.verifying_key(),
                KeyUsage::TELEMETRY_SIGNING,
                Validity::new(0, 50),
            );
            serials.push(cert.serial);
        }
        assert_eq!(serials, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn intermediate_chain_links() {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100));
        let site = root.issue_intermediate_mut("site", &[2u8; 32], Validity::new(0, 80));
        assert!(site
            .certificate()
            .verify_signature(&root.verifying_key())
            .is_ok());
        // Intermediate signs end entities with its own key.
        let mut site = site;
        let key = SigningKey::from_seed(&[3u8; 32]);
        let cert = site.issue_mut(
            &Subject::new("fw-01", ComponentRole::Forwarder),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 40),
        );
        assert!(cert.verify_signature(&site.verifying_key()).is_ok());
        assert!(cert.verify_signature(&root.verifying_key()).is_err());
    }

    #[test]
    fn revocation_dedupes() {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100));
        root.revoke(5, 10);
        root.revoke(5, 11);
        root.revoke(6, 12);
        assert_eq!(root.revoked_count(), 2);
    }

    #[test]
    fn crl_sequence_increases() {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100));
        let c1 = root.sign_crl(10);
        let c2 = root.sign_crl(20);
        assert!(c2.sequence > c1.sequence);
    }
}
