//! Certificates with a canonical signed encoding.

use crate::error::PkiError;
use crate::types::{KeyUsage, Subject, Validity};
use serde::{Deserialize, Serialize};
use silvasec_crypto::schnorr::{Signature, VerifyingKey, PUBLIC_KEY_LEN, SIGNATURE_LEN};

/// A certificate binding a subject to a public key.
///
/// The format is deliberately simple (this is a simulation toolkit, not an
/// X.509 implementation): a canonical length-prefixed byte encoding of the
/// to-be-signed fields is hashed and Schnorr-signed by the issuer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// The certified subject.
    pub subject: Subject,
    /// Subject id of the issuing authority.
    pub issuer_id: String,
    /// Serial number, unique per issuer.
    pub serial: u64,
    /// Validity window.
    pub validity: Validity,
    /// What the certified key may be used for.
    pub key_usage: KeyUsage,
    /// The certified Schnorr public key (64 bytes).
    pub public_key: Vec<u8>,
    /// Issuer's signature over [`Certificate::tbs_bytes`] (96 bytes).
    pub signature: Vec<u8>,
}

impl Certificate {
    /// The canonical to-be-signed encoding.
    ///
    /// Every variable-length field is prefixed with its `u32` length so the
    /// encoding is injective (no two distinct certificates share an
    /// encoding).
    #[must_use]
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.tbs_len());
        self.tbs_write(&mut |b| out.extend_from_slice(b));
        out
    }

    /// Exact byte length of [`Certificate::tbs_bytes`], without building it.
    #[must_use]
    pub fn tbs_len(&self) -> usize {
        16 + (4 + self.subject.id.len())
            + (4 + self.subject.role.as_str().len())
            + (4 + self.issuer_id.len())
            + 8
            + 8
            + 8
            + 1
            + (4 + self.public_key.len())
    }

    /// Streams the TBS encoding into `sink`, chunk by chunk — the single
    /// source of truth for the encoding, shared by [`Certificate::tbs_bytes`]
    /// and the streaming fingerprint path.
    fn tbs_write(&self, sink: &mut dyn FnMut(&[u8])) {
        sink(b"silvasec-cert-v1");
        write_str(sink, &self.subject.id);
        write_str(sink, self.subject.role.as_str());
        write_str(sink, &self.issuer_id);
        sink(&self.serial.to_le_bytes());
        sink(&self.validity.not_before.to_le_bytes());
        sink(&self.validity.not_after.to_le_bytes());
        sink(&[self.key_usage.bits()]);
        write_bytes(sink, &self.public_key);
    }

    /// Absorbs `len(tbs) || tbs || len(sig) || sig` (u64 LE lengths) into
    /// a streaming hasher without materializing the TBS encoding —
    /// byte-for-byte what a caller hashing `tbs_bytes()` with the same
    /// framing would absorb.
    pub fn absorb_fingerprint(&self, h: &mut silvasec_crypto::sha256::Sha256) {
        h.update(&(self.tbs_len() as u64).to_le_bytes());
        self.tbs_write(&mut |b| h.update(b));
        h.update(&(self.signature.len() as u64).to_le_bytes());
        h.update(&self.signature);
    }

    /// Parses the embedded subject public key.
    ///
    /// # Errors
    ///
    /// Returns [`PkiError::MalformedKey`] if the key bytes are not a valid
    /// curve point of the expected length.
    pub fn subject_key(&self) -> Result<VerifyingKey, PkiError> {
        let bytes: &[u8; PUBLIC_KEY_LEN] =
            self.public_key
                .as_slice()
                .try_into()
                .map_err(|_| PkiError::MalformedKey {
                    subject: self.subject.id.clone(),
                })?;
        VerifyingKey::from_bytes(bytes).map_err(|_| PkiError::MalformedKey {
            subject: self.subject.id.clone(),
        })
    }

    /// Verifies this certificate's signature against `issuer_key`.
    ///
    /// # Errors
    ///
    /// Returns [`PkiError::BadSignature`] if the signature is malformed or
    /// does not verify.
    pub fn verify_signature(&self, issuer_key: &VerifyingKey) -> Result<(), PkiError> {
        let bad = || PkiError::BadSignature {
            subject: self.subject.id.clone(),
        };
        if self.signature.len() != SIGNATURE_LEN {
            return Err(bad());
        }
        let sig = Signature::from_bytes(&self.signature).map_err(|_| bad())?;
        issuer_key
            .verify(&self.tbs_bytes(), &sig)
            .map_err(|_| bad())
    }

    /// Whether this certificate is self-signed (issuer id == subject id).
    #[must_use]
    pub fn is_self_signed(&self) -> bool {
        self.issuer_id == self.subject.id
    }
}

fn write_str(sink: &mut dyn FnMut(&[u8]), s: &str) {
    write_bytes(sink, s.as_bytes());
}

fn write_bytes(sink: &mut dyn FnMut(&[u8]), b: &[u8]) {
    sink(&(b.len() as u32).to_le_bytes());
    sink(b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ComponentRole;
    use silvasec_crypto::schnorr::SigningKey;

    fn sample_cert() -> (Certificate, SigningKey) {
        let issuer = SigningKey::from_seed(&[1u8; 32]);
        let subject_key = SigningKey::from_seed(&[2u8; 32]);
        let mut cert = Certificate {
            subject: Subject::new("forwarder-01", ComponentRole::Forwarder),
            issuer_id: "root".into(),
            serial: 7,
            validity: Validity::new(0, 1000),
            key_usage: KeyUsage::AUTHENTICATION,
            public_key: subject_key.verifying_key().to_bytes().to_vec(),
            signature: Vec::new(),
        };
        let sig = issuer.sign(&cert.tbs_bytes());
        cert.signature = sig.to_bytes().to_vec();
        (cert, issuer)
    }

    #[test]
    fn signature_verifies() {
        let (cert, issuer) = sample_cert();
        assert!(cert.verify_signature(&issuer.verifying_key()).is_ok());
    }

    #[test]
    fn tampered_fields_break_signature() {
        let (cert, issuer) = sample_cert();
        let vk = issuer.verifying_key();

        let mut c = cert.clone();
        c.serial = 8;
        assert!(c.verify_signature(&vk).is_err());

        let mut c = cert.clone();
        c.subject.id = "forwarder-02".into();
        assert!(c.verify_signature(&vk).is_err());

        let mut c = cert.clone();
        c.validity = Validity::new(0, 2000);
        assert!(c.verify_signature(&vk).is_err());

        let mut c = cert.clone();
        c.key_usage = KeyUsage::ALL;
        assert!(c.verify_signature(&vk).is_err());
    }

    #[test]
    fn tbs_encoding_is_injective_across_field_boundaries() {
        // "ab" + "c" vs "a" + "bc" must encode differently.
        let (mut a, _) = sample_cert();
        let (mut b, _) = sample_cert();
        a.subject.id = "ab".into();
        a.issuer_id = "c".into();
        b.subject.id = "a".into();
        b.issuer_id = "bc".into();
        assert_ne!(a.tbs_bytes(), b.tbs_bytes());
    }

    #[test]
    fn subject_key_parses() {
        let (cert, _) = sample_cert();
        assert!(cert.subject_key().is_ok());
    }

    #[test]
    fn malformed_key_detected() {
        let (mut cert, _) = sample_cert();
        cert.public_key = vec![0u8; 10];
        assert!(matches!(
            cert.subject_key(),
            Err(PkiError::MalformedKey { .. })
        ));
        cert.public_key = vec![0xaau8; 64];
        assert!(matches!(
            cert.subject_key(),
            Err(PkiError::MalformedKey { .. })
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let (cert, _) = sample_cert();
        let json = serde_json::to_string(&cert).unwrap();
        let back: Certificate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cert);
    }

    #[test]
    fn self_signed_detection() {
        let (mut cert, _) = sample_cert();
        assert!(!cert.is_self_signed());
        cert.issuer_id = cert.subject.id.clone();
        assert!(cert.is_self_signed());
    }
}
