//! Roles, key-usage flags and validity windows.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a certified component plays on the worksite.
///
/// Mirrors the constituents of the paper's Figure 1 worksite: autonomous
/// forwarders, manned harvesters, observation drones, the base station
/// coordinating them, individual smart sensors, and the PKI's own
/// authorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ComponentRole {
    /// A certificate authority (root or intermediate).
    Authority,
    /// An autonomous forwarder carrying logs.
    Forwarder,
    /// A (manned) harvester.
    Harvester,
    /// An observation drone.
    Drone,
    /// The worksite base station / coordination node.
    BaseStation,
    /// A standalone smart sensor.
    Sensor,
    /// A human operator's control terminal.
    OperatorTerminal,
    /// A firmware-signing identity (used by secure boot).
    FirmwareSigner,
}

impl ComponentRole {
    /// The canonical string form used in TBS encodings and display.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            ComponentRole::Authority => "authority",
            ComponentRole::Forwarder => "forwarder",
            ComponentRole::Harvester => "harvester",
            ComponentRole::Drone => "drone",
            ComponentRole::BaseStation => "base-station",
            ComponentRole::Sensor => "sensor",
            ComponentRole::OperatorTerminal => "operator-terminal",
            ComponentRole::FirmwareSigner => "firmware-signer",
        }
    }
}

impl fmt::Display for ComponentRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A certificate subject: a stable component id plus its role.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subject {
    /// Stable unique identifier, e.g. `"forwarder-01"`.
    pub id: String,
    /// The component's role.
    pub role: ComponentRole,
}

impl Subject {
    /// Creates a subject.
    pub fn new(id: impl Into<String>, role: ComponentRole) -> Self {
        Subject {
            id: id.into(),
            role,
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.role)
    }
}

/// Key-usage flags carried in a certificate.
///
/// A compact bit set; combine flags with `|`.
///
/// # Example
///
/// ```
/// use silvasec_pki::types::KeyUsage;
///
/// let usage = KeyUsage::AUTHENTICATION | KeyUsage::FIRMWARE_SIGNING;
/// assert!(usage.permits(KeyUsage::AUTHENTICATION));
/// assert!(!usage.permits(KeyUsage::CERT_SIGNING));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyUsage(u8);

impl KeyUsage {
    /// May sign subordinate certificates (CA certificates).
    pub const CERT_SIGNING: KeyUsage = KeyUsage(0b0000_0001);
    /// May sign certificate revocation lists.
    pub const CRL_SIGNING: KeyUsage = KeyUsage(0b0000_0010);
    /// May authenticate itself in channel handshakes.
    pub const AUTHENTICATION: KeyUsage = KeyUsage(0b0000_0100);
    /// May sign firmware images.
    pub const FIRMWARE_SIGNING: KeyUsage = KeyUsage(0b0000_1000);
    /// May sign telemetry/measurement reports.
    pub const TELEMETRY_SIGNING: KeyUsage = KeyUsage(0b0001_0000);
    /// No usages.
    pub const NONE: KeyUsage = KeyUsage(0);
    /// All usages (testing convenience).
    pub const ALL: KeyUsage = KeyUsage(0b0001_1111);

    /// Whether every flag in `usage` is present in `self`.
    #[must_use]
    pub fn permits(self, usage: KeyUsage) -> bool {
        self.0 & usage.0 == usage.0
    }

    /// The raw bit pattern.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs flags from a raw bit pattern (unknown bits are kept).
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        KeyUsage(bits)
    }
}

impl std::ops::BitOr for KeyUsage {
    type Output = KeyUsage;
    fn bitor(self, rhs: KeyUsage) -> KeyUsage {
        KeyUsage(self.0 | rhs.0)
    }
}

/// A validity window in worksite time (seconds since scenario start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Validity {
    /// First instant (inclusive) at which the certificate is valid.
    pub not_before: u64,
    /// Last instant (inclusive) at which the certificate is valid.
    pub not_after: u64,
}

impl Validity {
    /// Creates a validity window.
    ///
    /// # Panics
    ///
    /// Panics if `not_after < not_before`.
    #[must_use]
    pub fn new(not_before: u64, not_after: u64) -> Self {
        assert!(
            not_after >= not_before,
            "validity window must not be inverted"
        );
        Validity {
            not_before,
            not_after,
        }
    }

    /// Whether `time` falls inside the window.
    #[must_use]
    pub fn contains(&self, time: u64) -> bool {
        (self.not_before..=self.not_after).contains(&time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_usage_combination() {
        let u = KeyUsage::CERT_SIGNING | KeyUsage::CRL_SIGNING;
        assert!(u.permits(KeyUsage::CERT_SIGNING));
        assert!(u.permits(KeyUsage::CRL_SIGNING));
        assert!(u.permits(KeyUsage::NONE));
        assert!(!u.permits(KeyUsage::AUTHENTICATION));
        assert!(!u.permits(KeyUsage::CERT_SIGNING | KeyUsage::AUTHENTICATION));
        assert!(KeyUsage::ALL.permits(u));
    }

    #[test]
    fn key_usage_bits_roundtrip() {
        let u = KeyUsage::AUTHENTICATION | KeyUsage::TELEMETRY_SIGNING;
        assert_eq!(KeyUsage::from_bits(u.bits()), u);
    }

    #[test]
    fn validity_window() {
        let v = Validity::new(10, 20);
        assert!(!v.contains(9));
        assert!(v.contains(10));
        assert!(v.contains(20));
        assert!(!v.contains(21));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_validity_panics() {
        let _ = Validity::new(20, 10);
    }

    #[test]
    fn subject_display() {
        let s = Subject::new("drone-02", ComponentRole::Drone);
        assert_eq!(s.to_string(), "drone-02 (drone)");
    }

    #[test]
    fn role_serde_roundtrip() {
        let json = serde_json::to_string(&ComponentRole::Forwarder).unwrap();
        let back: ComponentRole = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ComponentRole::Forwarder);
    }
}
