//! Error type for PKI operations.

use std::error::Error;
use std::fmt;

/// An error produced while validating certificates or chains.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PkiError {
    /// The chain contained no certificates.
    EmptyChain,
    /// The chain was longer than the validator's configured maximum.
    ChainTooLong {
        /// Maximum accepted chain length.
        max: usize,
        /// Actual chain length.
        actual: usize,
    },
    /// A certificate signature did not verify against its issuer's key.
    BadSignature {
        /// Subject id of the offending certificate.
        subject: String,
    },
    /// The chain does not terminate at a trusted root.
    UntrustedRoot {
        /// Issuer id the chain ends at.
        issuer: String,
    },
    /// A certificate is not yet valid at the evaluation time.
    NotYetValid {
        /// Subject id of the offending certificate.
        subject: String,
    },
    /// A certificate has expired at the evaluation time.
    Expired {
        /// Subject id of the offending certificate.
        subject: String,
    },
    /// A certificate in the chain has been revoked.
    Revoked {
        /// Subject id of the revoked certificate.
        subject: String,
        /// Serial number of the revoked certificate.
        serial: u64,
    },
    /// A certificate is used for a purpose its key-usage flags forbid.
    KeyUsageViolation {
        /// Subject id of the offending certificate.
        subject: String,
    },
    /// Adjacent chain certificates do not form an issuer/subject link.
    BrokenLink {
        /// Subject whose issuer field does not match the next certificate.
        subject: String,
    },
    /// A public key embedded in a certificate failed to parse.
    MalformedKey {
        /// Subject id of the offending certificate.
        subject: String,
    },
    /// A CRL signature did not verify or the CRL issuer is not trusted.
    BadCrl,
}

impl fmt::Display for PkiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkiError::EmptyChain => write!(f, "certificate chain is empty"),
            PkiError::ChainTooLong { max, actual } => {
                write!(f, "certificate chain too long: {actual} > {max}")
            }
            PkiError::BadSignature { subject } => {
                write!(f, "bad signature on certificate for {subject}")
            }
            PkiError::UntrustedRoot { issuer } => {
                write!(f, "chain terminates at untrusted issuer {issuer}")
            }
            PkiError::NotYetValid { subject } => {
                write!(f, "certificate for {subject} not yet valid")
            }
            PkiError::Expired { subject } => write!(f, "certificate for {subject} expired"),
            PkiError::Revoked { subject, serial } => {
                write!(f, "certificate for {subject} (serial {serial}) revoked")
            }
            PkiError::KeyUsageViolation { subject } => {
                write!(f, "key usage violation for {subject}")
            }
            PkiError::BrokenLink { subject } => {
                write!(f, "issuer link broken at certificate for {subject}")
            }
            PkiError::MalformedKey { subject } => {
                write!(f, "malformed public key in certificate for {subject}")
            }
            PkiError::BadCrl => write!(f, "revocation list failed validation"),
        }
    }
}

impl Error for PkiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PkiError::EmptyChain.to_string().contains("empty"));
        assert!(PkiError::Revoked {
            subject: "d-1".into(),
            serial: 9
        }
        .to_string()
        .contains("serial 9"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<PkiError>();
    }
}
