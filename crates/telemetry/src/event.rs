//! Typed, `Copy` telemetry events and the inline [`Label`] string they use.
//!
//! Every event is plain old data: no heap allocation happens when an
//! event is constructed or recorded, which keeps the recorder off the
//! allocator on the simulator's hot paths.

use serde::{Deserialize, Error, Serialize, Value};
use silvasec_sim::SimTime;
use std::fmt;

/// Maximum number of bytes an inline [`Label`] can hold.
pub const LABEL_CAPACITY: usize = 23;

/// A short, inline, copyable string used for names inside events.
///
/// Labels hold up to [`LABEL_CAPACITY`] bytes inline (no heap); longer
/// inputs are truncated at a UTF-8 character boundary. This keeps the
/// whole [`Event`] enum `Copy` so recording an event never allocates.
///
/// ```
/// use silvasec_telemetry::Label;
/// let l = Label::new("gnss-spoofing");
/// assert_eq!(l.as_str(), "gnss-spoofing");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label {
    len: u8,
    bytes: [u8; LABEL_CAPACITY],
}

impl Label {
    /// Creates a label from a string, truncating to [`LABEL_CAPACITY`]
    /// bytes at a character boundary.
    #[must_use]
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(LABEL_CAPACITY);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; LABEL_CAPACITY];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        Label {
            len: end as u8,
            bytes,
        }
    }

    /// `const` form of [`Label::new`] for hoisting fixed labels out of
    /// hot loops (e.g. the per-tick sensor labels in the worksite).
    ///
    /// Identical truncation semantics: cut to [`LABEL_CAPACITY`] bytes
    /// at a UTF-8 character boundary (a continuation byte has the bit
    /// pattern `10xxxxxx`, so backing off past them lands on a
    /// boundary).
    #[must_use]
    pub const fn from_static(s: &str) -> Self {
        let src = s.as_bytes();
        let mut end = if src.len() < LABEL_CAPACITY {
            src.len()
        } else {
            LABEL_CAPACITY
        };
        while end > 0 && end < src.len() && (src[end] & 0xC0) == 0x80 {
            end -= 1;
        }
        let mut bytes = [0u8; LABEL_CAPACITY];
        let mut i = 0;
        while i < end {
            bytes[i] = src[i];
            i += 1;
        }
        Label {
            len: end as u8,
            bytes,
        }
    }

    /// Returns the label as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        // The constructor only ever stores a prefix of a valid `&str`
        // cut at a character boundary.
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }

    /// Returns `true` when the label is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl Serialize for Label {
    fn serialize(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Label {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(Label::new(s)),
            other => Err(Error::custom(format!(
                "expected string label, got {}",
                other.kind()
            ))),
        }
    }
}

/// A structured telemetry event.
///
/// All variants are `Copy`; strings are inline [`Label`]s. Events carry
/// no timestamp of their own — the recorder stamps each one with the
/// current [`SimTime`] and a monotonic sequence number when it is
/// recorded (see [`Record`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Event {
    /// A frame was put on the radio medium.
    FrameTx {
        /// True transmitting node (ground truth, not the claimed source).
        src: u32,
        /// Destination node; `None` = broadcast.
        dst: Option<u32>,
        /// Frame kind ("data", "deauth", ...).
        kind: Label,
        /// Wire length in bytes.
        bytes: u32,
        /// Sender-stamped sequence number.
        seq: u64,
    },
    /// A frame was delivered to a receiver.
    FrameRx {
        /// True transmitting node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Received signal strength in dBm.
        rssi_dbm: f64,
        /// Signal-to-interference-plus-noise ratio in dB.
        sinr_db: f64,
    },
    /// A frame addressed to a receiver was lost on the air.
    FrameLost {
        /// True transmitting node.
        src: u32,
        /// Intended receiving node.
        dst: u32,
    },
    /// An interferer (jammer) turned on or off.
    Jam {
        /// `true` when the interferer was added, `false` when removed.
        on: bool,
        /// Transmit power of the interferer in dBm.
        power_dbm: f64,
    },
    /// A handshake began (responder decoded an initiator hello).
    HandshakeStart {
        /// Peer identity as claimed by the hello.
        peer: Label,
    },
    /// A handshake completed and produced a session.
    HandshakeDone {
        /// Authenticated peer identity.
        peer: Label,
    },
    /// A handshake was rejected.
    HandshakeFail {
        /// Short reason ("pki", "decode", "transcript", ...).
        reason: Label,
    },
    /// A perception sensor produced a reading this tick.
    SensorReading {
        /// Sensor name ("camera", "lidar", "drone").
        sensor: Label,
        /// Number of detections in the reading.
        detections: u32,
    },
    /// The IDS raised an alert.
    IdsAlert {
        /// Alert class ("jamming", "gnss-spoofing", ...).
        class: Label,
        /// Alert severity ("low", "medium", "high", "critical").
        severity: Label,
    },
    /// The continuous risk assessment moved a threat's risk level.
    RiskDelta {
        /// Threat scenario identifier.
        threat: Label,
        /// Risk level before the update.
        from: u8,
        /// Risk level after the update.
        to: u8,
    },
    /// Secure boot measured (and verified) one firmware stage.
    BootMeasure {
        /// Firmware stage ("bootloader", "application").
        stage: Label,
        /// Image version number.
        version: u32,
        /// Whether the stage verified successfully.
        ok: bool,
    },
    /// A record-layer open failed (bad tag, replay, decode).
    AuthFail {
        /// Peer the session is bound to.
        peer: Label,
    },
    /// The incident response policy chose an action for an alert.
    Response {
        /// Chosen action ("log-only", "degraded-mode", ...).
        action: Label,
    },
    /// An attack campaign phase started or ended.
    AttackPhase {
        /// Campaign index within the engine.
        campaign: u32,
        /// Attack kind ("rf-jamming", "replay", ...).
        kind: Label,
        /// `true` on activation, `false` on deactivation.
        started: bool,
    },
    /// A fleet OTA update bundle finished verification and (on success)
    /// was applied through secure-boot update authorization.
    UpdateApply {
        /// Fleet site index.
        site: u32,
        /// Bundle version from the manifest.
        version: u32,
        /// Whether the bundle verified and booted.
        ok: bool,
        /// Outcome tag ("applied", "signature", "downgrade", ...).
        reason: Label,
    },
    /// A staged-rollout wave changed state.
    RolloutWave {
        /// Wave index (0 = canary).
        wave: u32,
        /// Phase tag ("start", "complete", "halt").
        phase: Label,
    },
    /// The fleet SIEM correlated the same attack class across sites.
    CampaignAlert {
        /// Correlated alert class.
        class: Label,
        /// Number of distinct sites reporting the class in the window.
        sites: u32,
    },
    /// A free-form key/value event for ad-hoc instrumentation.
    Custom {
        /// Event key.
        key: Label,
        /// Integer payload.
        value: i64,
    },
    /// Aggregated rollout outcome of one shadow-population shard this
    /// tick. Shadow sites are too numerous for per-site `UpdateApply`
    /// events (a million-site wave would flood any bounded ring), so the
    /// fleet layer emits one summary per shard per tick with activity.
    ShadowWave {
        /// Shadow shard index.
        shard: u32,
        /// Shadow sites in the shard that applied the bundle this tick.
        applied: u32,
        /// Shadow sites in the shard that rejected the bundle this tick.
        rejected: u32,
    },
    /// An incident was accepted into the ops engine's durable queue.
    OpsEnqueue {
        /// Deterministic run id (canonical incident hash ⊕ occurrence).
        run: u64,
        /// Incident alert class.
        class: Label,
        /// Incident severity ("low", ..., "critical").
        severity: Label,
        /// Affected site index; `u32::MAX` means fleet scope.
        site: u32,
        /// Distinct sites involved (1 for site scope).
        sites: u32,
    },
    /// An enqueue was recognised as a duplicate of an open run and
    /// folded into it instead of opening a second run.
    OpsDedup {
        /// Run id the duplicate folded into.
        run: u64,
        /// Total duplicates folded into the run so far.
        duplicates: u32,
    },
    /// The queue leased an incident to the workflow engine.
    OpsLease {
        /// Run id of the leased incident.
        run: u64,
        /// 1-based delivery attempt (2+ = redelivery after lease expiry
        /// or an explicit nack).
        delivery: u32,
    },
    /// A workflow step transition was committed to the run store.
    OpsStep {
        /// Run id the transition belongs to.
        run: u64,
        /// Step transitioned from ("triage", "contain", ...).
        from: Label,
        /// Step transitioned to.
        to: Label,
        /// 1-based attempt number of the `from` step (Silas ladder:
        /// 1..=retries are retries, then consult, re-plan, escalate).
        attempt: u32,
        /// Whether the `from` step's action succeeded.
        ok: bool,
    },
    /// A review gate decided between containment and remediation.
    OpsGate {
        /// Run id the gate belongs to.
        run: u64,
        /// Decision tag ("approve", "reject").
        decision: Label,
        /// `true` when an auto-approve policy decided, `false` for an
        /// explicit reviewer verdict.
        auto: bool,
    },
    /// An incident exhausted its delivery budget and was dead-lettered.
    OpsDeadLetter {
        /// Run id of the dead-lettered incident.
        run: u64,
        /// Deliveries consumed before giving up.
        deliveries: u32,
    },
    /// A generative-TARA live hypothesis changed state: fleet SIEM
    /// evidence confirmed it, or a completed mitigation retired it.
    TaraHypothesis {
        /// Canonical scenario hash of the hypothesis.
        scenario: u64,
        /// Attack-class tag of the hypothesised scenario.
        class: Label,
        /// Transition tag ("confirm", "retire").
        phase: Label,
        /// Risk value (1..=5) the scenario was ranked with.
        risk: u8,
        /// Distinct sites behind the evidence (0 for a retirement not
        /// driven by site evidence).
        sites: u32,
    },
}

/// The kind tag of an [`Event`], used for subscriber filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// [`Event::FrameTx`].
    FrameTx,
    /// [`Event::FrameRx`].
    FrameRx,
    /// [`Event::FrameLost`].
    FrameLost,
    /// [`Event::Jam`].
    Jam,
    /// [`Event::HandshakeStart`].
    HandshakeStart,
    /// [`Event::HandshakeDone`].
    HandshakeDone,
    /// [`Event::HandshakeFail`].
    HandshakeFail,
    /// [`Event::SensorReading`].
    SensorReading,
    /// [`Event::IdsAlert`].
    IdsAlert,
    /// [`Event::RiskDelta`].
    RiskDelta,
    /// [`Event::BootMeasure`].
    BootMeasure,
    /// [`Event::AuthFail`].
    AuthFail,
    /// [`Event::Response`].
    Response,
    /// [`Event::AttackPhase`].
    AttackPhase,
    /// [`Event::UpdateApply`].
    UpdateApply,
    /// [`Event::RolloutWave`].
    RolloutWave,
    /// [`Event::CampaignAlert`].
    CampaignAlert,
    /// [`Event::Custom`].
    Custom,
    /// [`Event::ShadowWave`].
    ShadowWave,
    /// [`Event::OpsEnqueue`].
    OpsEnqueue,
    /// [`Event::OpsDedup`].
    OpsDedup,
    /// [`Event::OpsLease`].
    OpsLease,
    /// [`Event::OpsStep`].
    OpsStep,
    /// [`Event::OpsGate`].
    OpsGate,
    /// [`Event::OpsDeadLetter`].
    OpsDeadLetter,
    /// [`Event::TaraHypothesis`].
    TaraHypothesis,
}

impl EventKind {
    /// Returns this kind's bit in an [`EventFilter`] mask.
    #[must_use]
    pub const fn bit(self) -> u32 {
        1 << self as u32
    }
}

impl Event {
    /// Returns the kind tag of this event.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::FrameTx { .. } => EventKind::FrameTx,
            Event::FrameRx { .. } => EventKind::FrameRx,
            Event::FrameLost { .. } => EventKind::FrameLost,
            Event::Jam { .. } => EventKind::Jam,
            Event::HandshakeStart { .. } => EventKind::HandshakeStart,
            Event::HandshakeDone { .. } => EventKind::HandshakeDone,
            Event::HandshakeFail { .. } => EventKind::HandshakeFail,
            Event::SensorReading { .. } => EventKind::SensorReading,
            Event::IdsAlert { .. } => EventKind::IdsAlert,
            Event::RiskDelta { .. } => EventKind::RiskDelta,
            Event::BootMeasure { .. } => EventKind::BootMeasure,
            Event::AuthFail { .. } => EventKind::AuthFail,
            Event::Response { .. } => EventKind::Response,
            Event::AttackPhase { .. } => EventKind::AttackPhase,
            Event::UpdateApply { .. } => EventKind::UpdateApply,
            Event::RolloutWave { .. } => EventKind::RolloutWave,
            Event::CampaignAlert { .. } => EventKind::CampaignAlert,
            Event::Custom { .. } => EventKind::Custom,
            Event::ShadowWave { .. } => EventKind::ShadowWave,
            Event::OpsEnqueue { .. } => EventKind::OpsEnqueue,
            Event::OpsDedup { .. } => EventKind::OpsDedup,
            Event::OpsLease { .. } => EventKind::OpsLease,
            Event::OpsStep { .. } => EventKind::OpsStep,
            Event::OpsGate { .. } => EventKind::OpsGate,
            Event::OpsDeadLetter { .. } => EventKind::OpsDeadLetter,
            Event::TaraHypothesis { .. } => EventKind::TaraHypothesis,
        }
    }
}

/// A bitmask over [`EventKind`]s selecting which events a subscriber
/// receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter(u32);

impl EventFilter {
    /// A filter that accepts every event kind.
    #[must_use]
    pub const fn all() -> Self {
        EventFilter(u32::MAX)
    }

    /// A filter that accepts nothing.
    #[must_use]
    pub const fn none() -> Self {
        EventFilter(0)
    }

    /// The security-relevant, low-volume subset: alerts, risk deltas,
    /// handshake lifecycle, boot measurements, responses, auth failures
    /// and attack phases — everything except per-frame radio traffic and
    /// per-tick sensor readings. A subscriber with this filter keeps the
    /// first alerts of an episode even when frame traffic would have
    /// evicted them from an unfiltered flight ring.
    #[must_use]
    pub const fn security() -> Self {
        EventFilter(
            EventKind::HandshakeStart.bit()
                | EventKind::HandshakeDone.bit()
                | EventKind::HandshakeFail.bit()
                | EventKind::IdsAlert.bit()
                | EventKind::RiskDelta.bit()
                | EventKind::BootMeasure.bit()
                | EventKind::AuthFail.bit()
                | EventKind::Response.bit()
                | EventKind::AttackPhase.bit()
                | EventKind::Jam.bit()
                | EventKind::UpdateApply.bit()
                | EventKind::RolloutWave.bit()
                | EventKind::CampaignAlert.bit()
                | EventKind::ShadowWave.bit()
                | EventKind::OpsEnqueue.bit()
                | EventKind::OpsDedup.bit()
                | EventKind::OpsLease.bit()
                | EventKind::OpsStep.bit()
                | EventKind::OpsGate.bit()
                | EventKind::OpsDeadLetter.bit()
                | EventKind::TaraHypothesis.bit(),
        )
    }

    /// Returns a copy of this filter that also accepts `kind`.
    #[must_use]
    pub const fn with(self, kind: EventKind) -> Self {
        EventFilter(self.0 | kind.bit())
    }

    /// Returns `true` when this filter accepts `kind`.
    #[must_use]
    pub const fn allows(self, kind: EventKind) -> bool {
        self.0 & kind.bit() != 0
    }
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter::all()
    }
}

/// A recorded event: the payload plus the recorder's stamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Simulated time at which the event was recorded.
    pub at: SimTime,
    /// Monotonic sequence number, global across all subscribers.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip_and_truncation() {
        assert_eq!(Label::new("jamming").as_str(), "jamming");
        let long = Label::new("a-very-long-label-that-exceeds-capacity");
        assert_eq!(long.as_str().len(), LABEL_CAPACITY);
        assert!(long.as_str().starts_with("a-very-long-label"));
        // Truncation respects character boundaries for multibyte input.
        let multi = Label::new("ääääääääääääää"); // 2 bytes per char
        assert!(multi.as_str().chars().all(|c| c == 'ä'));
        assert!(Label::new("").is_empty());
    }

    #[test]
    fn const_constructor_matches_runtime_constructor() {
        const HOISTED: Label = Label::from_static("forwarder-01/camera");
        assert_eq!(HOISTED, Label::new("forwarder-01/camera"));
        for s in [
            "",
            "x",
            "forwarder-01/lidar",
            "a-very-long-label-that-exceeds-capacity",
            "ääääääääääääää",
            "ääääääääääää-and-more-tail",
        ] {
            assert_eq!(Label::from_static(s), Label::new(s), "input {s:?}");
        }
    }

    #[test]
    fn event_is_copy_and_kinds_match() {
        let e = Event::IdsAlert {
            class: Label::new("jamming"),
            severity: Label::new("high"),
        };
        let e2 = e; // Copy
        assert_eq!(e, e2);
        assert_eq!(e.kind(), EventKind::IdsAlert);
        assert_eq!(
            Event::Custom {
                key: Label::new("k"),
                value: -3
            }
            .kind(),
            EventKind::Custom
        );
    }

    #[test]
    fn filter_masks() {
        let f = EventFilter::none().with(EventKind::IdsAlert);
        assert!(f.allows(EventKind::IdsAlert));
        assert!(!f.allows(EventKind::FrameTx));
        assert!(EventFilter::all().allows(EventKind::FrameRx));
        let s = EventFilter::security();
        assert!(s.allows(EventKind::IdsAlert));
        assert!(s.allows(EventKind::RiskDelta));
        assert!(s.allows(EventKind::UpdateApply));
        assert!(s.allows(EventKind::RolloutWave));
        assert!(s.allows(EventKind::CampaignAlert));
        assert!(s.allows(EventKind::ShadowWave));
        assert!(s.allows(EventKind::OpsEnqueue));
        assert!(s.allows(EventKind::OpsStep));
        assert!(s.allows(EventKind::OpsGate));
        assert!(s.allows(EventKind::OpsDeadLetter));
        assert!(s.allows(EventKind::TaraHypothesis));
        assert!(!s.allows(EventKind::FrameTx));
        assert!(!s.allows(EventKind::SensorReading));
    }

    #[test]
    fn record_serde_roundtrip() {
        let r = Record {
            at: SimTime::from_millis(1500),
            seq: 7,
            event: Event::FrameTx {
                src: 1,
                dst: None,
                kind: Label::new("deauth"),
                bytes: 26,
                seq: 42,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
