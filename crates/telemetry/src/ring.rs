//! Bounded flight-recorder ring buffer with drop accounting.

use crate::event::Record;

/// A bounded ring buffer of [`Record`]s that overwrites its oldest entry
/// when full (flight-recorder semantics).
///
/// Every overwrite increments a `dropped` counter; `pushed` counts every
/// record ever offered. Both are surfaced through the recorder's
/// [`MetricsSnapshot`](crate::MetricsSnapshot) so silent event loss can
/// never masquerade as a clean trace.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<Record>,
    capacity: usize,
    /// Index of the oldest record.
    head: usize,
    len: usize,
    pushed: u64,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a ring with room for `capacity` records (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            pushed: 0,
            dropped: 0,
        }
    }

    /// Pushes a record, evicting the oldest one when the ring is full.
    pub fn push(&mut self, record: Record) {
        self.pushed += 1;
        if self.len < self.capacity {
            self.buf.push(record);
            self.len += 1;
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no records are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of records the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of records ever pushed.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Number of records evicted by overwrites.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held records from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        let (tail, head) = self.buf.split_at(self.head.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }

    /// Copies the held records out, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Record> {
        self.iter().copied().collect()
    }

    /// Resets the ring to its freshly-created state — empty, with
    /// `pushed`/`dropped` zeroed — keeping the buffer allocation. Unlike
    /// [`RingBuffer::drain`], which preserves the accounting, this is the
    /// episode-reset path: the next episode's counters must start from
    /// zero exactly as a new ring's would.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        self.pushed = 0;
        self.dropped = 0;
    }

    /// Removes and returns all held records, oldest first. Counters are
    /// preserved.
    pub fn drain(&mut self) -> Vec<Record> {
        let out = self.to_vec();
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Label};
    use silvasec_sim::SimTime;

    fn rec(seq: u64) -> Record {
        Record {
            at: SimTime::from_millis(seq),
            seq,
            event: Event::Custom {
                key: Label::new("t"),
                value: seq as i64,
            },
        }
    }

    #[test]
    fn push_and_order() {
        let mut r = RingBuffer::new(4);
        for i in 0..3 {
            r.push(rec(i));
        }
        let seqs: Vec<u64> = r.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(r.pushed(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let mut r = RingBuffer::new(3);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.dropped(), 7, "every overwrite must be accounted for");
        let seqs: Vec<u64> = r.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "oldest records are the ones evicted");
    }

    #[test]
    fn drain_keeps_counters() {
        let mut r = RingBuffer::new(2);
        for i in 0..5 {
            r.push(rec(i));
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.dropped(), 3);
        r.push(rec(100));
        assert_eq!(r.iter().next().unwrap().seq, 100);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingBuffer::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(rec(1));
        r.push(rec(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
