//! The flight recorder: a cheap, cloneable handle threaded through the
//! instrumented stack, mirroring how `SimRng` flows.

use crate::event::{Event, EventFilter, Record};
use crate::metrics::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, SubscriberStats,
};
use crate::ring::RingBuffer;
use silvasec_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a subscriber ring inside a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(usize);

#[derive(Debug)]
struct Subscriber {
    name: String,
    filter: EventFilter,
    ring: RingBuffer,
}

#[derive(Debug)]
struct Core {
    now: SimTime,
    seq: u64,
    subscribers: Vec<Subscriber>,
    metrics: MetricsRegistry,
}

/// A deterministic structured-event recorder.
///
/// The recorder is a cheap, cloneable handle (`Rc`-backed); every clone
/// shares the same core, so the owning component (`Worksite`) can hand
/// clones to the medium, the attack engine, the IDS, sessions and boot
/// devices without any global mutable state. A [`Recorder::disabled`]
/// handle turns every operation into a no-op, so instrumented code never
/// branches on an `Option`.
///
/// Time never comes from the wall clock: the owner calls
/// [`Recorder::advance`] once per simulation tick and every recorded
/// event is stamped with that [`SimTime`] plus a monotonic sequence
/// number. Identical seeds therefore produce byte-identical exports.
///
/// ```
/// use silvasec_telemetry::{Event, EventFilter, Label, Recorder};
/// use silvasec_sim::SimTime;
///
/// let rec = Recorder::new();
/// let flight = rec.subscribe("flight", 1024);
/// rec.advance(SimTime::from_millis(500));
/// rec.record(Event::Custom { key: Label::new("k"), value: 1 });
/// assert_eq!(rec.records(flight).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    core: Option<Rc<RefCell<Core>>>,
}

impl Recorder {
    /// Creates an enabled recorder with no subscribers yet.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            core: Some(Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                seq: 0,
                subscribers: Vec::new(),
                metrics: MetricsRegistry::new(),
            }))),
        }
    }

    /// Creates a disabled recorder: every operation is a no-op and
    /// recording costs a single pointer check.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { core: None }
    }

    /// Returns `true` when this handle records events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Adds a subscriber receiving every event, with a ring of
    /// `capacity` records. Returns a no-op id on a disabled recorder.
    pub fn subscribe(&self, name: &str, capacity: usize) -> SubscriberId {
        self.subscribe_filtered(name, capacity, EventFilter::all())
    }

    /// Adds a subscriber receiving only events allowed by `filter`.
    pub fn subscribe_filtered(
        &self,
        name: &str,
        capacity: usize,
        filter: EventFilter,
    ) -> SubscriberId {
        match &self.core {
            Some(core) => {
                let mut c = core.borrow_mut();
                c.subscribers.push(Subscriber {
                    name: name.to_string(),
                    filter,
                    ring: RingBuffer::new(capacity),
                });
                SubscriberId(c.subscribers.len() - 1)
            }
            None => SubscriberId(usize::MAX),
        }
    }

    /// Resets the shared core for a new episode: clock and sequence
    /// number to zero, every subscriber ring emptied with its counters
    /// zeroed, every metric value zeroed. Subscriber ids, names, filters,
    /// capacities and all allocations are preserved, so instrumented
    /// components keep their handles across episodes. No-op when
    /// disabled.
    pub fn reset(&self) {
        if let Some(core) = &self.core {
            let mut c = core.borrow_mut();
            c.now = SimTime::ZERO;
            c.seq = 0;
            for sub in &mut c.subscribers {
                sub.ring.reset();
            }
            c.metrics.reset_values();
        }
    }

    /// Advances the recorder's clock; subsequent [`Recorder::record`]
    /// calls are stamped with `now`.
    pub fn advance(&self, now: SimTime) {
        if let Some(core) = &self.core {
            core.borrow_mut().now = now;
        }
    }

    /// Current recorder time ([`SimTime::ZERO`] when disabled).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.as_ref().map_or(SimTime::ZERO, |c| c.borrow().now)
    }

    /// Records an event at the current recorder time.
    pub fn record(&self, event: Event) {
        if let Some(core) = &self.core {
            let mut c = core.borrow_mut();
            let at = c.now;
            c.push(at, event);
        }
    }

    /// Records an event at an explicit time (used by components that
    /// receive `now` as a parameter).
    pub fn record_at(&self, at: SimTime, event: Event) {
        if let Some(core) = &self.core {
            core.borrow_mut().push(at, event);
        }
    }

    /// Total number of events recorded (across all subscribers' filters).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.borrow().seq)
    }

    /// Copies a subscriber's held records, oldest first.
    #[must_use]
    pub fn records(&self, id: SubscriberId) -> Vec<Record> {
        match &self.core {
            Some(core) => core
                .borrow()
                .subscribers
                .get(id.0)
                .map_or_else(Vec::new, |s| s.ring.to_vec()),
            None => Vec::new(),
        }
    }

    /// Removes and returns a subscriber's held records, oldest first.
    /// Ring counters (pushed/dropped) are preserved.
    pub fn drain(&self, id: SubscriberId) -> Vec<Record> {
        match &self.core {
            Some(core) => core
                .borrow_mut()
                .subscribers
                .get_mut(id.0)
                .map_or_else(Vec::new, |s| s.ring.drain()),
            None => Vec::new(),
        }
    }

    /// Serializes a subscriber's held records as JSON Lines (one record
    /// per line, oldest first, trailing newline).
    #[must_use]
    pub fn export_jsonl(&self, id: SubscriberId) -> String {
        let mut out = String::new();
        if let Some(core) = &self.core {
            let c = core.borrow();
            if let Some(s) = c.subscribers.get(id.0) {
                for r in s.ring.iter() {
                    // Serialization of plain-old-data records cannot fail.
                    if let Ok(line) = serde_json::to_string(r) {
                        out.push_str(&line);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Ring statistics for every subscriber.
    #[must_use]
    pub fn stats(&self) -> Vec<SubscriberStats> {
        match &self.core {
            Some(core) => core
                .borrow()
                .subscribers
                .iter()
                .map(|s| SubscriberStats {
                    name: s.name.clone(),
                    capacity: s.ring.capacity() as u64,
                    len: s.ring.len() as u64,
                    pushed: s.ring.pushed(),
                    dropped: s.ring.dropped(),
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Takes a snapshot of the embedded metrics registry, including the
    /// per-subscriber ring drop accounting.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.core {
            Some(core) => {
                let stats = self.stats();
                core.borrow().metrics.snapshot(stats)
            }
            None => MetricsSnapshot::default(),
        }
    }

    /// Registers (or looks up) a counter. No-op id on a disabled handle.
    pub fn counter(&self, name: &str) -> CounterId {
        match &self.core {
            Some(core) => core.borrow_mut().metrics.counter(name),
            None => CounterId(usize::MAX),
        }
    }

    /// Adds `by` to a counter.
    pub fn inc(&self, id: CounterId, by: u64) {
        if let Some(core) = &self.core {
            core.borrow_mut().metrics.inc(id, by);
        }
    }

    /// Registers (or looks up) a gauge. No-op id on a disabled handle.
    pub fn gauge(&self, name: &str) -> GaugeId {
        match &self.core {
            Some(core) => core.borrow_mut().metrics.gauge(name),
            None => GaugeId(usize::MAX),
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, id: GaugeId, value: f64) {
        if let Some(core) = &self.core {
            core.borrow_mut().metrics.set_gauge(id, value);
        }
    }

    /// Registers (or looks up) a fixed-bucket histogram.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> HistogramId {
        match &self.core {
            Some(core) => core.borrow_mut().metrics.histogram(name, bounds),
            None => HistogramId(usize::MAX),
        }
    }

    /// Records a histogram observation.
    pub fn observe(&self, id: HistogramId, value: f64) {
        if let Some(core) = &self.core {
            core.borrow_mut().metrics.observe(id, value);
        }
    }
}

impl Core {
    fn push(&mut self, at: SimTime, event: Event) {
        let record = Record {
            at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        let kind = event.kind();
        for sub in &mut self.subscribers {
            if sub.filter.allows(kind) {
                sub.ring.push(record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Label};

    fn custom(v: i64) -> Event {
        Event::Custom {
            key: Label::new("t"),
            value: v,
        }
    }

    #[test]
    fn clones_share_one_core() {
        let rec = Recorder::new();
        let sub = rec.subscribe("flight", 16);
        let handle = rec.clone();
        handle.advance(SimTime::from_millis(250));
        handle.record(custom(1));
        let records = rec.records(sub);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].at, SimTime::from_millis(250));
        assert_eq!(records[0].seq, 0);
        assert_eq!(rec.events_recorded(), 1);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let sub = rec.subscribe("flight", 16);
        rec.advance(SimTime::from_secs(9));
        rec.record(custom(1));
        let c = rec.counter("x");
        rec.inc(c, 5);
        assert!(rec.records(sub).is_empty());
        assert_eq!(rec.events_recorded(), 0);
        assert_eq!(rec.snapshot(), MetricsSnapshot::default());
        assert!(rec.export_jsonl(sub).is_empty());
    }

    #[test]
    fn filtered_subscriber_sees_only_its_kinds() {
        let rec = Recorder::new();
        let all = rec.subscribe("flight", 16);
        let security = rec.subscribe_filtered(
            "security",
            16,
            EventFilter::none().with(EventKind::IdsAlert),
        );
        rec.record(custom(1));
        rec.record(Event::IdsAlert {
            class: Label::new("jamming"),
            severity: Label::new("high"),
        });
        assert_eq!(rec.records(all).len(), 2);
        let sec = rec.records(security);
        assert_eq!(sec.len(), 1);
        assert_eq!(sec[0].seq, 1, "sequence numbers are global");
    }

    #[test]
    fn overflow_drops_are_visible_in_metrics_snapshot() {
        // Satellite fix: silent event loss can never masquerade as a
        // clean trace — drops must show up in MetricsSnapshot.
        let rec = Recorder::new();
        let _sub = rec.subscribe("tiny", 4);
        for i in 0..20 {
            rec.record(custom(i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.subscribers.len(), 1);
        assert_eq!(snap.subscribers[0].pushed, 20);
        assert!(
            snap.subscribers[0].dropped > 0,
            "overflow must be accounted as drops"
        );
        assert_eq!(snap.total_dropped(), 16);
        assert!(snap.subscribers[0].drop_rate() > 0.0);
    }

    #[test]
    fn export_jsonl_is_one_record_per_line() {
        let rec = Recorder::new();
        let sub = rec.subscribe("flight", 8);
        rec.advance(SimTime::from_millis(500));
        rec.record(custom(1));
        rec.record(custom(2));
        let jsonl = rec.export_jsonl(sub);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: Record = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back.event, custom(1));
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn metrics_through_recorder_handles() {
        let rec = Recorder::new();
        let c = rec.counter("frames_tx");
        let c2 = rec.clone().counter("frames_tx");
        assert_eq!(c, c2);
        rec.inc(c, 3);
        let g = rec.gauge("noise_dbm");
        rec.set_gauge(g, -88.0);
        let h = rec.histogram("lat", &[1.0]);
        rec.observe(h, 0.5);
        rec.observe(h, 2.0);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("frames_tx"), Some(3));
        assert_eq!(snap.gauges[0].1, -88.0);
        assert_eq!(snap.histograms[0].1.counts, vec![1, 1]);
    }

    #[test]
    fn drain_empties_but_keeps_accounting() {
        let rec = Recorder::new();
        let sub = rec.subscribe("flight", 2);
        for i in 0..5 {
            rec.record(custom(i));
        }
        let drained = rec.drain(sub);
        assert_eq!(drained.len(), 2);
        assert!(rec.records(sub).is_empty());
        let snap = rec.snapshot();
        assert_eq!(snap.subscribers[0].pushed, 5);
        assert_eq!(snap.subscribers[0].dropped, 3);
    }
}
