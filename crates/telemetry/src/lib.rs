//! # silvasec-telemetry — deterministic flight recorder and metrics
//!
//! The observability substrate of the SilvaSec stack: a structured,
//! `SimTime`-stamped event recorder, a metrics registry and a trace
//! export/diff toolkit, built for the simulator's two hard rules:
//!
//! 1. **Determinism.** No wall clock anywhere: events are stamped with
//!    the simulation clock ([`Recorder::advance`]) and a monotonic
//!    sequence number, so identically-seeded runs export byte-identical
//!    JSONL traces — and [`export::first_divergence`] pinpoints the
//!    first divergent event when they don't.
//! 2. **Zero allocation on the hot path.** [`Event`] is a `Copy` enum
//!    whose strings are inline [`Label`]s; recording writes into
//!    pre-sized ring buffers ([`ring::RingBuffer`]) that overwrite their
//!    oldest entry when full and count every drop.
//!
//! There is no global mutable state: a [`Recorder`] handle is threaded
//! through the instrumented components exactly the way `SimRng` flows,
//! and [`Recorder::disabled`] makes every call a no-op pointer check so
//! instrumentation stays in release builds for free.
//!
//! Subscribers attach bounded rings with per-kind filters
//! ([`EventFilter`]); the worksite uses an unfiltered "flight" ring for
//! full traffic plus a low-volume [`EventFilter::security`] ring so the
//! first IDS alerts of an episode survive frame-traffic churn. Drop
//! accounting for every ring is part of [`MetricsSnapshot`], so silent
//! event loss is always visible.
//!
//! ```
//! use silvasec_sim::SimTime;
//! use silvasec_telemetry::{Event, Label, Recorder};
//!
//! let recorder = Recorder::new();
//! let flight = recorder.subscribe("flight", 4096);
//! recorder.advance(SimTime::from_millis(500));
//! recorder.record(Event::IdsAlert {
//!     class: Label::new("jamming"),
//!     severity: Label::new("high"),
//! });
//! let jsonl = recorder.export_jsonl(flight);
//! assert_eq!(jsonl.lines().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod ring;

pub use event::{Event, EventFilter, EventKind, Label, Record, LABEL_CAPACITY};
pub use export::{first_divergence, first_divergence_jsonl, Divergence};
pub use metrics::{
    CounterId, GaugeId, Histogram, HistogramId, MetricsRegistry, MetricsSnapshot, SubscriberStats,
};
pub use recorder::{Recorder, SubscriberId};
pub use ring::RingBuffer;

/// Convenience re-exports for `use silvasec_telemetry::prelude::*`.
pub mod prelude {
    pub use crate::event::{Event, EventFilter, EventKind, Label, Record};
    pub use crate::metrics::{MetricsRegistry, MetricsSnapshot, SubscriberStats};
    pub use crate::recorder::{Recorder, SubscriberId};
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_sim::SimTime;

    #[test]
    fn end_to_end_record_export_parse_diff() {
        let run = |vals: &[i64]| {
            let rec = Recorder::new();
            let sub = rec.subscribe("flight", 128);
            for (i, v) in vals.iter().enumerate() {
                rec.advance(SimTime::from_millis(500 * i as u64));
                rec.record(Event::Custom {
                    key: Label::new("step"),
                    value: *v,
                });
            }
            rec.export_jsonl(sub)
        };
        let a = run(&[1, 2, 3]);
        let b = run(&[1, 2, 3]);
        assert_eq!(first_divergence_jsonl(&a, &b).unwrap(), None);
        let c = run(&[1, 5, 3]);
        let d = first_divergence_jsonl(&a, &c).unwrap().unwrap();
        assert_eq!(d.index, 1);
        let records = export::parse_jsonl_records(&a).unwrap();
        assert_eq!(records.len(), 3);
    }
}
