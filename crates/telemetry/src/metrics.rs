//! Metrics registry: counters, gauges and fixed-bucket histograms with a
//! serializable snapshot API.

use serde::{Deserialize, Serialize};

/// Handle to a counter in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a gauge in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a histogram in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// A fixed-bucket histogram: counts per bucket plus running sum/count.
///
/// Bucket `i` counts observations `<= bounds[i]`; one extra overflow
/// bucket counts everything larger than the last bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bucket bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of all observations, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Registry of named counters, gauges and histograms.
///
/// Names are interned on first registration: registering the same name
/// twice returns the same handle, so instrumented components can create
/// their handles independently.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if let Some((_, v)) = self.counters.get_mut(id.0) {
            *v += by;
        }
    }

    /// Registers (or looks up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        if let Some((_, v)) = self.gauges.get_mut(id.0) {
            *v = value;
        }
    }

    /// Registers (or looks up) a histogram by name with the given
    /// ascending bucket bounds. Bounds are fixed at first registration.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Records an observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        if let Some((_, h)) = self.histograms.get_mut(id.0) {
            h.observe(value);
        }
    }

    /// Zeroes every registered metric in place, keeping names, handles
    /// and allocations: a component that re-registers a name after a
    /// reset gets the id it had before, with a fresh value. This is the
    /// episode-reset fast path — re-interning metric names every episode
    /// would allocate a `String` per metric.
    pub fn reset_values(&mut self) {
        for (_, v) in &mut self.counters {
            *v = 0;
        }
        for (_, v) in &mut self.gauges {
            *v = 0.0;
        }
        for (_, h) in &mut self.histograms {
            for c in &mut h.counts {
                *c = 0;
            }
            h.count = 0;
            h.sum = 0.0;
        }
    }

    /// Current value of a counter (0 for an invalid handle).
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters.get(id.0).map_or(0, |(_, v)| *v)
    }

    /// Takes a serializable snapshot of every metric, with subscriber
    /// ring statistics filled in by the caller (the recorder).
    #[must_use]
    pub fn snapshot(&self, subscribers: Vec<SubscriberStats>) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            subscribers,
        }
    }
}

/// Ring-buffer accounting for one recorder subscriber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriberStats {
    /// Subscriber name.
    pub name: String,
    /// Ring capacity in records.
    pub capacity: u64,
    /// Records currently held.
    pub len: u64,
    /// Records ever pushed to this subscriber.
    pub pushed: u64,
    /// Records evicted by ring overwrites (event loss).
    pub dropped: u64,
}

impl SubscriberStats {
    /// Fraction of pushed records that were dropped (0 when none pushed).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.dropped as f64 / self.pushed as f64
        }
    }
}

/// A point-in-time, serializable view of a [`MetricsRegistry`] plus the
/// recorder's per-subscriber ring accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter name/value pairs in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauge name/value pairs in registration order.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name/state pairs in registration order.
    pub histograms: Vec<(String, Histogram)>,
    /// Ring statistics for every subscriber, including drop counts.
    pub subscribers: Vec<SubscriberStats>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Total records dropped across all subscribers.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.subscribers.iter().map(|s| s.dropped).sum()
    }

    /// Total records pushed across all subscribers.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.subscribers.iter().map(|s| s.pushed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("frames");
        let b = m.counter("frames");
        assert_eq!(a, b);
        m.inc(a, 2);
        m.inc(b, 3);
        assert_eq!(m.counter_value(a), 5);
    }

    #[test]
    fn gauges_set() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("noise_dbm");
        m.set_gauge(g, -90.5);
        let snap = m.snapshot(Vec::new());
        assert_eq!(snap.gauges, vec![("noise_dbm".to_string(), -90.5)]);
    }

    #[test]
    fn histogram_buckets() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("latency_s", &[1.0, 5.0, 10.0]);
        for v in [0.5, 0.9, 3.0, 7.0, 100.0] {
            m.observe(h, v);
        }
        let snap = m.snapshot(Vec::new());
        let (_, hist) = &snap.histograms[0];
        assert_eq!(hist.counts, vec![2, 1, 1, 1]);
        assert_eq!(hist.count, 5);
        assert!((hist.mean() - 22.28).abs() < 0.01);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("x");
        m.inc(c, 9);
        let snap = m.snapshot(vec![SubscriberStats {
            name: "flight".into(),
            capacity: 8,
            len: 8,
            pushed: 20,
            dropped: 12,
        }]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("x"), Some(9));
        assert_eq!(back.total_dropped(), 12);
        assert!((back.subscribers[0].drop_rate() - 0.6).abs() < 1e-12);
    }
}
