//! JSONL trace parsing and event-by-event divergence auditing.
//!
//! This module turns the repo's bit-identity determinism checks into a
//! debuggable audit: instead of "the traces differ", it reports *which*
//! event diverged first, *which field*, and both values.

use crate::event::Record;
use serde::{Deserialize, Error, Value};

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first divergent event (line number, 0-based).
    pub index: usize,
    /// Dotted path of the first divergent field (e.g.
    /// `event.FrameRx.rssi_dbm`), or `length` when one trace is a strict
    /// prefix of the other.
    pub field: String,
    /// The value on the left side (`"<missing>"` past end of trace).
    pub left: String,
    /// The value on the right side (`"<missing>"` past end of trace).
    pub right: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event #{} field `{}`: left={} right={}",
            self.index, self.field, self.left, self.right
        )
    }
}

/// Parses a JSONL trace into generic JSON values, one per line.
///
/// Blank lines are skipped. Returns the first parse error with its line
/// number folded into the message.
pub fn parse_jsonl_values(text: &str) -> Result<Vec<Value>, Error> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::parse(line) {
            Ok(v) => out.push(v),
            Err(e) => return Err(Error::custom(format!("line {}: {e}", i + 1))),
        }
    }
    Ok(out)
}

/// Parses a JSONL trace into typed [`Record`]s.
pub fn parse_jsonl_records(text: &str) -> Result<Vec<Record>, Error> {
    parse_jsonl_values(text)?
        .iter()
        .map(Record::deserialize)
        .collect()
}

/// Compares two traces event-by-event and returns the first divergence,
/// or `None` when they are identical.
#[must_use]
pub fn first_divergence(left: &[Value], right: &[Value]) -> Option<Divergence> {
    let n = left.len().min(right.len());
    for i in 0..n {
        if let Some((field, l, r)) = diff_value("", &left[i], &right[i]) {
            return Some(Divergence {
                index: i,
                field,
                left: l,
                right: r,
            });
        }
    }
    if left.len() != right.len() {
        let present = |side: &[Value]| side.get(n).map_or_else(|| "<missing>".to_string(), render);
        return Some(Divergence {
            index: n,
            field: "length".to_string(),
            left: present(left),
            right: present(right),
        });
    }
    None
}

/// Convenience: parse both JSONL texts and report the first divergence.
pub fn first_divergence_jsonl(left: &str, right: &str) -> Result<Option<Divergence>, Error> {
    let l = parse_jsonl_values(left)?;
    let r = parse_jsonl_values(right)?;
    Ok(first_divergence(&l, &r))
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unprintable>".to_string())
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Recursively diffs two JSON values; returns the dotted path of the
/// first differing leaf plus both rendered values.
fn diff_value(path: &str, left: &Value, right: &Value) -> Option<(String, String, String)> {
    match (left, right) {
        (Value::Object(l), Value::Object(r)) => {
            let mut i = 0;
            loop {
                match (l.get(i), r.get(i)) {
                    (None, None) => return None,
                    (Some((lk, lv)), Some((rk, rv))) => {
                        if lk != rk {
                            return Some((
                                join(path, &format!("<key {i}>")),
                                lk.clone(),
                                rk.clone(),
                            ));
                        }
                        if let Some(d) = diff_value(&join(path, lk), lv, rv) {
                            return Some(d);
                        }
                    }
                    (Some((lk, lv)), None) => {
                        return Some((join(path, lk), render(lv), "<missing>".to_string()));
                    }
                    (None, Some((rk, rv))) => {
                        return Some((join(path, rk), "<missing>".to_string(), render(rv)));
                    }
                }
                i += 1;
            }
        }
        (Value::Array(l), Value::Array(r)) => {
            let n = l.len().min(r.len());
            for i in 0..n {
                if let Some(d) = diff_value(&join(path, &i.to_string()), &l[i], &r[i]) {
                    return Some(d);
                }
            }
            if l.len() != r.len() {
                return Some((
                    join(path, "length"),
                    l.len().to_string(),
                    r.len().to_string(),
                ));
            }
            None
        }
        (l, r) if l == r => None,
        (l, r) => Some((path.to_string(), render(l), render(r))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Label};
    use crate::recorder::Recorder;
    use silvasec_sim::SimTime;

    fn trace(values: &[i64]) -> String {
        let rec = Recorder::new();
        let sub = rec.subscribe("t", 64);
        for (i, v) in values.iter().enumerate() {
            rec.advance(SimTime::from_millis(i as u64 * 500));
            rec.record(Event::Custom {
                key: Label::new("k"),
                value: *v,
            });
        }
        rec.export_jsonl(sub)
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = trace(&[1, 2, 3]);
        let b = trace(&[1, 2, 3]);
        assert_eq!(a, b, "same inputs must export byte-identically");
        assert_eq!(first_divergence_jsonl(&a, &b).unwrap(), None);
    }

    #[test]
    fn differing_field_is_pinpointed() {
        let a = trace(&[1, 2, 3]);
        let b = trace(&[1, 9, 3]);
        let d = first_divergence_jsonl(&a, &b).unwrap().unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.field, "event.Custom.value");
        assert_eq!(d.left, "2");
        assert_eq!(d.right, "9");
        let shown = d.to_string();
        assert!(shown.contains("event #1"));
        assert!(shown.contains("event.Custom.value"));
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a = trace(&[1, 2]);
        let b = trace(&[1, 2, 3]);
        let d = first_divergence_jsonl(&a, &b).unwrap().unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.field, "length");
        assert_eq!(d.left, "<missing>");
    }

    #[test]
    fn records_parse_back_typed() {
        let text = trace(&[5]);
        let records = parse_jsonl_records(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].event,
            Event::Custom {
                key: Label::new("k"),
                value: 5
            }
        );
    }

    #[test]
    fn parse_error_carries_line_number() {
        let err = parse_jsonl_values("{\"ok\":1}\nnot json\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
