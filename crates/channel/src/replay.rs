//! Sliding-window replay protection for the record layer.

use crate::error::ChannelError;

/// Size of the acceptance window in sequence numbers.
pub const WINDOW_SIZE: u64 = 64;

/// A sliding-window replay filter (RFC 4303-style).
///
/// Accepts each sequence number at most once; numbers older than the
/// window are rejected outright.
#[derive(Debug, Clone, Default)]
pub struct ReplayWindow {
    /// Highest sequence number accepted so far (+1), 0 = none yet.
    top: u64,
    /// Bitmap of the `WINDOW_SIZE` numbers below `top`.
    bitmap: u64,
}

impl ReplayWindow {
    /// Creates an empty window.
    #[must_use]
    pub fn new() -> Self {
        ReplayWindow::default()
    }

    /// Checks and registers `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Replay`] when `seq` was already accepted
    /// or has fallen out of the window.
    pub fn accept(&mut self, seq: u64) -> Result<(), ChannelError> {
        if self.top == 0 || seq >= self.top {
            // Advancing the window.
            let advance = if self.top == 0 {
                seq + 1
            } else {
                seq + 1 - self.top
            };
            if advance >= WINDOW_SIZE {
                self.bitmap = 1; // only the new top is marked
            } else {
                self.bitmap = (self.bitmap << advance) | 1;
            }
            self.top = seq + 1;
            Ok(())
        } else {
            let age = self.top - 1 - seq;
            if age >= WINDOW_SIZE {
                return Err(ChannelError::Replay);
            }
            let bit = 1u64 << age;
            if self.bitmap & bit != 0 {
                return Err(ChannelError::Replay);
            }
            self.bitmap |= bit;
            Ok(())
        }
    }

    /// Highest accepted sequence number, if any.
    #[must_use]
    pub fn highest(&self) -> Option<u64> {
        self.top.checked_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_sequence_accepted() {
        let mut w = ReplayWindow::new();
        for seq in 0..200 {
            assert!(w.accept(seq).is_ok(), "seq {seq}");
        }
        assert_eq!(w.highest(), Some(199));
    }

    #[test]
    fn duplicates_rejected() {
        let mut w = ReplayWindow::new();
        w.accept(5).unwrap();
        assert_eq!(w.accept(5), Err(ChannelError::Replay));
        w.accept(6).unwrap();
        assert_eq!(w.accept(5), Err(ChannelError::Replay));
        assert_eq!(w.accept(6), Err(ChannelError::Replay));
    }

    #[test]
    fn out_of_order_within_window_accepted_once() {
        let mut w = ReplayWindow::new();
        w.accept(10).unwrap();
        w.accept(7).unwrap();
        w.accept(9).unwrap();
        assert_eq!(w.accept(7), Err(ChannelError::Replay));
        assert!(w.accept(8).is_ok());
    }

    #[test]
    fn too_old_rejected() {
        let mut w = ReplayWindow::new();
        w.accept(100).unwrap();
        assert_eq!(w.accept(100 - WINDOW_SIZE), Err(ChannelError::Replay));
        assert!(w.accept(100 - WINDOW_SIZE + 1).is_ok());
    }

    #[test]
    fn big_jump_clears_bitmap() {
        let mut w = ReplayWindow::new();
        w.accept(1).unwrap();
        w.accept(1000).unwrap();
        // 1 is way out of window now.
        assert_eq!(w.accept(1), Err(ChannelError::Replay));
        // 999 is in the window and unseen.
        assert!(w.accept(999).is_ok());
        assert_eq!(w.accept(1000), Err(ChannelError::Replay));
    }

    #[test]
    fn starts_empty() {
        let w = ReplayWindow::new();
        assert_eq!(w.highest(), None);
    }

    #[test]
    fn zero_sequence_handled() {
        let mut w = ReplayWindow::new();
        assert!(w.accept(0).is_ok());
        assert_eq!(w.accept(0), Err(ChannelError::Replay));
        assert!(w.accept(1).is_ok());
    }
}
