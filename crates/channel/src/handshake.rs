//! The SIGMA-style handshake state machines.

use crate::error::ChannelError;
use crate::messages::{Finished, Hello, Reply};
use crate::session::{Session, SessionKeys};
use silvasec_crypto::schnorr::{Signature, SigningKey};
use silvasec_crypto::{hkdf, sha256, x25519};
use silvasec_pki::{Certificate, CertificateRevocationList, KeyUsage, TrustStore};
use silvasec_telemetry::{Event, Label, Recorder};

/// Short stable reason string for a channel error, used as a telemetry
/// label on `HandshakeFail` events.
pub(crate) fn error_reason(e: &ChannelError) -> &'static str {
    match e {
        ChannelError::Pki(_) => "pki",
        ChannelError::Crypto(_) => "crypto",
        ChannelError::Decode => "decode",
        ChannelError::SmallOrderKey => "small-order-key",
        ChannelError::Replay => "replay",
        ChannelError::SequenceExhausted => "seq-exhausted",
        ChannelError::BadTranscript => "transcript",
    }
}

/// A component's channel identity: its certificate chain and signing key.
#[derive(Debug, Clone)]
pub struct Identity {
    chain: Vec<Certificate>,
    key: SigningKey,
}

impl Identity {
    /// Creates an identity.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is empty — an identity must at least carry its
    /// own end-entity certificate.
    #[must_use]
    pub fn new(chain: Vec<Certificate>, key: SigningKey) -> Self {
        assert!(!chain.is_empty(), "identity requires a certificate chain");
        Identity { chain, key }
    }

    /// The component id from the end-entity certificate.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.chain[0].subject.id
    }
}

/// Validation policy for peer credentials.
#[derive(Debug, Clone)]
pub struct HandshakePolicy {
    store: TrustStore,
    crls: Vec<CertificateRevocationList>,
    /// Worksite time used for validity checks.
    pub now: u64,
    recorder: Recorder,
}

impl HandshakePolicy {
    /// Creates a policy with no CRLs.
    #[must_use]
    pub fn new(store: TrustStore, now: u64) -> Self {
        HandshakePolicy {
            store,
            crls: Vec::new(),
            now,
            recorder: Recorder::disabled(),
        }
    }

    /// Adds revocation lists to enforce.
    #[must_use]
    pub fn with_crls(mut self, crls: Vec<CertificateRevocationList>) -> Self {
        self.crls = crls;
        self
    }

    /// Attaches a telemetry recorder; handshakes run under this policy
    /// then emit `HandshakeStart`/`HandshakeDone`/`HandshakeFail` events.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Validates the peer's chain. Repeated handshakes against the same
    /// chain/CRL state within one cache bucket hit the trust store's
    /// verified-chain cache and skip the signature work entirely; cold
    /// validations batch the chain's signatures through one Straus pass.
    fn validate_peer(&self, chain: &[Certificate]) -> Result<(), ChannelError> {
        self.store
            .validate_chain_for_usage(chain, self.now, &self.crls, KeyUsage::AUTHENTICATION)
            .map_err(ChannelError::from)
    }
}

fn transcript_hash(hello_bytes: &[u8], reply_signed_part: &[u8]) -> [u8; 32] {
    let mut h = sha256::Sha256::new();
    h.update(b"silvasec-hs-v1");
    h.update(&(hello_bytes.len() as u64).to_le_bytes());
    h.update(hello_bytes);
    h.update(reply_signed_part);
    h.finalize()
}

fn signing_payload(domain: &[u8], transcript: &[u8; 32]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(64);
    msg.extend_from_slice(domain);
    msg.extend_from_slice(transcript);
    msg.to_vec()
}

fn derive_keys(
    shared: &[u8; 32],
    nonce_i: &[u8; 32],
    nonce_r: &[u8; 32],
    transcript: &[u8; 32],
) -> ([u8; 32], [u8; 32]) {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(nonce_i);
    salt.extend_from_slice(nonce_r);
    let prk = hkdf::extract(&salt, shared);

    let mut info_i2r = b"silvasec-i2r".to_vec();
    info_i2r.extend_from_slice(transcript);
    let mut info_r2i = b"silvasec-r2i".to_vec();
    info_r2i.extend_from_slice(transcript);

    let mut k_i2r = [0u8; 32];
    let mut k_r2i = [0u8; 32];
    hkdf::expand(&prk, &info_i2r, &mut k_i2r);
    hkdf::expand(&prk, &info_r2i, &mut k_r2i);
    (k_i2r, k_r2i)
}

fn dh_checked(private: &[u8; 32], peer_pub: &[u8; 32]) -> Result<[u8; 32], ChannelError> {
    let shared = x25519::diffie_hellman(private, peer_pub);
    if shared == [0u8; 32] {
        return Err(ChannelError::SmallOrderKey);
    }
    Ok(shared)
}

/// The initiator side of a handshake in progress.
#[derive(Debug)]
pub struct Initiator {
    identity: Identity,
    eph_priv: [u8; 32],
    hello_bytes: Vec<u8>,
}

impl Initiator {
    /// Starts a handshake; returns the state machine and the encoded
    /// `Hello` to transmit.
    #[must_use]
    pub fn start(identity: Identity, eph_seed: [u8; 32], nonce: [u8; 32]) -> (Initiator, Vec<u8>) {
        let (eph_priv, eph_pub) = x25519::keypair(&eph_seed);
        let hello = Hello {
            eph_pub,
            nonce,
            chain: identity.chain.clone(),
        };
        let hello_bytes = hello.encode();
        let wire = hello_bytes.clone();
        (
            Initiator {
                identity,
                eph_priv,
                hello_bytes,
            },
            wire,
        )
    }

    /// Processes the responder's `Reply`; returns the established session
    /// and the encoded `Finished` to transmit.
    ///
    /// # Errors
    ///
    /// Any [`ChannelError`]: decode failures, peer certificate rejection,
    /// transcript signature mismatch, or small-order key injection.
    pub fn finish(
        self,
        policy: &HandshakePolicy,
        reply_bytes: &[u8],
    ) -> Result<(Session, Vec<u8>), ChannelError> {
        match self.finish_inner(policy, reply_bytes) {
            Ok((session, finished)) => {
                policy.recorder.record(Event::HandshakeDone {
                    peer: Label::new(session.peer_id()),
                });
                Ok((session, finished))
            }
            Err(e) => {
                policy.recorder.record(Event::HandshakeFail {
                    reason: Label::new(error_reason(&e)),
                });
                Err(e)
            }
        }
    }

    fn finish_inner(
        self,
        policy: &HandshakePolicy,
        reply_bytes: &[u8],
    ) -> Result<(Session, Vec<u8>), ChannelError> {
        let reply = Reply::decode(reply_bytes)?;
        policy.validate_peer(&reply.chain)?;

        let transcript = transcript_hash(&self.hello_bytes, &reply.signed_part());

        // Verify the responder's transcript signature with its certified key.
        let responder_key = reply.chain[0].subject_key()?;
        let sig =
            Signature::from_bytes(&reply.signature).map_err(|_| ChannelError::BadTranscript)?;
        responder_key
            .verify(&signing_payload(b"silvasec-resp", &transcript), &sig)
            .map_err(|_| ChannelError::BadTranscript)?;

        let shared = dh_checked(&self.eph_priv, &reply.eph_pub)?;
        let hello = Hello::decode(&self.hello_bytes).expect("own hello re-decodes");
        let (k_i2r, k_r2i) = derive_keys(&shared, &hello.nonce, &reply.nonce, &transcript);

        let finished_sig = self
            .identity
            .key
            .sign(&signing_payload(b"silvasec-init", &transcript));
        let finished = Finished {
            signature: finished_sig.to_bytes().to_vec(),
        }
        .encode();

        let session = Session::new(
            SessionKeys {
                send_key: k_i2r,
                recv_key: k_r2i,
            },
            reply.chain[0].subject.id.clone(),
        );
        Ok((session, finished))
    }
}

/// The responder side of a handshake in progress.
#[derive(Debug)]
pub struct Responder {
    transcript: [u8; 32],
    initiator_chain: Vec<Certificate>,
    keys: SessionKeys,
    recorder: Recorder,
}

impl Responder {
    /// Processes a `Hello`; returns the state machine and the encoded
    /// `Reply` to transmit.
    ///
    /// # Errors
    ///
    /// Any [`ChannelError`]: decode failures, peer certificate rejection,
    /// or small-order key injection.
    pub fn respond(
        identity: Identity,
        policy: &HandshakePolicy,
        hello_bytes: &[u8],
        eph_seed: [u8; 32],
        nonce: [u8; 32],
    ) -> Result<(Responder, Vec<u8>), ChannelError> {
        match Self::respond_inner(identity, policy, hello_bytes, eph_seed, nonce) {
            Ok(ok) => Ok(ok),
            Err(e) => {
                policy.recorder.record(Event::HandshakeFail {
                    reason: Label::new(error_reason(&e)),
                });
                Err(e)
            }
        }
    }

    fn respond_inner(
        identity: Identity,
        policy: &HandshakePolicy,
        hello_bytes: &[u8],
        eph_seed: [u8; 32],
        nonce: [u8; 32],
    ) -> Result<(Responder, Vec<u8>), ChannelError> {
        let hello = Hello::decode(hello_bytes)?;
        if let Some(cert) = hello.chain.first() {
            policy.recorder.record(Event::HandshakeStart {
                peer: Label::new(&cert.subject.id),
            });
        }
        policy.validate_peer(&hello.chain)?;

        let (eph_priv, eph_pub) = x25519::keypair(&eph_seed);
        let shared = dh_checked(&eph_priv, &hello.eph_pub)?;

        let mut reply = Reply {
            eph_pub,
            nonce,
            chain: identity.chain.clone(),
            signature: Vec::new(),
        };
        let transcript = transcript_hash(hello_bytes, &reply.signed_part());
        reply.signature = identity
            .key
            .sign(&signing_payload(b"silvasec-resp", &transcript))
            .to_bytes()
            .to_vec();

        let (k_i2r, k_r2i) = derive_keys(&shared, &hello.nonce, &reply.nonce, &transcript);

        Ok((
            Responder {
                transcript,
                initiator_chain: hello.chain,
                keys: SessionKeys {
                    send_key: k_r2i,
                    recv_key: k_i2r,
                },
                recorder: policy.recorder.clone(),
            },
            reply.encode(),
        ))
    }

    /// Processes the initiator's `Finished`; returns the established
    /// session.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadTranscript`] when the initiator's signature
    /// does not verify, or [`ChannelError::Decode`] for malformed input.
    pub fn complete(self, finished_bytes: &[u8]) -> Result<Session, ChannelError> {
        let recorder = self.recorder.clone();
        match self.complete_inner(finished_bytes) {
            Ok(session) => {
                recorder.record(Event::HandshakeDone {
                    peer: Label::new(session.peer_id()),
                });
                Ok(session)
            }
            Err(e) => {
                recorder.record(Event::HandshakeFail {
                    reason: Label::new(error_reason(&e)),
                });
                Err(e)
            }
        }
    }

    fn complete_inner(self, finished_bytes: &[u8]) -> Result<Session, ChannelError> {
        let finished = Finished::decode(finished_bytes)?;
        let initiator_key = self.initiator_chain[0].subject_key()?;
        let sig =
            Signature::from_bytes(&finished.signature).map_err(|_| ChannelError::BadTranscript)?;
        initiator_key
            .verify(&signing_payload(b"silvasec-init", &self.transcript), &sig)
            .map_err(|_| ChannelError::BadTranscript)?;
        Ok(Session::new(
            self.keys,
            self.initiator_chain[0].subject.id.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_pki::prelude::*;

    struct Pki {
        root: CertificateAuthority,
        store: TrustStore,
    }

    fn pki() -> Pki {
        let root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 100_000));
        let store = TrustStore::with_roots([root.certificate().clone()]);
        Pki { root, store }
    }

    fn identity(p: &mut Pki, id: &str, role: ComponentRole, seed: u8) -> Identity {
        let key = SigningKey::from_seed(&[seed; 32]);
        let cert = p.root.issue_mut(
            &Subject::new(id, role),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 50_000),
        );
        Identity::new(vec![cert], key)
    }

    fn run_handshake(
        policy: &HandshakePolicy,
        init_id: Identity,
        resp_id: Identity,
    ) -> (Session, Session) {
        let (init, hello) = Initiator::start(init_id, [10u8; 32], [11u8; 32]);
        let (resp, reply) =
            Responder::respond(resp_id, policy, &hello, [12u8; 32], [13u8; 32]).unwrap();
        let (s_i, finished) = init.finish(policy, &reply).unwrap();
        let s_r = resp.complete(&finished).unwrap();
        (s_i, s_r)
    }

    #[test]
    fn full_handshake_and_traffic() {
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);
        let policy = HandshakePolicy::new(p.store.clone(), 100);
        let (mut si, mut sr) = run_handshake(&policy, fw, bs);
        assert_eq!(si.peer_id(), "bs-01");
        assert_eq!(sr.peer_id(), "fw-01");
        let rec = si.seal(b"telemetry").unwrap();
        assert_eq!(sr.open(&rec).unwrap(), b"telemetry");
        let rec = sr.seal(b"ack").unwrap();
        assert_eq!(si.open(&rec).unwrap(), b"ack");
    }

    #[test]
    fn uncertified_peer_rejected() {
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        // Rogue with a self-made root the store does not trust.
        let mut rogue_root =
            CertificateAuthority::new_root("rogue-root", &[9u8; 32], Validity::new(0, 100_000));
        let rogue_key = SigningKey::from_seed(&[8u8; 32]);
        let rogue_cert = rogue_root.issue_mut(
            &Subject::new("rogue-01", ComponentRole::Sensor),
            &rogue_key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 50_000),
        );
        let rogue = Identity::new(vec![rogue_cert], rogue_key);
        let policy = HandshakePolicy::new(p.store.clone(), 100);

        // Rogue as initiator: responder rejects the hello.
        let (_, hello) = Initiator::start(rogue.clone(), [10u8; 32], [11u8; 32]);
        assert!(matches!(
            Responder::respond(fw.clone(), &policy, &hello, [12u8; 32], [13u8; 32]),
            Err(ChannelError::Pki(_))
        ));

        // Rogue as responder: initiator rejects the reply.
        let (init, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
        let rogue_policy = HandshakePolicy::new(
            TrustStore::with_roots([rogue_root.certificate().clone()]),
            100,
        );
        // The rogue responder *can* answer (it does not validate us here
        // with the rogue policy trusting the real root? use permissive
        // policy trusting both to isolate the initiator-side check).
        let mut both = TrustStore::with_roots([rogue_root.certificate().clone()]);
        both.add_root(p.root.certificate().clone()).unwrap();
        let permissive = HandshakePolicy::new(both, 100);
        let (_, reply) =
            Responder::respond(rogue, &permissive, &hello, [12u8; 32], [13u8; 32]).unwrap();
        assert!(matches!(
            init.finish(&policy, &reply),
            Err(ChannelError::Pki(_))
        ));
        let _ = rogue_policy;
    }

    #[test]
    fn revoked_peer_rejected() {
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);
        // Revoke the forwarder's certificate (serial 1).
        p.root.revoke(1, 10);
        let crl = p.root.sign_crl(20);
        let policy = HandshakePolicy::new(p.store.clone(), 100).with_crls(vec![crl]);
        let (_, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
        assert!(matches!(
            Responder::respond(bs, &policy, &hello, [12u8; 32], [13u8; 32]),
            Err(ChannelError::Pki(PkiError::Revoked { .. }))
        ));
    }

    #[test]
    fn expired_peer_rejected() {
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);
        let policy = HandshakePolicy::new(p.store.clone(), 60_000); // past not_after
        let (_, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
        assert!(matches!(
            Responder::respond(bs, &policy, &hello, [12u8; 32], [13u8; 32]),
            Err(ChannelError::Pki(PkiError::Expired { .. }))
        ));
    }

    #[test]
    fn mitm_key_substitution_detected() {
        // An attacker intercepts the reply and swaps the ephemeral key.
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);
        let policy = HandshakePolicy::new(p.store.clone(), 100);
        let (init, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
        let (_, reply_bytes) =
            Responder::respond(bs, &policy, &hello, [12u8; 32], [13u8; 32]).unwrap();
        let mut reply = Reply::decode(&reply_bytes).unwrap();
        let (_, attacker_pub) = x25519::keypair(&[66u8; 32]);
        reply.eph_pub = attacker_pub;
        assert_eq!(
            init.finish(&policy, &reply.encode()).unwrap_err(),
            ChannelError::BadTranscript
        );
    }

    #[test]
    fn small_order_key_rejected() {
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);
        let policy = HandshakePolicy::new(p.store.clone(), 100);
        // Hello with an all-zero (small-order) ephemeral key.
        let (_, hello_bytes) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
        let mut hello = Hello::decode(&hello_bytes).unwrap();
        hello.eph_pub = [0u8; 32];
        assert_eq!(
            Responder::respond(bs, &policy, &hello.encode(), [12u8; 32], [13u8; 32]).unwrap_err(),
            ChannelError::SmallOrderKey
        );
    }

    #[test]
    fn forged_finished_rejected() {
        let mut p = pki();
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);
        let policy = HandshakePolicy::new(p.store.clone(), 100);
        let (init, hello) = Initiator::start(fw, [10u8; 32], [11u8; 32]);
        let (resp, reply) =
            Responder::respond(bs, &policy, &hello, [12u8; 32], [13u8; 32]).unwrap();
        let (_, finished) = init.finish(&policy, &reply).unwrap();
        let mut bad = finished.clone();
        let n = bad.len();
        bad[n / 2] ^= 0x10;
        assert_eq!(
            resp.complete(&bad).unwrap_err(),
            ChannelError::BadTranscript
        );
    }

    #[test]
    fn sessions_differ_across_handshakes() {
        let mut p = pki();
        let policy = HandshakePolicy::new(p.store.clone(), 100);
        let fw = identity(&mut p, "fw-01", ComponentRole::Forwarder, 2);
        let bs = identity(&mut p, "bs-01", ComponentRole::BaseStation, 3);

        let (mut s1, _) = run_handshake(&policy, fw.clone(), bs.clone());
        // Different ephemeral seeds → different keys.
        let (init, hello) = Initiator::start(fw, [20u8; 32], [21u8; 32]);
        let (resp, reply) =
            Responder::respond(bs, &policy, &hello, [22u8; 32], [23u8; 32]).unwrap();
        let (_, finished) = init.finish(&policy, &reply).unwrap();
        let mut s2r = resp.complete(&finished).unwrap();

        let rec = s1.seal(b"cross").unwrap();
        assert!(
            s2r.open(&rec).is_err(),
            "records must not decrypt across sessions"
        );
    }
}
