//! Error type for the secure channel.

use silvasec_crypto::CryptoError;
use silvasec_pki::PkiError;
use std::error::Error;
use std::fmt;

/// An error produced by handshake or record-layer processing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChannelError {
    /// Peer certificate chain failed validation.
    Pki(PkiError),
    /// A signature, tag or key operation failed.
    Crypto(CryptoError),
    /// A handshake or record message could not be decoded.
    Decode,
    /// The peer's ephemeral key produced an all-zero shared secret
    /// (small-order point injection).
    SmallOrderKey,
    /// A record's sequence number was already seen or too old.
    Replay,
    /// The record layer exhausted its sequence space; rekey required.
    SequenceExhausted,
    /// The handshake transcript signature did not match.
    BadTranscript,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Pki(e) => write!(f, "peer certificate rejected: {e}"),
            ChannelError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            ChannelError::Decode => write!(f, "malformed channel message"),
            ChannelError::SmallOrderKey => write!(f, "peer supplied a small-order key"),
            ChannelError::Replay => write!(f, "replayed or stale record"),
            ChannelError::SequenceExhausted => write!(f, "record sequence space exhausted"),
            ChannelError::BadTranscript => write!(f, "handshake transcript signature mismatch"),
        }
    }
}

impl Error for ChannelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChannelError::Pki(e) => Some(e),
            ChannelError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PkiError> for ChannelError {
    fn from(e: PkiError) -> Self {
        ChannelError::Pki(e)
    }
}

impl From<CryptoError> for ChannelError {
    fn from(e: CryptoError) -> Self {
        ChannelError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ChannelError::Pki(PkiError::EmptyChain);
        assert!(e.to_string().contains("certificate"));
        assert!(e.source().is_some());
        assert!(ChannelError::Replay.source().is_none());
    }

    #[test]
    fn conversions() {
        let _: ChannelError = PkiError::EmptyChain.into();
        let _: ChannelError = CryptoError::VerificationFailed.into();
    }
}
