//! A TLS-like mutually-authenticated secure channel for worksite links.
//!
//! The paper (via IEC TS 63074 and Chattopadhyay & Lam) prescribes
//! identification & authentication, integrity and confidentiality for the
//! communication of safety-related machinery. This crate implements the
//! concrete mechanism: a SIGMA-style handshake — X25519 ephemeral key
//! agreement authenticated by certificate signatures — keying a
//! ChaCha20-Poly1305 record layer with replay protection and rekeying.
//!
//! * [`messages`] — compact wire encodings of the handshake messages.
//! * [`handshake`] — the initiator/responder handshake state machines.
//! * [`session`] — the AEAD record layer ([`session::Session`]).
//! * [`replay`] — the sliding-window replay filter.
//!
//! # Handshake shape
//!
//! ```text
//! I → R:  Hello    { eph_pub_i, nonce_i, cert_chain_i }
//! R → I:  Reply    { eph_pub_r, nonce_r, cert_chain_r, sig_r(transcript) }
//! I → R:  Finished { sig_i(transcript) }
//! ```
//!
//! Both sides derive directional AEAD keys with HKDF over the X25519
//! shared secret bound to both nonces and both certificates.
//!
//! # Example
//!
//! ```
//! use silvasec_channel::prelude::*;
//! use silvasec_pki::prelude::*;
//! use silvasec_crypto::schnorr::SigningKey;
//!
//! // Worksite PKI.
//! let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1_000_000));
//! let store = TrustStore::with_roots([root.certificate().clone()]);
//! let make_identity = |id: &str, role, seed: [u8; 32], root: &mut CertificateAuthority| {
//!     let key = SigningKey::from_seed(&seed);
//!     let cert = root.issue_mut(&Subject::new(id, role), &key.verifying_key(),
//!         KeyUsage::AUTHENTICATION, Validity::new(0, 500_000));
//!     Identity::new(vec![cert], key)
//! };
//! let fw = make_identity("forwarder-01", ComponentRole::Forwarder, [2u8; 32], &mut root);
//! let bs = make_identity("base-01", ComponentRole::BaseStation, [3u8; 32], &mut root);
//!
//! // Handshake.
//! let policy = HandshakePolicy::new(store, 100);
//! let (mut init, hello) = Initiator::start(fw, [4u8; 32], [5u8; 32]);
//! let (mut resp, reply) = Responder::respond(bs, &policy, &hello, [6u8; 32], [7u8; 32]).unwrap();
//! let (mut session_i, finished) = init.finish(&policy, &reply).unwrap();
//! let mut session_r = resp.complete(&finished).unwrap();
//!
//! // Authenticated traffic.
//! let record = session_i.seal(b"emergency stop").unwrap();
//! assert_eq!(session_r.open(&record).unwrap(), b"emergency stop");
//! assert_eq!(session_r.peer_id(), "forwarder-01");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod handshake;
pub mod messages;
pub mod replay;
pub mod session;

pub use error::ChannelError;
pub use handshake::{HandshakePolicy, Identity, Initiator, Responder};
pub use session::{Session, SessionKeys};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::error::ChannelError;
    pub use crate::handshake::{HandshakePolicy, Identity, Initiator, Responder};
    pub use crate::replay::ReplayWindow;
    pub use crate::session::{Session, SessionKeys};
}
