//! Compact wire encodings of the handshake messages.
//!
//! Encodings are length-prefixed and injective; the handshake transcript
//! hashes the exact wire bytes.

use crate::error::ChannelError;
use silvasec_pki::Certificate;

/// Message type tags.
const TAG_HELLO: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_FINISHED: u8 = 3;

/// The initiator's first message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Initiator's ephemeral X25519 public key.
    pub eph_pub: [u8; 32],
    /// Initiator's handshake nonce.
    pub nonce: [u8; 32],
    /// Initiator's certificate chain (end entity first).
    pub chain: Vec<Certificate>,
}

/// The responder's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Responder's ephemeral X25519 public key.
    pub eph_pub: [u8; 32],
    /// Responder's handshake nonce.
    pub nonce: [u8; 32],
    /// Responder's certificate chain (end entity first).
    pub chain: Vec<Certificate>,
    /// Responder's signature over the transcript so far.
    pub signature: Vec<u8>,
}

/// The initiator's final message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finished {
    /// Initiator's signature over the full transcript.
    pub signature: Vec<u8>,
}

fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn read_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], ChannelError> {
    if input.len() < 4 {
        return Err(ChannelError::Decode);
    }
    let len = u32::from_le_bytes(input[..4].try_into().expect("4 bytes")) as usize;
    *input = &input[4..];
    if input.len() < len {
        return Err(ChannelError::Decode);
    }
    let (head, tail) = input.split_at(len);
    *input = tail;
    Ok(head)
}

fn read_array<const N: usize>(input: &mut &[u8]) -> Result<[u8; N], ChannelError> {
    let bytes = read_bytes(input)?;
    bytes.try_into().map_err(|_| ChannelError::Decode)
}

fn encode_chain(out: &mut Vec<u8>, chain: &[Certificate]) {
    out.extend_from_slice(&(chain.len() as u32).to_le_bytes());
    for cert in chain {
        // Certificates serialize via their canonical TBS bytes + signature.
        push_bytes(out, &cert.tbs_bytes());
        push_bytes(out, &cert.signature);
        // TBS is not invertible without the schema, so also carry the
        // fields we need for reconstruction in a stable, simple form.
        push_bytes(out, cert.subject.id.as_bytes());
        push_bytes(out, &serde_encode_role(cert));
        push_bytes(out, cert.issuer_id.as_bytes());
        out.extend_from_slice(&cert.serial.to_le_bytes());
        out.extend_from_slice(&cert.validity.not_before.to_le_bytes());
        out.extend_from_slice(&cert.validity.not_after.to_le_bytes());
        out.push(cert.key_usage.bits());
        push_bytes(out, &cert.public_key);
    }
}

fn serde_encode_role(cert: &Certificate) -> Vec<u8> {
    // Roles encode as their display string; decode matches on it.
    format!("{}", cert.subject.role).into_bytes()
}

fn decode_role(bytes: &[u8]) -> Result<silvasec_pki::ComponentRole, ChannelError> {
    use silvasec_pki::ComponentRole as R;
    let s = std::str::from_utf8(bytes).map_err(|_| ChannelError::Decode)?;
    Ok(match s {
        "authority" => R::Authority,
        "forwarder" => R::Forwarder,
        "harvester" => R::Harvester,
        "drone" => R::Drone,
        "base-station" => R::BaseStation,
        "sensor" => R::Sensor,
        "operator-terminal" => R::OperatorTerminal,
        "firmware-signer" => R::FirmwareSigner,
        _ => return Err(ChannelError::Decode),
    })
}

fn decode_chain(input: &mut &[u8]) -> Result<Vec<Certificate>, ChannelError> {
    if input.len() < 4 {
        return Err(ChannelError::Decode);
    }
    let count = u32::from_le_bytes(input[..4].try_into().expect("4 bytes")) as usize;
    *input = &input[4..];
    if count > 16 {
        return Err(ChannelError::Decode);
    }
    let mut chain = Vec::with_capacity(count);
    for _ in 0..count {
        let tbs = read_bytes(input)?.to_vec();
        let signature = read_bytes(input)?.to_vec();
        let subject_id =
            String::from_utf8(read_bytes(input)?.to_vec()).map_err(|_| ChannelError::Decode)?;
        let role = decode_role(read_bytes(input)?)?;
        let issuer_id =
            String::from_utf8(read_bytes(input)?.to_vec()).map_err(|_| ChannelError::Decode)?;
        if input.len() < 25 {
            return Err(ChannelError::Decode);
        }
        let serial = u64::from_le_bytes(input[..8].try_into().expect("8"));
        let not_before = u64::from_le_bytes(input[8..16].try_into().expect("8"));
        let not_after = u64::from_le_bytes(input[16..24].try_into().expect("8"));
        let usage_bits = input[24];
        *input = &input[25..];
        let public_key = read_bytes(input)?.to_vec();
        if not_after < not_before {
            return Err(ChannelError::Decode);
        }
        let cert = Certificate {
            subject: silvasec_pki::Subject::new(subject_id, role),
            issuer_id,
            serial,
            validity: silvasec_pki::Validity::new(not_before, not_after),
            key_usage: silvasec_pki::KeyUsage::from_bits(usage_bits),
            public_key,
            signature,
        };
        // Consistency: reconstructed TBS must equal the carried TBS, or
        // someone is playing encoding games.
        if cert.tbs_bytes() != tbs {
            return Err(ChannelError::Decode);
        }
        chain.push(cert);
    }
    Ok(chain)
}

impl Hello {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![TAG_HELLO];
        push_bytes(&mut out, &self.eph_pub);
        push_bytes(&mut out, &self.nonce);
        encode_chain(&mut out, &self.chain);
        out
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Decode`] on any structural problem.
    pub fn decode(bytes: &[u8]) -> Result<Self, ChannelError> {
        let mut input = bytes;
        if input.first() != Some(&TAG_HELLO) {
            return Err(ChannelError::Decode);
        }
        input = &input[1..];
        let eph_pub = read_array::<32>(&mut input)?;
        let nonce = read_array::<32>(&mut input)?;
        let chain = decode_chain(&mut input)?;
        if !input.is_empty() {
            return Err(ChannelError::Decode);
        }
        Ok(Hello {
            eph_pub,
            nonce,
            chain,
        })
    }
}

impl Reply {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![TAG_REPLY];
        push_bytes(&mut out, &self.eph_pub);
        push_bytes(&mut out, &self.nonce);
        encode_chain(&mut out, &self.chain);
        push_bytes(&mut out, &self.signature);
        out
    }

    /// The bytes covered by the responder's signature (everything before
    /// the signature field), used to build the transcript.
    #[must_use]
    pub fn signed_part(&self) -> Vec<u8> {
        let mut out = vec![TAG_REPLY];
        push_bytes(&mut out, &self.eph_pub);
        push_bytes(&mut out, &self.nonce);
        encode_chain(&mut out, &self.chain);
        out
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Decode`] on any structural problem.
    pub fn decode(bytes: &[u8]) -> Result<Self, ChannelError> {
        let mut input = bytes;
        if input.first() != Some(&TAG_REPLY) {
            return Err(ChannelError::Decode);
        }
        input = &input[1..];
        let eph_pub = read_array::<32>(&mut input)?;
        let nonce = read_array::<32>(&mut input)?;
        let chain = decode_chain(&mut input)?;
        let signature = read_bytes(&mut input)?.to_vec();
        if !input.is_empty() {
            return Err(ChannelError::Decode);
        }
        Ok(Reply {
            eph_pub,
            nonce,
            chain,
            signature,
        })
    }
}

impl Finished {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![TAG_FINISHED];
        push_bytes(&mut out, &self.signature);
        out
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Decode`] on any structural problem.
    pub fn decode(bytes: &[u8]) -> Result<Self, ChannelError> {
        let mut input = bytes;
        if input.first() != Some(&TAG_FINISHED) {
            return Err(ChannelError::Decode);
        }
        input = &input[1..];
        let signature = read_bytes(&mut input)?.to_vec();
        if !input.is_empty() {
            return Err(ChannelError::Decode);
        }
        Ok(Finished { signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_crypto::schnorr::SigningKey;
    use silvasec_pki::prelude::*;

    fn chain() -> Vec<Certificate> {
        let mut root = CertificateAuthority::new_root("root", &[1u8; 32], Validity::new(0, 1000));
        let key = SigningKey::from_seed(&[2u8; 32]);
        vec![root.issue_mut(
            &Subject::new("fw-01", ComponentRole::Forwarder),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION,
            Validity::new(0, 500),
        )]
    }

    #[test]
    fn hello_roundtrip() {
        let h = Hello {
            eph_pub: [7u8; 32],
            nonce: [8u8; 32],
            chain: chain(),
        };
        let decoded = Hello::decode(&h.encode()).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn reply_roundtrip_and_signed_part() {
        let r = Reply {
            eph_pub: [7u8; 32],
            nonce: [8u8; 32],
            chain: chain(),
            signature: vec![9u8; 96],
        };
        let decoded = Reply::decode(&r.encode()).unwrap();
        assert_eq!(decoded, r);
        // signed_part is the encoding minus the trailing signature field.
        let enc = r.encode();
        let sp = r.signed_part();
        assert!(enc.starts_with(&sp));
        assert_eq!(enc.len(), sp.len() + 4 + 96);
    }

    #[test]
    fn finished_roundtrip() {
        let f = Finished {
            signature: vec![1u8; 96],
        };
        assert_eq!(Finished::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn truncation_rejected() {
        let h = Hello {
            eph_pub: [7u8; 32],
            nonce: [8u8; 32],
            chain: chain(),
        };
        let enc = h.encode();
        for cut in [0, 1, 5, enc.len() / 2, enc.len() - 1] {
            assert_eq!(
                Hello::decode(&enc[..cut]),
                Err(ChannelError::Decode),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let f = Finished {
            signature: vec![1u8; 96],
        };
        let mut enc = f.encode();
        enc.push(0);
        assert_eq!(Finished::decode(&enc), Err(ChannelError::Decode));
    }

    #[test]
    fn wrong_tag_rejected() {
        let h = Hello {
            eph_pub: [7u8; 32],
            nonce: [8u8; 32],
            chain: chain(),
        };
        let enc = h.encode();
        assert!(Reply::decode(&enc).is_err());
        assert!(Finished::decode(&enc).is_err());
    }

    #[test]
    fn tampered_cert_field_rejected_by_consistency_check() {
        let h = Hello {
            eph_pub: [7u8; 32],
            nonce: [8u8; 32],
            chain: chain(),
        };
        let mut enc = h.encode();
        // Flip a byte inside the serial (near the end, before public key).
        let n = enc.len();
        enc[n - 80] ^= 0x01;
        // Either decodes to a different-but-consistent message or errors;
        // it must never decode back to the original.
        match Hello::decode(&enc) {
            Ok(decoded) => assert_ne!(decoded, h),
            Err(e) => assert_eq!(e, ChannelError::Decode),
        }
    }

    #[test]
    fn oversized_chain_count_rejected() {
        let mut out = vec![1u8]; // TAG_HELLO
        push_bytes(&mut out, &[0u8; 32]);
        push_bytes(&mut out, &[0u8; 32]);
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Hello::decode(&out), Err(ChannelError::Decode));
    }
}
