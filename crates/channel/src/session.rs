//! The AEAD record layer.

use crate::error::ChannelError;
use crate::replay::ReplayWindow;
use silvasec_crypto::aead::ChaCha20Poly1305;
use silvasec_crypto::hkdf;
use silvasec_crypto::poly1305::TAG_LEN;
use silvasec_telemetry::{Event, Label, Recorder};

/// Records carry an 8-byte sequence number header before the ciphertext.
pub const RECORD_HEADER_LEN: usize = 8;
/// Total per-record overhead (header + AEAD tag).
pub const RECORD_OVERHEAD: usize = RECORD_HEADER_LEN + 16;

/// Directional keys derived by the handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Key for records this side sends.
    pub send_key: [u8; 32],
    /// Key for records this side receives.
    pub recv_key: [u8; 32],
}

/// An established secure session (one side).
///
/// Sealing stamps a strictly increasing sequence number (the AEAD nonce),
/// opening verifies the tag and enforces the replay window. [`Session::rekey`]
/// ratchets both directions via HKDF; both sides must rekey in lockstep.
#[derive(Debug)]
pub struct Session {
    send: ChaCha20Poly1305,
    recv: ChaCha20Poly1305,
    keys: SessionKeys,
    send_seq: u64,
    replay: ReplayWindow,
    peer_id: String,
    epoch: u32,
    recorder: Recorder,
}

impl Session {
    /// Builds a session from handshake-derived keys and the authenticated
    /// peer identity.
    #[must_use]
    pub fn new(keys: SessionKeys, peer_id: String) -> Self {
        Session {
            send: ChaCha20Poly1305::new(&keys.send_key),
            recv: ChaCha20Poly1305::new(&keys.recv_key),
            keys,
            send_seq: 0,
            replay: ReplayWindow::new(),
            peer_id,
            epoch: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder; failed opens are then mirrored as
    /// `AuthFail` events and rekeys as `Custom { key: "rekey-epoch" }`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The authenticated identity of the peer.
    #[must_use]
    pub fn peer_id(&self) -> &str {
        &self.peer_id
    }

    /// The directional keys currently in use (the handshake-derived
    /// epoch-0 keys for a session that has never rekeyed). An amortized
    /// provisioning layer snapshots these right after the handshake so
    /// later episodes can rebuild the session without re-running it.
    #[must_use]
    pub fn keys(&self) -> &SessionKeys {
        &self.keys
    }

    /// Reinitializes this session in place to exactly the state
    /// [`Session::new`]`(keys, peer_id)` would produce: epoch 0,
    /// sequence 0, fresh replay window, recorder detached. The peer-id
    /// string buffer is reused, so resetting to the same peer allocates
    /// nothing — the episode-reset fast path.
    pub fn reinit(&mut self, keys: &SessionKeys, peer_id: &str) {
        self.send = ChaCha20Poly1305::new(&keys.send_key);
        self.recv = ChaCha20Poly1305::new(&keys.recv_key);
        self.keys = keys.clone();
        self.send_seq = 0;
        self.replay = ReplayWindow::new();
        self.peer_id.clear();
        self.peer_id.push_str(peer_id);
        self.epoch = 0;
        self.recorder = Recorder::disabled();
    }

    /// The current rekey epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of records sealed in this epoch.
    #[must_use]
    pub fn records_sent(&self) -> u64 {
        self.send_seq
    }

    fn nonce_for(seq: u64, epoch: u32) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&seq.to_le_bytes());
        nonce[8..].copy_from_slice(&epoch.to_le_bytes());
        nonce
    }

    /// Encrypts `plaintext` into a record.
    ///
    /// Allocates a fresh record each call; steady-state senders should
    /// reuse a buffer via [`Session::seal_into`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::SequenceExhausted`] when the epoch's
    /// sequence space is spent (rekey first).
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let mut out = Vec::new();
        self.seal_into(plaintext, &mut out)?;
        Ok(out)
    }

    /// Encrypts `plaintext` into a record written to `out` (cleared
    /// first). Reserves exactly `plaintext.len()` + [`RECORD_OVERHEAD`]
    /// bytes, so a caller that reuses a warm buffer of steady record
    /// size allocates zero times per record; encryption and MAC run as
    /// one in-place sweep over the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::SequenceExhausted`] when the epoch's
    /// sequence space is spent (rekey first). `out` is left cleared.
    pub fn seal_into(&mut self, plaintext: &[u8], out: &mut Vec<u8>) -> Result<(), ChannelError> {
        out.clear();
        if self.send_seq == u64::MAX {
            return Err(ChannelError::SequenceExhausted);
        }
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = Self::nonce_for(seq, self.epoch);
        let header = seq.to_le_bytes();
        out.reserve_exact(RECORD_OVERHEAD + plaintext.len());
        out.extend_from_slice(&header);
        out.extend_from_slice(plaintext);
        let tag = self
            .send
            .seal_detached(&nonce, &header, &mut out[RECORD_HEADER_LEN..]);
        out.extend_from_slice(&tag);
        Ok(())
    }

    /// Decrypts and verifies a record.
    ///
    /// Allocates a fresh plaintext each call; steady-state receivers
    /// should reuse a buffer via [`Session::open_into`] instead.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Decode`] for malformed records,
    /// [`ChannelError::Crypto`] for tag failures, and
    /// [`ChannelError::Replay`] for replayed/stale sequence numbers. The
    /// replay window only advances on successfully authenticated records.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let mut out = Vec::new();
        self.open_into(record, &mut out)?;
        Ok(out)
    }

    /// Decrypts and verifies a record into `out` (cleared first), with
    /// the same one-sweep decrypt-and-verify and exact reservation as
    /// [`Session::seal_into`] — zero allocations per record once the
    /// buffer is warm.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::open`]; on any error `out` comes back
    /// empty (a forged record's speculative plaintext is zeroed before
    /// return).
    pub fn open_into(&mut self, record: &[u8], out: &mut Vec<u8>) -> Result<(), ChannelError> {
        match self.open_into_inner(record, out) {
            Ok(()) => Ok(()),
            Err(e) => {
                out.clear();
                self.recorder.record(Event::AuthFail {
                    peer: Label::new(&self.peer_id),
                });
                Err(e)
            }
        }
    }

    fn open_into_inner(&mut self, record: &[u8], out: &mut Vec<u8>) -> Result<(), ChannelError> {
        out.clear();
        if record.len() < RECORD_OVERHEAD {
            return Err(ChannelError::Decode);
        }
        let header: [u8; 8] = record[..8].try_into().expect("8 bytes");
        let seq = u64::from_le_bytes(header);
        let nonce = Self::nonce_for(seq, self.epoch);
        let ct_end = record.len() - TAG_LEN;
        out.reserve_exact(ct_end - RECORD_HEADER_LEN);
        out.extend_from_slice(&record[RECORD_HEADER_LEN..ct_end]);
        self.recv
            .open_detached(&nonce, &header, out, &record[ct_end..])?;
        // Authenticate first, then replay-check, so an attacker cannot
        // poison the window with forged sequence numbers.
        self.replay.accept(seq)?;
        Ok(())
    }

    /// Ratchets both directions to the next epoch. Both peers must call
    /// this at an agreed point (e.g. after N records).
    pub fn rekey(&mut self) {
        let mut next_send = [0u8; 32];
        let mut next_recv = [0u8; 32];
        hkdf::derive(
            b"silvasec-rekey",
            &self.keys.send_key,
            b"next-epoch",
            &mut next_send,
        );
        hkdf::derive(
            b"silvasec-rekey",
            &self.keys.recv_key,
            b"next-epoch",
            &mut next_recv,
        );
        self.keys = SessionKeys {
            send_key: next_send,
            recv_key: next_recv,
        };
        self.send = ChaCha20Poly1305::new(&self.keys.send_key);
        self.recv = ChaCha20Poly1305::new(&self.keys.recv_key);
        self.send_seq = 0;
        self.replay = ReplayWindow::new();
        self.epoch += 1;
        self.recorder.record(Event::Custom {
            key: Label::new("rekey-epoch"),
            value: i64::from(self.epoch),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Session, Session) {
        let k1 = SessionKeys {
            send_key: [1u8; 32],
            recv_key: [2u8; 32],
        };
        let k2 = SessionKeys {
            send_key: [2u8; 32],
            recv_key: [1u8; 32],
        };
        (Session::new(k1, "b".into()), Session::new(k2, "a".into()))
    }

    #[test]
    fn roundtrip_both_directions() {
        let (mut a, mut b) = pair();
        let r1 = a.seal(b"hello").unwrap();
        assert_eq!(b.open(&r1).unwrap(), b"hello");
        let r2 = b.seal(b"world").unwrap();
        assert_eq!(a.open(&r2).unwrap(), b"world");
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"x").unwrap();
        assert!(b.open(&r).is_ok());
        assert_eq!(b.open(&r), Err(ChannelError::Replay));
    }

    #[test]
    fn tamper_rejected_without_advancing_window() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"x").unwrap();
        let mut bad = r.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(b.open(&bad), Err(ChannelError::Crypto(_))));
        // The genuine record still opens: forgery must not poison replay
        // state.
        assert!(b.open(&r).is_ok());
    }

    #[test]
    fn header_tamper_rejected() {
        let (mut a, mut b) = pair();
        let mut r = a.seal(b"x").unwrap();
        r[0] ^= 1; // change seq → nonce and AAD both mismatch
        assert!(b.open(&r).is_err());
    }

    #[test]
    fn out_of_order_delivery_within_window() {
        let (mut a, mut b) = pair();
        let r0 = a.seal(b"0").unwrap();
        let r1 = a.seal(b"1").unwrap();
        let r2 = a.seal(b"2").unwrap();
        assert_eq!(b.open(&r2).unwrap(), b"2");
        assert_eq!(b.open(&r0).unwrap(), b"0");
        assert_eq!(b.open(&r1).unwrap(), b"1");
    }

    #[test]
    fn short_record_is_decode_error() {
        let (_, mut b) = pair();
        assert_eq!(b.open(&[0u8; 10]), Err(ChannelError::Decode));
    }

    #[test]
    fn rekey_in_lockstep_continues_service() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"before").unwrap();
        assert!(b.open(&r).is_ok());
        a.rekey();
        b.rekey();
        assert_eq!(a.epoch(), 1);
        let r = a.seal(b"after").unwrap();
        assert_eq!(b.open(&r).unwrap(), b"after");
        // Old-epoch records no longer decrypt.
        let (mut a2, mut b2) = pair();
        let old = a2.seal(b"stale").unwrap();
        b2.rekey();
        assert!(b2.open(&old).is_err());
    }

    #[test]
    fn cross_epoch_replay_blocked_by_keys() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"msg").unwrap();
        assert!(b.open(&r).is_ok());
        a.rekey();
        b.rekey();
        // Same wire bytes replayed into the new epoch: seq 0 is fresh in
        // the new window, but the keys and nonce epoch differ → tag fails.
        assert!(matches!(b.open(&r), Err(ChannelError::Crypto(_))));
    }

    #[test]
    fn peer_identity_exposed() {
        let (a, b) = pair();
        assert_eq!(a.peer_id(), "b");
        assert_eq!(b.peer_id(), "a");
    }

    #[test]
    fn seal_into_matches_seal_and_reuses_buffer() {
        let (mut a, mut a2) = (pair().0, pair().0);
        let mut record = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 300, 1500] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 31 + len) as u8).collect();
            let allocating = a.seal(&pt).unwrap();
            a2.seal_into(&pt, &mut record).unwrap();
            assert_eq!(record, allocating, "len {len}");
        }
    }

    #[test]
    fn open_into_roundtrips_with_reused_buffers() {
        let (mut a, mut b) = pair();
        let mut record = Vec::new();
        let mut plain = Vec::new();
        for len in [0usize, 1, 16, 64, 65, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            a.seal_into(&pt, &mut record).unwrap();
            b.open_into(&record, &mut plain).unwrap();
            assert_eq!(plain, pt, "len {len}");
        }
        // A tampered record leaves the output buffer empty.
        a.seal_into(b"secret", &mut record).unwrap();
        let last = record.len() - 1;
        record[last] ^= 1;
        assert!(matches!(
            b.open_into(&record, &mut plain),
            Err(ChannelError::Crypto(_))
        ));
        assert!(plain.is_empty());
    }

    #[test]
    fn reinit_matches_fresh_session() {
        let (mut a, mut b) = pair();
        // Dirty the session: send traffic, rekey, receive.
        for _ in 0..5 {
            let r = a.seal(b"traffic").unwrap();
            b.open(&r).unwrap();
        }
        a.rekey();
        b.rekey();
        let keys = SessionKeys {
            send_key: [1u8; 32],
            recv_key: [2u8; 32],
        };
        a.reinit(&keys, "b");
        let mut fresh = Session::new(keys, "b".into());
        assert_eq!(a.peer_id(), fresh.peer_id());
        assert_eq!(a.epoch(), 0);
        assert_eq!(a.records_sent(), 0);
        // Identical records and replay behaviour after reinit.
        for i in 0..4 {
            let ra = a.seal(b"post-reset").unwrap();
            let rf = fresh.seal(b"post-reset").unwrap();
            assert_eq!(ra, rf, "record {i}");
        }
    }

    #[test]
    fn records_sent_counts() {
        let (mut a, _) = pair();
        assert_eq!(a.records_sent(), 0);
        let _ = a.seal(b"1").unwrap();
        let _ = a.seal(b"2").unwrap();
        assert_eq!(a.records_sent(), 2);
        a.rekey();
        assert_eq!(a.records_sent(), 0);
    }
}
