//! The AEAD record layer.

use crate::error::ChannelError;
use crate::replay::ReplayWindow;
use silvasec_crypto::aead::ChaCha20Poly1305;
use silvasec_crypto::hkdf;
use silvasec_telemetry::{Event, Label, Recorder};

/// Records carry an 8-byte sequence number header before the ciphertext.
pub const RECORD_HEADER_LEN: usize = 8;
/// Total per-record overhead (header + AEAD tag).
pub const RECORD_OVERHEAD: usize = RECORD_HEADER_LEN + 16;

/// Directional keys derived by the handshake.
#[derive(Debug, Clone)]
pub struct SessionKeys {
    /// Key for records this side sends.
    pub send_key: [u8; 32],
    /// Key for records this side receives.
    pub recv_key: [u8; 32],
}

/// An established secure session (one side).
///
/// Sealing stamps a strictly increasing sequence number (the AEAD nonce),
/// opening verifies the tag and enforces the replay window. [`Session::rekey`]
/// ratchets both directions via HKDF; both sides must rekey in lockstep.
#[derive(Debug)]
pub struct Session {
    send: ChaCha20Poly1305,
    recv: ChaCha20Poly1305,
    keys: SessionKeys,
    send_seq: u64,
    replay: ReplayWindow,
    peer_id: String,
    epoch: u32,
    recorder: Recorder,
}

impl Session {
    /// Builds a session from handshake-derived keys and the authenticated
    /// peer identity.
    #[must_use]
    pub fn new(keys: SessionKeys, peer_id: String) -> Self {
        Session {
            send: ChaCha20Poly1305::new(&keys.send_key),
            recv: ChaCha20Poly1305::new(&keys.recv_key),
            keys,
            send_seq: 0,
            replay: ReplayWindow::new(),
            peer_id,
            epoch: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder; failed opens are then mirrored as
    /// `AuthFail` events and rekeys as `Custom { key: "rekey-epoch" }`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The authenticated identity of the peer.
    #[must_use]
    pub fn peer_id(&self) -> &str {
        &self.peer_id
    }

    /// The current rekey epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of records sealed in this epoch.
    #[must_use]
    pub fn records_sent(&self) -> u64 {
        self.send_seq
    }

    fn nonce_for(seq: u64, epoch: u32) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&seq.to_le_bytes());
        nonce[8..].copy_from_slice(&epoch.to_le_bytes());
        nonce
    }

    /// Encrypts `plaintext` into a record.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::SequenceExhausted`] when the epoch's
    /// sequence space is spent (rekey first).
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if self.send_seq == u64::MAX {
            return Err(ChannelError::SequenceExhausted);
        }
        let seq = self.send_seq;
        self.send_seq += 1;
        let nonce = Self::nonce_for(seq, self.epoch);
        let header = seq.to_le_bytes();
        let mut out = Vec::with_capacity(RECORD_OVERHEAD + plaintext.len());
        out.extend_from_slice(&header);
        out.extend_from_slice(&self.send.seal(&nonce, &header, plaintext));
        Ok(out)
    }

    /// Decrypts and verifies a record.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Decode`] for malformed records,
    /// [`ChannelError::Crypto`] for tag failures, and
    /// [`ChannelError::Replay`] for replayed/stale sequence numbers. The
    /// replay window only advances on successfully authenticated records.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        match self.open_inner(record) {
            Ok(plaintext) => Ok(plaintext),
            Err(e) => {
                self.recorder.record(Event::AuthFail {
                    peer: Label::new(&self.peer_id),
                });
                Err(e)
            }
        }
    }

    fn open_inner(&mut self, record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if record.len() < RECORD_OVERHEAD {
            return Err(ChannelError::Decode);
        }
        let header: [u8; 8] = record[..8].try_into().expect("8 bytes");
        let seq = u64::from_le_bytes(header);
        let nonce = Self::nonce_for(seq, self.epoch);
        let plaintext = self.recv.open(&nonce, &header, &record[8..])?;
        // Authenticate first, then replay-check, so an attacker cannot
        // poison the window with forged sequence numbers.
        self.replay.accept(seq)?;
        Ok(plaintext)
    }

    /// Ratchets both directions to the next epoch. Both peers must call
    /// this at an agreed point (e.g. after N records).
    pub fn rekey(&mut self) {
        let mut next_send = [0u8; 32];
        let mut next_recv = [0u8; 32];
        hkdf::derive(
            b"silvasec-rekey",
            &self.keys.send_key,
            b"next-epoch",
            &mut next_send,
        );
        hkdf::derive(
            b"silvasec-rekey",
            &self.keys.recv_key,
            b"next-epoch",
            &mut next_recv,
        );
        self.keys = SessionKeys {
            send_key: next_send,
            recv_key: next_recv,
        };
        self.send = ChaCha20Poly1305::new(&self.keys.send_key);
        self.recv = ChaCha20Poly1305::new(&self.keys.recv_key);
        self.send_seq = 0;
        self.replay = ReplayWindow::new();
        self.epoch += 1;
        self.recorder.record(Event::Custom {
            key: Label::new("rekey-epoch"),
            value: i64::from(self.epoch),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Session, Session) {
        let k1 = SessionKeys {
            send_key: [1u8; 32],
            recv_key: [2u8; 32],
        };
        let k2 = SessionKeys {
            send_key: [2u8; 32],
            recv_key: [1u8; 32],
        };
        (Session::new(k1, "b".into()), Session::new(k2, "a".into()))
    }

    #[test]
    fn roundtrip_both_directions() {
        let (mut a, mut b) = pair();
        let r1 = a.seal(b"hello").unwrap();
        assert_eq!(b.open(&r1).unwrap(), b"hello");
        let r2 = b.seal(b"world").unwrap();
        assert_eq!(a.open(&r2).unwrap(), b"world");
    }

    #[test]
    fn replay_rejected() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"x").unwrap();
        assert!(b.open(&r).is_ok());
        assert_eq!(b.open(&r), Err(ChannelError::Replay));
    }

    #[test]
    fn tamper_rejected_without_advancing_window() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"x").unwrap();
        let mut bad = r.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(b.open(&bad), Err(ChannelError::Crypto(_))));
        // The genuine record still opens: forgery must not poison replay
        // state.
        assert!(b.open(&r).is_ok());
    }

    #[test]
    fn header_tamper_rejected() {
        let (mut a, mut b) = pair();
        let mut r = a.seal(b"x").unwrap();
        r[0] ^= 1; // change seq → nonce and AAD both mismatch
        assert!(b.open(&r).is_err());
    }

    #[test]
    fn out_of_order_delivery_within_window() {
        let (mut a, mut b) = pair();
        let r0 = a.seal(b"0").unwrap();
        let r1 = a.seal(b"1").unwrap();
        let r2 = a.seal(b"2").unwrap();
        assert_eq!(b.open(&r2).unwrap(), b"2");
        assert_eq!(b.open(&r0).unwrap(), b"0");
        assert_eq!(b.open(&r1).unwrap(), b"1");
    }

    #[test]
    fn short_record_is_decode_error() {
        let (_, mut b) = pair();
        assert_eq!(b.open(&[0u8; 10]), Err(ChannelError::Decode));
    }

    #[test]
    fn rekey_in_lockstep_continues_service() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"before").unwrap();
        assert!(b.open(&r).is_ok());
        a.rekey();
        b.rekey();
        assert_eq!(a.epoch(), 1);
        let r = a.seal(b"after").unwrap();
        assert_eq!(b.open(&r).unwrap(), b"after");
        // Old-epoch records no longer decrypt.
        let (mut a2, mut b2) = pair();
        let old = a2.seal(b"stale").unwrap();
        b2.rekey();
        assert!(b2.open(&old).is_err());
    }

    #[test]
    fn cross_epoch_replay_blocked_by_keys() {
        let (mut a, mut b) = pair();
        let r = a.seal(b"msg").unwrap();
        assert!(b.open(&r).is_ok());
        a.rekey();
        b.rekey();
        // Same wire bytes replayed into the new epoch: seq 0 is fresh in
        // the new window, but the keys and nonce epoch differ → tag fails.
        assert!(matches!(b.open(&r), Err(ChannelError::Crypto(_))));
    }

    #[test]
    fn peer_identity_exposed() {
        let (a, b) = pair();
        assert_eq!(a.peer_id(), "b");
        assert_eq!(b.peer_id(), "a");
    }

    #[test]
    fn records_sent_counts() {
        let (mut a, _) = pair();
        assert_eq!(a.records_sent(), 0);
        let _ = a.seal(b"1").unwrap();
        let _ = a.seal(b"2").unwrap();
        assert_eq!(a.records_sent(), 2);
        a.rekey();
        assert_eq!(a.records_sent(), 0);
    }
}
