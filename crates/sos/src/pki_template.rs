//! Amortized worksite PKI provisioning.
//!
//! Commissioning a secure worksite is by far the most expensive part of
//! episode setup: a root CA, per-machine certificate chains, signed
//! 4 KiB + 64 KiB firmware images, verified boots and two SIGMA
//! handshakes. None of that depends on anything but the scenario seed
//! and whether the drone link exists, so a [`SitePkiTemplate`] performs
//! the whole sequence **once** per `(seed, drone profile)` and freezes
//! the results: the trust store, every established session's traffic
//! keys and authenticated peer id, and the handshake telemetry records.
//! Episode resets then fork per-episode state (sessions via
//! [`Session::reinit`], telemetry via replay) in microseconds instead of
//! re-running the asymmetric crypto.
//!
//! Determinism contract: [`SitePkiTemplate::build`] consumes the RNG
//! stream `SimRng::from_seed(seed).fork("pki")` with *exactly* the draw
//! sequence of the naive in-line commissioning path in
//! [`crate::site::Worksite::new`], so every key, nonce and signature is
//! byte-identical to what a fresh worksite would have produced.
//!
//! [`Session::reinit`]: silvasec_channel::Session::reinit

use crate::pki_setup::{MachineCredentials, WorksitePki};
use silvasec_channel::session::SessionKeys;
use silvasec_channel::{HandshakePolicy, Initiator, Responder};
use silvasec_pki::{TrustStore, Validity};
use silvasec_sim::rng::SimRng;
use silvasec_telemetry::{Record, Recorder};

/// Frozen provisioning result for one secure link (one handshake).
#[derive(Debug, Clone)]
pub struct LinkTemplate {
    /// Traffic keys of the initiator-side session.
    pub initiator_keys: SessionKeys,
    /// Peer id the initiator authenticated.
    pub initiator_peer: String,
    /// Traffic keys of the responder-side session.
    pub responder_keys: SessionKeys,
    /// Peer id the responder authenticated.
    pub responder_peer: String,
}

/// A seed-keyed, immutable snapshot of the commissioned worksite PKI,
/// shareable (e.g. behind an `Rc` — worksites are thread-local, each
/// sweep worker commissions its own) across every episode that replays
/// the same scenario seed.
#[derive(Debug)]
pub struct SitePkiTemplate {
    seed: u64,
    drone_enabled: bool,
    /// The trust store every machine carries (root certificate).
    pub store: TrustStore,
    /// Forwarder (initiator) ↔ base station (responder) link.
    pub fw_bs: LinkTemplate,
    /// Drone (initiator) ↔ forwarder (responder) link, when commissioned.
    pub drone_fw: Option<LinkTemplate>,
    /// Credentials of every commissioned machine, in commissioning order
    /// (forwarder, base station, then drone when enabled). The signed
    /// firmware chains inside are `Arc`-shared, so holding them here
    /// keeps the 4 KiB + 64 KiB payloads alive without copies.
    pub credentials: Vec<MachineCredentials>,
    /// Handshake telemetry captured during commissioning, replayed
    /// verbatim into each episode's recorder.
    records: Vec<Record>,
}

impl SitePkiTemplate {
    /// Runs the full commissioning sequence for `seed` and freezes the
    /// results. Expensive (milliseconds) — call once and share.
    #[must_use]
    pub fn build(seed: u64, drone_enabled: bool) -> Self {
        let root_rng = SimRng::from_seed(seed);
        let mut pki_rng = root_rng.fork("pki");

        // Capture the handshake telemetry exactly as the in-line path
        // records it, so replaying yields byte-identical traces.
        let recorder = Recorder::new();
        let capture = recorder.subscribe("pki-capture", 64);

        let mut pki = WorksitePki::commission(&mut pki_rng, u64::MAX / 2);
        let validity = Validity::new(0, u64::MAX / 2);
        let fw_creds = pki.commission_machine(
            "forwarder-01",
            silvasec_pki::ComponentRole::Forwarder,
            1,
            &mut pki_rng,
            validity,
        );
        let bs_creds = pki.commission_machine(
            "base-01",
            silvasec_pki::ComponentRole::BaseStation,
            1,
            &mut pki_rng,
            validity,
        );
        assert!(fw_creds.boot_report.success, "forwarder failed secure boot");
        assert!(
            bs_creds.boot_report.success,
            "base station failed secure boot"
        );

        let policy = HandshakePolicy::new(pki.store.clone(), 0).with_recorder(recorder.clone());

        let (init, hello) = Initiator::start(
            fw_creds.identity.clone(),
            pki_rng.next_seed(),
            pki_rng.next_seed(),
        );
        let (resp, reply) = Responder::respond(
            bs_creds.identity.clone(),
            &policy,
            &hello,
            pki_rng.next_seed(),
            pki_rng.next_seed(),
        )
        .expect("base station rejects forwarder hello");
        let (fw_session, finished) = init.finish(&policy, &reply).expect("handshake finish");
        let bs_session = resp.complete(&finished).expect("handshake complete");
        let fw_bs = LinkTemplate {
            initiator_keys: fw_session.keys().clone(),
            initiator_peer: fw_session.peer_id().to_string(),
            responder_keys: bs_session.keys().clone(),
            responder_peer: bs_session.peer_id().to_string(),
        };

        let mut credentials = vec![fw_creds, bs_creds];
        let drone_fw = if drone_enabled {
            let drone_creds = pki.commission_machine(
                "drone-01",
                silvasec_pki::ComponentRole::Drone,
                1,
                &mut pki_rng,
                validity,
            );
            assert!(drone_creds.boot_report.success, "drone failed secure boot");
            let (init, hello) = Initiator::start(
                drone_creds.identity.clone(),
                pki_rng.next_seed(),
                pki_rng.next_seed(),
            );
            let fw_identity = credentials[0].identity.clone();
            let (resp, reply) = Responder::respond(
                fw_identity,
                &policy,
                &hello,
                pki_rng.next_seed(),
                pki_rng.next_seed(),
            )
            .expect("forwarder rejects drone hello");
            let (drone_session, finished) = init.finish(&policy, &reply).expect("drone finish");
            let fw_session = resp.complete(&finished).expect("drone complete");
            credentials.push(drone_creds);
            Some(LinkTemplate {
                initiator_keys: drone_session.keys().clone(),
                initiator_peer: drone_session.peer_id().to_string(),
                responder_keys: fw_session.keys().clone(),
                responder_peer: fw_session.peer_id().to_string(),
            })
        } else {
            None
        };

        let records = recorder.records(capture);
        let stats = recorder.stats();
        assert_eq!(
            stats[0].dropped, 0,
            "handshake capture ring must hold every record"
        );

        SitePkiTemplate {
            seed,
            drone_enabled,
            store: pki.store,
            fw_bs,
            drone_fw,
            credentials,
            records,
        }
    }

    /// The scenario seed this template was commissioned from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether a drone link was commissioned.
    #[must_use]
    pub fn drone_enabled(&self) -> bool {
        self.drone_enabled
    }

    /// Whether this template can provision a worksite with the given
    /// scenario parameters.
    #[must_use]
    pub fn matches(&self, seed: u64, drone_enabled: bool) -> bool {
        self.seed == seed && self.drone_enabled == drone_enabled
    }

    /// Replays the captured commissioning telemetry into `recorder`
    /// (alloc-free: records are plain data pushed into warm rings).
    pub fn replay_commissioning_telemetry(&self, recorder: &Recorder) {
        for rec in &self.records {
            recorder.record_at(rec.at, rec.event);
        }
    }

    /// Number of captured handshake telemetry records.
    #[must_use]
    pub fn telemetry_record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_deterministic_per_seed() {
        let a = SitePkiTemplate::build(7, false);
        let b = SitePkiTemplate::build(7, false);
        assert_eq!(a.fw_bs.initiator_keys, b.fw_bs.initiator_keys);
        assert_eq!(a.fw_bs.responder_keys, b.fw_bs.responder_keys);
        assert_eq!(a.fw_bs.initiator_peer, "base-01");
        assert_eq!(a.fw_bs.responder_peer, "forwarder-01");
        assert!(a.drone_fw.is_none());
        assert_eq!(a.telemetry_record_count(), b.telemetry_record_count());
    }

    #[test]
    fn drone_profile_adds_a_link() {
        let t = SitePkiTemplate::build(7, true);
        assert!(t.matches(7, true));
        assert!(!t.matches(7, false));
        assert!(!t.matches(8, true));
        let link = t.drone_fw.as_ref().expect("drone link commissioned");
        assert_eq!(link.initiator_peer, "forwarder-01");
        assert_eq!(link.responder_peer, "drone-01");
        assert_eq!(t.credentials.len(), 3);
        // Sessions differ per link: key reuse across links would be a
        // cross-protocol confusion hazard.
        assert_ne!(t.fw_bs.initiator_keys, link.initiator_keys);
    }

    #[test]
    fn captured_telemetry_replays_identically() {
        let t = SitePkiTemplate::build(3, true);
        // Two handshakes → HandshakeStart + 2×HandshakeDone each.
        assert_eq!(t.telemetry_record_count(), 6);
        let rec = Recorder::new();
        let sub = rec.subscribe("replay", 64);
        t.replay_commissioning_telemetry(&rec);
        let replayed = rec.records(sub);
        assert_eq!(replayed.len(), 6);
        for (i, r) in replayed.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "replay must renumber from zero");
        }
    }
}
