//! Worksite scenario configuration.

use silvasec_ids::IdsConfig;
use silvasec_machines::drone::DroneConfig;
use silvasec_machines::forwarder::ForwarderConfig;
use silvasec_machines::safety::SafetyConfig;
use silvasec_sim::time::SimDuration;
use silvasec_sim::world::WorldConfig;

/// The security controls deployed on the worksite — the experiment knobs
/// of the whole evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityPosture {
    /// Authenticated, encrypted channels (PKI + handshake + AEAD).
    pub secure_channel: bool,
    /// Management-frame protection (defeats forged de-auth).
    pub mfp: bool,
    /// The intrusion detection system and response policy.
    pub ids: bool,
    /// Verified boot with attestation gating network admission.
    pub secure_boot: bool,
}

impl SecurityPosture {
    /// Everything on — the hardened worksite.
    #[must_use]
    pub fn secure() -> Self {
        SecurityPosture {
            secure_channel: true,
            mfp: true,
            ids: true,
            secure_boot: true,
        }
    }

    /// Everything off — the paper's implicit baseline.
    #[must_use]
    pub fn insecure() -> Self {
        SecurityPosture {
            secure_channel: false,
            mfp: false,
            ids: false,
            secure_boot: false,
        }
    }
}

impl Default for SecurityPosture {
    fn default() -> Self {
        Self::secure()
    }
}

/// Flight-recorder configuration.
///
/// The worksite owns one [`silvasec_telemetry::Recorder`] and threads
/// clones through every instrumented component. Two subscribers ride on
/// it: an unfiltered "flight" ring (everything, including per-frame
/// events) and a "security" ring holding only the security-relevant
/// event classes — the latter is what the trace-divergence tooling
/// compares across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// When off, the worksite uses a disabled recorder and every record
    /// call is a single pointer check.
    pub enabled: bool,
    /// Capacity of the unfiltered flight ring (records).
    pub flight_capacity: usize,
    /// Capacity of the security-event ring (records).
    pub security_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            flight_capacity: 16_384,
            security_capacity: 4_096,
        }
    }
}

/// Full worksite scenario configuration.
#[derive(Debug, Clone)]
pub struct WorksiteConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// Security posture.
    pub security: SecurityPosture,
    /// Whether the observation drone participates (the Figure 2
    /// collaborative function).
    pub drone_enabled: bool,
    /// Forwarder parameters.
    pub forwarder: ForwarderConfig,
    /// Drone parameters.
    pub drone: DroneConfig,
    /// Safety supervisor parameters.
    pub safety: SafetyConfig,
    /// Intrusion-detection tuning (used when `security.ids` is on).
    pub ids: IdsConfig,
    /// Simulation tick length.
    pub tick: SimDuration,
    /// How long a commanded safe-stop holds.
    pub safe_stop_hold: SimDuration,
    /// Flight-recorder configuration.
    pub telemetry: TelemetryConfig,
}

impl Default for WorksiteConfig {
    fn default() -> Self {
        WorksiteConfig {
            world: WorldConfig::default(),
            security: SecurityPosture::secure(),
            drone_enabled: true,
            forwarder: ForwarderConfig::default(),
            drone: DroneConfig::default(),
            safety: SafetyConfig::default(),
            ids: IdsConfig::default(),
            tick: SimDuration::from_millis(500),
            safe_stop_hold: SimDuration::from_secs(30),
            telemetry: TelemetryConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postures() {
        let s = SecurityPosture::secure();
        assert!(s.secure_channel && s.mfp && s.ids && s.secure_boot);
        let i = SecurityPosture::insecure();
        assert!(!i.secure_channel && !i.mfp && !i.ids && !i.secure_boot);
        assert_eq!(SecurityPosture::default(), s);
    }

    #[test]
    fn default_config_sane() {
        let c = WorksiteConfig::default();
        assert!(c.drone_enabled);
        assert_eq!(c.tick, SimDuration::from_millis(500));
    }
}
