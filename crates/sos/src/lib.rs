//! The worksite system of systems: orchestration of world, machines,
//! radio, security substrates, IDS and attacks.
//!
//! This crate realizes the paper's Figure 1 worksite as one stepped
//! simulation: an autonomous forwarder hauling logs, a manned harvester,
//! an observation drone escorting the forwarder (the Figure 2
//! collaborative safety function), and a base station — all communicating
//! over the simulated radio medium, optionally protected by the PKI /
//! secure-channel / secure-boot substrates, monitored by the IDS, and
//! attacked by the attack engine.
//!
//! The SoS characteristics of Sec. IV-E are first-class: constituents are
//! independent state machines joined only by the medium (operational
//! independence); security posture is per-constituent configuration
//! (managerial independence); and the mission/safety metrics quantify the
//! emergent effects of attacks and defenses.
//!
//! * [`config`] — the worksite scenario configuration (security toggles
//!   are the experiment knobs).
//! * [`pki_setup`] — worksite PKI commissioning (CA, identities, boot).
//! * [`metrics`] — mission, safety and security metrics.
//! * [`site`] — the [`site::Worksite`] orchestrator.
//!
//! # Example
//!
//! ```
//! use silvasec_sos::prelude::*;
//! use silvasec_sim::time::SimDuration;
//!
//! let mut site = Worksite::new(&WorksiteConfig::default(), 42);
//! site.run(SimDuration::from_secs(60));
//! let m = site.metrics();
//! assert!(m.ticks > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod pki_setup;
pub mod pki_template;
pub mod site;

pub use config::{SecurityPosture, TelemetryConfig, WorksiteConfig};
pub use metrics::WorksiteMetrics;
pub use pki_template::SitePkiTemplate;
pub use site::Worksite;

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::config::{SecurityPosture, TelemetryConfig, WorksiteConfig};
    pub use crate::metrics::WorksiteMetrics;
    pub use crate::pki_setup::WorksitePki;
    pub use crate::pki_template::SitePkiTemplate;
    pub use crate::site::Worksite;
}
