//! Mission, safety and security metrics for a worksite run.

use serde::{Deserialize, Serialize};
use silvasec_ids::AlertKind;
use silvasec_sim::time::SimTime;
use std::collections::BTreeMap;

/// A recorded safety incident: the forwarder moved while a worker was
/// inside the danger radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyIncident {
    /// When it started.
    pub at: SimTime,
    /// Worker distance at the closest point, metres.
    pub distance_m: f64,
    /// Machine speed at that moment, m/s.
    pub speed_mps: f64,
}

/// Aggregated run metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorksiteMetrics {
    /// Simulation ticks executed.
    pub ticks: u64,
    /// Loads the forwarder delivered (mission productivity).
    pub loads_delivered: u64,
    /// Distance the forwarder drove, metres.
    pub distance_m: f64,
    /// Distinct safety incidents (movement with a worker in danger zone).
    pub safety_incidents: Vec<SafetyIncident>,
    /// Ticks with a worker in the danger zone at all (exposure).
    pub danger_zone_ticks: u64,
    /// Danger-zone ticks during which the machine was actually moving —
    /// the live hazard-exposure measure (ISO 13849's F parameter made
    /// measurable).
    pub moving_danger_ticks: u64,
    /// Ticks in which the supervisor held the machine stopped.
    pub stopped_ticks: u64,
    /// Supervisor stop events.
    pub stop_events: u64,
    /// Telemetry/command messages sent.
    pub messages_sent: u64,
    /// Messages delivered end-to-end.
    pub messages_delivered: u64,
    /// Authentication failures observed at receivers (tag/replay
    /// rejections).
    pub auth_failures: u64,
    /// Forged or replayed application messages that were *accepted*
    /// (only possible without the secure channel).
    pub forged_accepted: u64,
    /// IDS alerts by kind.
    pub alerts: BTreeMap<String, u64>,
    /// First alert time per attack-class tag (detection latency numerator).
    pub first_alert_at: BTreeMap<String, SimTime>,
    /// Safe-stop responses commanded by the security response policy.
    pub security_stops: u64,
    /// Drone detection frames that reached the forwarder.
    pub drone_feed_delivered: u64,
    /// Drone detection frames sent.
    pub drone_feed_sent: u64,
}

impl WorksiteMetrics {
    /// End-to-end message delivery ratio.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// Drone feed availability.
    #[must_use]
    pub fn drone_feed_ratio(&self) -> f64 {
        if self.drone_feed_sent == 0 {
            1.0
        } else {
            self.drone_feed_delivered as f64 / self.drone_feed_sent as f64
        }
    }

    /// Records an alert occurrence.
    pub fn record_alert(&mut self, kind: AlertKind, at: SimTime) {
        *self.alerts.entry(kind.to_string()).or_default() += 1;
        self.first_alert_at.entry(kind.to_string()).or_insert(at);
    }

    /// Total alerts of a kind.
    #[must_use]
    pub fn alert_count(&self, kind: AlertKind) -> u64 {
        self.alerts.get(&kind.to_string()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_default_to_one() {
        let m = WorksiteMetrics::default();
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.drone_feed_ratio(), 1.0);
    }

    #[test]
    fn alert_recording() {
        let mut m = WorksiteMetrics::default();
        m.record_alert(AlertKind::Jamming, SimTime::from_secs(5));
        m.record_alert(AlertKind::Jamming, SimTime::from_secs(9));
        assert_eq!(m.alert_count(AlertKind::Jamming), 2);
        assert_eq!(
            m.first_alert_at.get("jamming").copied(),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(m.alert_count(AlertKind::DeauthFlood), 0);
    }

    #[test]
    fn ratio_arithmetic() {
        let m = WorksiteMetrics {
            messages_sent: 10,
            messages_delivered: 7,
            drone_feed_sent: 4,
            drone_feed_delivered: 1,
            ..WorksiteMetrics::default()
        };
        assert!((m.delivery_ratio() - 0.7).abs() < 1e-12);
        assert!((m.drone_feed_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = WorksiteMetrics::default();
        m.record_alert(AlertKind::GnssSpoofing, SimTime::from_secs(1));
        let json = serde_json::to_string(&m).unwrap();
        let back: WorksiteMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.alert_count(AlertKind::GnssSpoofing), 1);
    }
}
