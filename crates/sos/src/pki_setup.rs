//! Worksite PKI commissioning: root CA, per-machine identities, signed
//! firmware and verified boot.
//!
//! Before a machine joins the network of a *secure* worksite, it must
//! (1) boot a signed firmware chain on its controller and (2) hold a
//! certificate issued by the worksite CA. This module performs that
//! commissioning deterministically from the scenario RNG.

use silvasec_channel::Identity;
use silvasec_crypto::schnorr::SigningKey;
use silvasec_pki::prelude::*;
use silvasec_secure_boot::prelude::*;
use silvasec_sim::rng::SimRng;
use std::sync::Arc;

/// The commissioned worksite PKI and per-machine credentials.
#[derive(Debug)]
pub struct WorksitePki {
    /// The root certificate authority.
    pub root: CertificateAuthority,
    /// The trust store every machine carries.
    pub store: TrustStore,
    /// The firmware-signing key (held by the manufacturer).
    pub firmware_signer: SigningKey,
}

/// One machine's commissioned credentials.
#[derive(Debug)]
pub struct MachineCredentials {
    /// Channel identity (certificate chain + key).
    pub identity: Identity,
    /// The machine's boot controller.
    pub device: Device,
    /// The firmware chain currently installed. Shared by `Arc`: the
    /// 4 KiB + 64 KiB payloads are built once per commissioning and
    /// every consumer (PKI templates, re-boots, episode resets) holds a
    /// reference instead of re-allocating the images.
    pub firmware: Arc<Vec<SignedImage>>,
    /// Outcome of the commissioning boot.
    pub boot_report: BootReport,
}

impl WorksitePki {
    /// Commissions the worksite PKI.
    #[must_use]
    pub fn commission(rng: &mut SimRng, validity_horizon: u64) -> Self {
        let root = CertificateAuthority::new_root(
            "worksite-root",
            &rng.next_seed(),
            Validity::new(0, validity_horizon),
        );
        let store = TrustStore::with_roots([root.certificate().clone()]);
        let firmware_signer = SigningKey::from_seed(&rng.next_seed());
        WorksitePki {
            root,
            store,
            firmware_signer,
        }
    }

    /// Commissions one machine: issues its certificate, signs its
    /// firmware, and boots it.
    pub fn commission_machine(
        &mut self,
        id: &str,
        role: ComponentRole,
        firmware_version: u32,
        rng: &mut SimRng,
        validity: Validity,
    ) -> MachineCredentials {
        let key = SigningKey::from_seed(&rng.next_seed());
        let cert = self.root.issue_mut(
            &Subject::new(id, role),
            &key.verifying_key(),
            KeyUsage::AUTHENTICATION | KeyUsage::TELEMETRY_SIGNING,
            validity,
        );
        let identity = Identity::new(vec![cert], key);

        let firmware = Arc::new(vec![
            FirmwareImage::new(id, FirmwareStage::Bootloader, firmware_version, {
                let mut payload = vec![0u8; 4096];
                rng.fill_bytes(&mut payload);
                payload
            })
            .sign(&self.firmware_signer),
            FirmwareImage::new(id, FirmwareStage::Application, firmware_version, {
                let mut payload = vec![0u8; 65536];
                rng.fill_bytes(&mut payload);
                payload
            })
            .sign(&self.firmware_signer),
        ]);
        let mut device = Device::new(id, self.firmware_signer.verifying_key());
        let boot_report = device.boot(&firmware);
        MachineCredentials {
            identity,
            device,
            firmware,
            boot_report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commissioning_yields_bootable_authenticated_machines() {
        let mut rng = SimRng::from_seed(1);
        let mut pki = WorksitePki::commission(&mut rng, 1_000_000);
        let creds = pki.commission_machine(
            "forwarder-01",
            ComponentRole::Forwarder,
            1,
            &mut rng,
            Validity::new(0, 500_000),
        );
        assert!(creds.boot_report.success);
        assert_eq!(creds.identity.id(), "forwarder-01");
        // The issued chain validates against the store.
        let chain = vec![pki.root.certificate().clone()];
        assert!(pki.store.validate_chain(&chain, 100, &[]).is_ok());
    }

    #[test]
    fn tampered_firmware_fails_commissioning_boot() {
        let mut rng = SimRng::from_seed(2);
        let mut pki = WorksitePki::commission(&mut rng, 1_000_000);
        let mut creds = pki.commission_machine(
            "drone-01",
            ComponentRole::Drone,
            1,
            &mut rng,
            Validity::new(0, 500_000),
        );
        // The chain is shared by `Arc`; tampering needs a private copy.
        let mut tampered = creds.firmware.as_ref().clone();
        tampered[1].image.payload[0] ^= 0xff;
        let report = creds.device.boot(&tampered);
        assert!(!report.success);
    }

    #[test]
    fn deterministic_commissioning() {
        let run = |seed| {
            let mut rng = SimRng::from_seed(seed);
            let mut pki = WorksitePki::commission(&mut rng, 1_000_000);
            let creds = pki.commission_machine(
                "m",
                ComponentRole::Sensor,
                1,
                &mut rng,
                Validity::new(0, 100),
            );
            creds.identity.id().to_owned()
        };
        assert_eq!(run(3), run(3));
    }
}
