//! The worksite orchestrator.

use crate::config::WorksiteConfig;
use crate::metrics::{SafetyIncident, WorksiteMetrics};
use crate::pki_setup::{MachineCredentials, WorksitePki};
use crate::pki_template::SitePkiTemplate;
use silvasec_attacks::{AttackEngine, SideEffect};
use silvasec_channel::{HandshakePolicy, Initiator, Responder, Session};
use silvasec_comms::{Frame, Medium, MediumConfig, NodeId, ReceivedFrame};
use silvasec_ids::prelude::*;
use silvasec_machines::harvester::Harvester;
use silvasec_machines::prelude::*;
use silvasec_machines::sensors::{detections_from_json, detections_to_json, Detection};
use silvasec_pki::{ComponentRole, Validity};
use silvasec_sim::geom::Vec2;
use silvasec_sim::rng::SimRng;
use silvasec_sim::time::{SimDuration, SimTime};
use silvasec_sim::world::World;
use silvasec_telemetry::{
    CounterId, Event, EventFilter, Label, MetricsSnapshot, Record, Recorder, SubscriberId,
};
use std::rc::Rc;

/// Danger radius: a worker this close to a moving forwarder is a safety
/// incident.
pub const DANGER_RADIUS_M: f64 = 3.5;

/// How many recovered frame-payload buffers the worksite keeps pooled
/// for reuse by the next seal/send.
const PAYLOAD_POOL_CAP: usize = 8;

// Hot-path labels, hoisted once: `Label` is a fixed-capacity inline
// `Copy` type and `from_static` is `const`, so recording with these
// costs nothing per tick (and produces the same bytes `Label::new`
// would).
const LABEL_FW_CAMERA: Label = Label::from_static("forwarder-01/camera");
const LABEL_FW_LIDAR: Label = Label::from_static("forwarder-01/lidar");
const LABEL_DRONE_CAMERA: Label = Label::from_static("drone-01/camera");
const LABEL_FW: Label = Label::from_static("forwarder-01");
const LABEL_BS: Label = Label::from_static("base-01");

struct SecureLinks {
    /// Forwarder-side session with the base station.
    fw: Session,
    /// Base-station-side session with the forwarder.
    bs_fw: Session,
    /// Drone-side session with the forwarder (the detection feed).
    drone: Option<Session>,
    /// Forwarder-side session with the drone.
    fw_drone: Option<Session>,
}

/// The composed worksite simulation.
pub struct Worksite {
    config: WorksiteConfig,
    world: World,
    medium: Medium,
    gnss_field: GnssField,
    attack_engine: AttackEngine,

    forwarder: Forwarder,
    camera: PeopleSensor,
    lidar: PeopleSensor,
    gnss_rx: GnssReceiver,
    supervisor: SafetySupervisor,
    drone: Option<Drone>,
    harvester: Harvester,

    node_fw: NodeId,
    node_bs: NodeId,
    node_drone: Option<NodeId>,

    links: Option<SecureLinks>,
    #[allow(dead_code)]
    credentials: Option<(MachineCredentials, MachineCredentials)>,
    /// Cached amortized provisioning, reused by
    /// [`Worksite::reset_for_episode`] while `(seed, drone profile)`
    /// match; shareable across a worksite pool.
    pki_template: Option<Rc<SitePkiTemplate>>,

    ids: Option<WorksiteIds>,
    correlator: AlertCorrelator,
    response: ResponsePolicy,
    security_stop_until: Option<SimTime>,
    degraded_until: Option<SimTime>,

    // Telemetry deltas for IDS observations.
    prev_deauth_rx: u64,
    prev_bs_assoc_rx: u64,
    prev_link_attempted: u64,
    prev_link_delivered: u64,
    auth_failures_tick: u64,

    last_drone_feed: Vec<Detection>,
    /// Reused plaintext buffer for record opens on the receive paths —
    /// steady-state ticks decrypt without allocating.
    open_scratch: Vec<u8>,
    danger_in_progress: bool,
    seq: u64,
    rng: SimRng,
    metrics: WorksiteMetrics,
    recorder: Recorder,
    flight_sub: SubscriberId,
    security_sub: SubscriberId,
    tick_counter: CounterId,
    /// Ground-truth replay bookkeeping (measurement, not a defence):
    /// sequence numbers already accepted at each receiver.
    seen_at_fw: std::collections::HashSet<u64>,
    seen_at_bs: std::collections::HashSet<u64>,

    // --- steady-state tick scratch (performance only; reusing these
    // buffers is never observable in metrics or telemetry) ---
    /// Camera detections for the current tick.
    cam_scratch: Vec<Detection>,
    /// LiDAR detections for the current tick.
    lidar_scratch: Vec<Detection>,
    /// Drone detections for the current tick (sender side).
    drone_scratch: Vec<Detection>,
    /// Fused people picture for the current tick.
    fused_scratch: Vec<Detection>,
    /// Decoded drone-feed staging; committed to `last_drone_feed` only
    /// on a successful decode, preserving decode-failure semantics.
    feed_parse_scratch: Vec<Detection>,
    /// Spatial-grid query index scratch shared by every culled sweep.
    candidates_scratch: Vec<u32>,
    /// Inbox-drain scratch; capacity ping-pongs with the medium's inbox.
    rx_scratch: Vec<ReceivedFrame>,
    /// Recovered frame-payload buffers, reused by the next seal/send.
    payload_pool: Vec<Vec<u8>>,
    /// Serialized drone-feed JSON for the current tick.
    feed_buf: Vec<u8>,
    /// Telemetry-uplink report text for the current tick.
    report_buf: String,
}

impl Worksite {
    /// Builds and commissions a worksite from configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if secure commissioning fails (it cannot, for untampered
    /// firmware) — a commissioning failure is a scenario-construction
    /// bug, not a runtime condition.
    #[must_use]
    pub fn new(config: &WorksiteConfig, seed: u64) -> Self {
        Self::build(config, seed, None)
    }

    /// Builds a worksite from a pre-commissioned [`SitePkiTemplate`],
    /// skipping the per-episode CA, firmware-signing, verified-boot and
    /// handshake work. Observable behaviour is identical to
    /// [`Worksite::new`] for the same `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics when `template` was commissioned for a different
    /// `(seed, drone profile)`.
    #[must_use]
    pub fn with_template(
        config: &WorksiteConfig,
        seed: u64,
        template: Rc<SitePkiTemplate>,
    ) -> Self {
        assert!(
            template.matches(seed, config.drone_enabled),
            "PKI template was commissioned for a different (seed, drone profile)"
        );
        Self::build(config, seed, Some(template))
    }

    fn build(config: &WorksiteConfig, seed: u64, template: Option<Rc<SitePkiTemplate>>) -> Self {
        let root_rng = SimRng::from_seed(seed);
        let world = World::generate(&config.world, root_rng.fork("world"));
        let rng = root_rng.fork("site");

        // The flight recorder is threaded through every instrumented
        // component exactly like `SimRng`: cloned handles, one shared
        // core, no globals. Recording never draws randomness or touches
        // control flow, so traces ride along without perturbing the run.
        let recorder = if config.telemetry.enabled {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        let flight_sub = recorder.subscribe("flight", config.telemetry.flight_capacity);
        let security_sub = recorder.subscribe_filtered(
            "security",
            config.telemetry.security_capacity,
            EventFilter::security(),
        );
        let tick_counter = recorder.counter("worksite_ticks");

        // Worksite radios: elevated antennas and a modest power budget
        // sized so the clean network works across the stand — attacks are
        // then measured against a functioning baseline.
        let propagation = silvasec_comms::propagation::PropagationConfig {
            exponent: 2.6,
            per_tree_db: 0.3,
            ..silvasec_comms::propagation::PropagationConfig::default()
        };
        let medium_config = MediumConfig {
            mfp_enabled: config.security.mfp,
            tx_power_dbm: 27.0,
            propagation,
            ..MediumConfig::default()
        };
        let mut medium = Medium::new(medium_config, root_rng.fork("medium"));
        medium.set_recorder(recorder.clone());

        let landing = config.world.landing_area;
        let work = config.world.work_area;

        let bs_pos = landing.with_z(world.ground_at(landing) + 6.0);
        let node_bs = medium.add_node(bs_pos);
        let fw_start = landing;
        let node_fw = medium.add_node(fw_start.with_z(world.ground_at(fw_start) + 3.0));
        let node_drone = config
            .drone_enabled
            .then(|| medium.add_node(fw_start.with_z(world.ground_at(fw_start) + 50.0)));

        medium.associate(node_bs);
        medium.associate(node_fw);
        if let Some(n) = node_drone {
            medium.associate(n);
        }
        // The attacker's rogue radio sits at the stand edge.
        let attacker_pos = Vec2::new(config.world.terrain.size_m * 0.5, 5.0);
        let node_attacker =
            medium.add_node(attacker_pos.with_z(world.ground_at(attacker_pos) + 2.0));
        let mut attack_engine = AttackEngine::new();
        attack_engine.set_attacker_node(node_attacker);
        attack_engine.set_recorder(recorder.clone());

        // Secure commissioning: either replayed from an amortized
        // template, or run in-line — the frozen naive path that the
        // template must reproduce byte-for-byte.
        let (links, credentials) = if config.security.secure_channel {
            if let Some(t) = template.as_deref() {
                t.replay_commissioning_telemetry(&recorder);
                let mut links = Self::links_from_template(t, config.drone_enabled);
                Self::attach_link_recorders(&mut links, &recorder);
                (Some(links), None)
            } else {
                let mut pki_rng = root_rng.fork("pki");
                let mut pki = WorksitePki::commission(&mut pki_rng, u64::MAX / 2);
                let horizon = Validity::new(0, u64::MAX / 2);
                let fw_creds = pki.commission_machine(
                    "forwarder-01",
                    ComponentRole::Forwarder,
                    1,
                    &mut pki_rng,
                    horizon,
                );
                let bs_creds = pki.commission_machine(
                    "base-01",
                    ComponentRole::BaseStation,
                    1,
                    &mut pki_rng,
                    horizon,
                );
                assert!(fw_creds.boot_report.success && bs_creds.boot_report.success);
                let policy =
                    HandshakePolicy::new(pki.store.clone(), 0).with_recorder(recorder.clone());

                let (init, hello) = Initiator::start(
                    fw_creds.identity.clone(),
                    pki_rng.next_seed(),
                    pki_rng.next_seed(),
                );
                let (resp, reply) = Responder::respond(
                    bs_creds.identity.clone(),
                    &policy,
                    &hello,
                    pki_rng.next_seed(),
                    pki_rng.next_seed(),
                )
                .expect("commissioning handshake");
                let (mut fw_session, finished) =
                    init.finish(&policy, &reply).expect("handshake finish");
                let mut bs_session = resp.complete(&finished).expect("handshake complete");
                fw_session.set_recorder(recorder.clone());
                bs_session.set_recorder(recorder.clone());

                let (drone_session, fw_drone_session) = if config.drone_enabled {
                    let drone_creds = pki.commission_machine(
                        "drone-01",
                        ComponentRole::Drone,
                        1,
                        &mut pki_rng,
                        horizon,
                    );
                    assert!(drone_creds.boot_report.success);
                    let (init, hello) = Initiator::start(
                        drone_creds.identity.clone(),
                        pki_rng.next_seed(),
                        pki_rng.next_seed(),
                    );
                    let (resp, reply) = Responder::respond(
                        fw_creds.identity.clone(),
                        &policy,
                        &hello,
                        pki_rng.next_seed(),
                        pki_rng.next_seed(),
                    )
                    .expect("drone handshake");
                    let (mut ds, finished) = init.finish(&policy, &reply).expect("drone finish");
                    let mut fs = resp.complete(&finished).expect("drone complete");
                    ds.set_recorder(recorder.clone());
                    fs.set_recorder(recorder.clone());
                    (Some(ds), Some(fs))
                } else {
                    (None, None)
                };

                (
                    Some(SecureLinks {
                        fw: fw_session,
                        bs_fw: bs_session,
                        drone: drone_session,
                        fw_drone: fw_drone_session,
                    }),
                    Some((fw_creds, bs_creds)),
                )
            }
        } else {
            (None, None)
        };

        let drone = config
            .drone_enabled
            .then(|| Drone::new(fw_start, config.drone, &world));

        // Scratch capacities sized to their worst case up front, so no
        // "largest feed yet" high-water growth ever allocates inside a
        // measured steady-state window. Detections are people
        // detections, so every per-detection buffer is bounded by the
        // worksite roster; a serialized detection is well under 192
        // JSON bytes even at full f64 round-trip precision.
        let human_cap = world.humans().len().max(1);
        let feed_bytes_cap = 16 + 192 * human_cap;

        Worksite {
            forwarder: Forwarder::new(fw_start, config.forwarder),
            camera: PeopleSensor::new(SensorKind::Camera, 2.8),
            lidar: PeopleSensor::new(SensorKind::Lidar, 3.2),
            gnss_rx: GnssReceiver::default(),
            supervisor: SafetySupervisor::new(config.safety),
            drone,
            harvester: Harvester::new(work, SimDuration::from_secs(300)),
            node_fw,
            node_bs,
            node_drone,
            links,
            credentials,
            pki_template: template,
            ids: config.security.ids.then(|| {
                let mut ids = WorksiteIds::new(config.ids.clone());
                ids.set_recorder(recorder.clone());
                ids
            }),
            correlator: AlertCorrelator::new(SimDuration::from_secs(60)),
            response: ResponsePolicy::default(),
            security_stop_until: None,
            degraded_until: None,
            prev_deauth_rx: 0,
            prev_bs_assoc_rx: 0,
            prev_link_attempted: 0,
            prev_link_delivered: 0,
            auth_failures_tick: 0,
            last_drone_feed: Vec::with_capacity(human_cap),
            open_scratch: Vec::with_capacity(feed_bytes_cap + 64),
            danger_in_progress: false,
            seq: 0,
            rng,
            metrics: WorksiteMetrics::default(),
            recorder,
            flight_sub,
            security_sub,
            tick_counter,
            // Pre-sized so the plaintext-posture replay log never
            // rehashes inside a measured steady-state window.
            seen_at_fw: std::collections::HashSet::with_capacity(8192),
            seen_at_bs: std::collections::HashSet::with_capacity(8192),
            cam_scratch: Vec::with_capacity(human_cap),
            lidar_scratch: Vec::with_capacity(human_cap),
            drone_scratch: Vec::with_capacity(human_cap),
            fused_scratch: Vec::with_capacity(3 * human_cap),
            feed_parse_scratch: Vec::with_capacity(human_cap),
            candidates_scratch: Vec::with_capacity(human_cap),
            rx_scratch: Vec::with_capacity(8),
            // Pool buffers start at worst-case record size so a
            // later-than-ever-seen largest drone feed never reallocs
            // mid-window.
            payload_pool: (0..PAYLOAD_POOL_CAP)
                .map(|_| Vec::with_capacity(feed_bytes_cap + 64))
                .collect(),
            feed_buf: Vec::with_capacity(feed_bytes_cap),
            report_buf: String::with_capacity(64),
            world,
            medium,
            gnss_field: GnssField::new(),
            attack_engine,
            config: config.clone(),
        }
    }

    /// Builds both sessions of every secure link from frozen template
    /// keys, exactly as the in-line handshakes would have.
    fn links_from_template(t: &SitePkiTemplate, drone_enabled: bool) -> SecureLinks {
        let fw = Session::new(
            t.fw_bs.initiator_keys.clone(),
            t.fw_bs.initiator_peer.clone(),
        );
        let bs_fw = Session::new(
            t.fw_bs.responder_keys.clone(),
            t.fw_bs.responder_peer.clone(),
        );
        let (drone, fw_drone) = if drone_enabled {
            let l = t.drone_fw.as_ref().expect("template has a drone link");
            (
                Some(Session::new(
                    l.initiator_keys.clone(),
                    l.initiator_peer.clone(),
                )),
                Some(Session::new(
                    l.responder_keys.clone(),
                    l.responder_peer.clone(),
                )),
            )
        } else {
            (None, None)
        };
        SecureLinks {
            fw,
            bs_fw,
            drone,
            fw_drone,
        }
    }

    fn attach_link_recorders(links: &mut SecureLinks, recorder: &Recorder) {
        links.fw.set_recorder(recorder.clone());
        links.bs_fw.set_recorder(recorder.clone());
        if let Some(s) = &mut links.drone {
            s.set_recorder(recorder.clone());
        }
        if let Some(s) = &mut links.fw_drone {
            s.set_recorder(recorder.clone());
        }
    }

    /// The cached PKI template, for sharing across a worksite pool.
    #[must_use]
    pub fn pki_template(&self) -> Option<&Rc<SitePkiTemplate>> {
        self.pki_template.as_ref()
    }

    /// Installs a shared PKI template; the next matching
    /// [`Worksite::reset_for_episode`] provisions from it instead of
    /// re-commissioning.
    pub fn set_pki_template(&mut self, template: Rc<SitePkiTemplate>) {
        self.pki_template = Some(template);
    }

    /// Resets this worksite in place to the state [`Worksite::new`]
    /// would produce for `(config, seed)`, reusing every long-lived
    /// allocation: terrain grids, tree stands, telemetry rings, radio
    /// inboxes, session key schedules and scratch buffers. Secure
    /// provisioning comes from the cached [`SitePkiTemplate`], rebuilt
    /// only when `(seed, drone profile)` changes.
    ///
    /// Observable behaviour — metrics, security/flight telemetry
    /// exports — is byte-identical to a fresh build for the same
    /// `(config, seed)` (property-tested). In steady state (unchanged
    /// telemetry shape, warm template) the reset performs no heap
    /// allocation.
    pub fn reset_for_episode(&mut self, config: &WorksiteConfig, seed: u64) {
        let root_rng = SimRng::from_seed(seed);
        self.world
            .regenerate(&config.world, &root_rng.fork("world"));
        self.rng = root_rng.fork("site");

        // Telemetry: reuse the recorder core when the subscriber shape
        // is unchanged, otherwise rebuild exactly as a fresh build would.
        if config.telemetry == self.config.telemetry {
            self.recorder.reset();
        } else {
            let recorder = if config.telemetry.enabled {
                Recorder::new()
            } else {
                Recorder::disabled()
            };
            self.flight_sub = recorder.subscribe("flight", config.telemetry.flight_capacity);
            self.security_sub = recorder.subscribe_filtered(
                "security",
                config.telemetry.security_capacity,
                EventFilter::security(),
            );
            self.recorder = recorder;
        }
        self.tick_counter = self.recorder.counter("worksite_ticks");

        let propagation = silvasec_comms::propagation::PropagationConfig {
            exponent: 2.6,
            per_tree_db: 0.3,
            ..silvasec_comms::propagation::PropagationConfig::default()
        };
        let medium_config = MediumConfig {
            mfp_enabled: config.security.mfp,
            tx_power_dbm: 27.0,
            propagation,
            ..MediumConfig::default()
        };
        self.medium.reset(medium_config, root_rng.fork("medium"));
        self.medium.set_recorder(self.recorder.clone());

        let landing = config.world.landing_area;
        let work = config.world.work_area;
        let bs_pos = landing.with_z(self.world.ground_at(landing) + 6.0);
        self.node_bs = self.medium.add_node(bs_pos);
        let fw_start = landing;
        self.node_fw = self
            .medium
            .add_node(fw_start.with_z(self.world.ground_at(fw_start) + 3.0));
        self.node_drone = if config.drone_enabled {
            Some(
                self.medium
                    .add_node(fw_start.with_z(self.world.ground_at(fw_start) + 50.0)),
            )
        } else {
            None
        };
        self.medium.associate(self.node_bs);
        self.medium.associate(self.node_fw);
        if let Some(n) = self.node_drone {
            self.medium.associate(n);
        }
        let attacker_pos = Vec2::new(config.world.terrain.size_m * 0.5, 5.0);
        let node_attacker = self
            .medium
            .add_node(attacker_pos.with_z(self.world.ground_at(attacker_pos) + 2.0));
        self.attack_engine.reset();
        self.attack_engine.set_attacker_node(node_attacker);
        self.attack_engine.set_recorder(self.recorder.clone());

        if config.security.secure_channel {
            let template = match self.pki_template.take() {
                Some(t) if t.matches(seed, config.drone_enabled) => t,
                _ => Rc::new(SitePkiTemplate::build(seed, config.drone_enabled)),
            };
            template.replay_commissioning_telemetry(&self.recorder);
            let shape_matches = self
                .links
                .as_ref()
                .is_some_and(|l| l.drone.is_some() == config.drone_enabled);
            if shape_matches {
                // Fast path: rebuild the sessions inside their existing
                // allocations.
                let links = self.links.as_mut().expect("shape checked");
                links.fw.reinit(
                    &template.fw_bs.initiator_keys,
                    &template.fw_bs.initiator_peer,
                );
                links.bs_fw.reinit(
                    &template.fw_bs.responder_keys,
                    &template.fw_bs.responder_peer,
                );
                if config.drone_enabled {
                    let l = template
                        .drone_fw
                        .as_ref()
                        .expect("template has a drone link");
                    links
                        .drone
                        .as_mut()
                        .expect("shape checked")
                        .reinit(&l.initiator_keys, &l.initiator_peer);
                    links
                        .fw_drone
                        .as_mut()
                        .expect("shape checked")
                        .reinit(&l.responder_keys, &l.responder_peer);
                }
            } else {
                self.links = Some(Self::links_from_template(&template, config.drone_enabled));
            }
            let links = self.links.as_mut().expect("secure links installed");
            Self::attach_link_recorders(links, &self.recorder);
            self.pki_template = Some(template);
        } else {
            self.links = None;
        }
        self.credentials = None;

        self.forwarder = Forwarder::new(fw_start, config.forwarder);
        self.camera = PeopleSensor::new(SensorKind::Camera, 2.8);
        self.lidar = PeopleSensor::new(SensorKind::Lidar, 3.2);
        self.gnss_rx = GnssReceiver::default();
        self.supervisor = SafetySupervisor::new(config.safety);
        self.drone = if config.drone_enabled {
            Some(Drone::new(fw_start, config.drone, &self.world))
        } else {
            None
        };
        self.harvester = Harvester::new(work, SimDuration::from_secs(300));
        self.ids = if config.security.ids {
            let mut ids = WorksiteIds::new(config.ids.clone());
            ids.set_recorder(self.recorder.clone());
            Some(ids)
        } else {
            None
        };
        self.correlator = AlertCorrelator::new(SimDuration::from_secs(60));
        self.response = ResponsePolicy::default();
        self.security_stop_until = None;
        self.degraded_until = None;
        self.prev_deauth_rx = 0;
        self.prev_bs_assoc_rx = 0;
        self.prev_link_attempted = 0;
        self.prev_link_delivered = 0;
        self.auth_failures_tick = 0;
        self.last_drone_feed.clear();
        self.open_scratch.clear();
        self.danger_in_progress = false;
        self.seq = 0;
        self.metrics = WorksiteMetrics::default();
        self.seen_at_fw.clear();
        self.seen_at_bs.clear();
        self.cam_scratch.clear();
        self.lidar_scratch.clear();
        self.drone_scratch.clear();
        self.fused_scratch.clear();
        self.feed_parse_scratch.clear();
        self.candidates_scratch.clear();
        self.rx_scratch.clear();
        self.feed_buf.clear();
        self.report_buf.clear();
        // `payload_pool` is deliberately retained: pooled buffers carry
        // no episode state (always cleared before reuse).
        self.gnss_field = GnssField::new();
        self.config.clone_from(config);
    }

    /// The attack engine, for scheduling campaigns.
    pub fn attack_engine_mut(&mut self) -> &mut AttackEngine {
        &mut self.attack_engine
    }

    /// The accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &WorksiteMetrics {
        &self.metrics
    }

    /// The worksite's flight recorder (disabled when telemetry is off).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records currently held by the security-event ring, oldest first.
    #[must_use]
    pub fn security_records(&self) -> Vec<Record> {
        self.recorder.records(self.security_sub)
    }

    /// JSONL export of the security-event ring.
    #[must_use]
    pub fn export_security_jsonl(&self) -> String {
        self.recorder.export_jsonl(self.security_sub)
    }

    /// JSONL export of the unfiltered flight ring.
    #[must_use]
    pub fn export_flight_jsonl(&self) -> String {
        self.recorder.export_jsonl(self.flight_sub)
    }

    /// Telemetry metrics snapshot (counters, gauges, histograms and ring
    /// drop accounting).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> MetricsSnapshot {
        self.recorder.snapshot()
    }

    /// Current sim time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The world (read access for experiments).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The forwarder (read access for experiments).
    #[must_use]
    pub fn forwarder(&self) -> &Forwarder {
        &self.forwarder
    }

    /// Runs the simulation for `duration`.
    pub fn run(&mut self, duration: SimDuration) {
        self.medium.set_reference_physics(false);
        let end = self.world.now() + duration;
        while self.world.now() < end {
            self.tick();
        }
    }

    /// Runs the simulation for `duration` through the frozen
    /// pre-optimization tick body ([`Worksite::tick_reference`]) — the
    /// parity oracle and the bench's "old" timing arm. Also selects the
    /// frozen pre-optimization radio propagation path (identical values
    /// and RNG draws, pre-optimization cost) so the arm's timing
    /// reflects the pre-optimization worksite end to end.
    pub fn run_reference(&mut self, duration: SimDuration) {
        self.medium.set_reference_physics(true);
        let end = self.world.now() + duration;
        while self.world.now() < end {
            self.tick_reference();
        }
        self.medium.set_reference_physics(false);
    }

    /// Executes one simulation tick.
    ///
    /// This is the steady-state hot path: perception runs through the
    /// grid-culled `_into` variants writing into worksite-owned scratch
    /// buffers, the drone feed is serialized by the canonical byte-exact
    /// writer into a reused buffer, comms payloads come from the
    /// recovered-buffer pool, and safety supervision range-tests only
    /// grid-culled candidates. With warm buffers a quiet steady-state
    /// tick performs **zero heap allocations** (asserted by the
    /// `exp15_tick` bench under a counting allocator). Observable
    /// behaviour — metrics, telemetry bytes, RNG stream — is
    /// bit-identical to [`Worksite::tick_reference`] (tested).
    pub fn tick(&mut self) {
        let tick = self.config.tick;
        self.world.step(tick);
        let now = self.world.now();
        self.recorder.advance(now);
        self.recorder.inc(self.tick_counter, 1);
        self.auth_failures_tick = 0;

        // --- attacks act on the shared physics ---
        let effects = self
            .attack_engine
            .step(now, &mut self.medium, &mut self.gnss_field);
        self.apply_attack_effects(effects);

        // --- GNSS-coupled navigation error ---
        self.apply_gnss_spoof_drift(now, tick);

        // --- perception (scratch buffers + grid culling) ---
        let fw_pos = self.forwarder.position();
        let heading = self.forwarder.vehicle.heading;
        self.camera.detect_into(
            &self.world,
            fw_pos,
            heading,
            &mut self.rng,
            &mut self.candidates_scratch,
            &mut self.cam_scratch,
        );
        self.lidar.detect_into(
            &self.world,
            fw_pos,
            heading,
            &mut self.rng,
            &mut self.candidates_scratch,
            &mut self.lidar_scratch,
        );
        self.recorder.record(Event::SensorReading {
            sensor: LABEL_FW_CAMERA,
            detections: self.cam_scratch.len() as u32,
        });
        self.recorder.record(Event::SensorReading {
            sensor: LABEL_FW_LIDAR,
            detections: self.lidar_scratch.len() as u32,
        });

        // Drone flies escort and streams detections over the radio.
        self.drone_feed(now, fw_pos);

        fuse_detections_into(
            &[
                self.cam_scratch.as_slice(),
                self.lidar_scratch.as_slice(),
                self.last_drone_feed.as_slice(),
            ],
            &mut self.fused_scratch,
        );

        // --- safety supervision (with security response override) ---
        let limit = self.supervisor.update(now, fw_pos, &self.fused_scratch);
        let limit = self.resolve_security_limit(now, limit);

        // --- machine motion and work ---
        let fw_pos = self.step_machines(now, tick, limit);

        // --- telemetry uplink fw → bs ---
        self.telemetry_uplink(now, fw_pos);

        // --- intrusion detection ---
        self.observe_ids(now, fw_pos);

        // --- safety accounting ---
        self.account_safety(now, fw_pos, limit);
        self.finish_tick();
    }

    /// Executes one simulation tick through the frozen pre-optimization
    /// path: allocating linear-scan perception, `fuse_detections` over
    /// cloned inputs, per-tick serde serialization, fresh inbox vectors
    /// and a full-roster safety scan.
    ///
    /// FROZEN parity oracle and the bench's "old" timing arm — do not
    /// optimize this body. [`Worksite::tick`] must stay observably
    /// bit-identical to it.
    pub fn tick_reference(&mut self) {
        let tick = self.config.tick;
        self.world.step(tick);
        let now = self.world.now();
        self.recorder.advance(now);
        self.recorder.inc(self.tick_counter, 1);
        self.auth_failures_tick = 0;

        let effects = self
            .attack_engine
            .step(now, &mut self.medium, &mut self.gnss_field);
        self.apply_attack_effects(effects);

        self.apply_gnss_spoof_drift(now, tick);

        let fw_pos = self.forwarder.position();
        let heading = self.forwarder.vehicle.heading;
        let cam = self
            .camera
            .detect(&self.world, fw_pos, heading, &mut self.rng);
        let lidar = self
            .lidar
            .detect(&self.world, fw_pos, heading, &mut self.rng);
        self.recorder.record(Event::SensorReading {
            sensor: Label::new("forwarder-01/camera"),
            detections: cam.len() as u32,
        });
        self.recorder.record(Event::SensorReading {
            sensor: Label::new("forwarder-01/lidar"),
            detections: lidar.len() as u32,
        });

        self.drone_feed_reference(now, fw_pos);

        let fused = fuse_detections(&[cam, lidar, self.last_drone_feed.clone()]);

        let limit = self.supervisor.update(now, fw_pos, &fused);
        let limit = self.resolve_security_limit(now, limit);

        let fw_pos = self.step_machines(now, tick, limit);

        self.telemetry_uplink_reference(now, fw_pos);
        self.observe_ids(now, fw_pos);
        self.account_safety_reference(now, fw_pos, limit);
        self.finish_tick();
    }

    /// Applies attack side effects to the sensors. Shared verbatim by
    /// both tick bodies.
    fn apply_attack_effects(&mut self, effects: Vec<SideEffect>) {
        for effect in effects {
            match effect {
                SideEffect::BlindSensor {
                    machine_label,
                    health,
                } => {
                    if machine_label.starts_with("forwarder") {
                        // Optical interference blinds both optical
                        // sensors (camera and LiDAR) — Petit et al.'s
                        // remote attacks cover both.
                        self.camera.degrade(health);
                        self.lidar.degrade(health);
                    } else if machine_label.starts_with("drone") {
                        if let Some(d) = &mut self.drone {
                            d.sensor.degrade(health);
                        }
                    }
                }
                SideEffect::RestoreSensor { machine_label } => {
                    if machine_label.starts_with("forwarder") {
                        self.camera.degrade(1.0);
                        self.lidar.degrade(1.0);
                    } else if machine_label.starts_with("drone") {
                        if let Some(d) = &mut self.drone {
                            d.sensor.degrade(1.0);
                        }
                    }
                }
                SideEffect::TamperFirmware { .. } => {
                    // Takes effect at next boot; verified boot rejects it.
                    // (Exercised by the secure-boot experiment.)
                }
                _ => {}
            }
        }
    }

    /// Applies the security-response overrides (degraded mode, safe
    /// stop) on top of the supervisor's limit. Shared by both tick
    /// bodies.
    fn resolve_security_limit(&mut self, now: SimTime, mut limit: SpeedLimit) -> SpeedLimit {
        if let Some(until) = self.degraded_until {
            if now < until {
                // Degraded mode: never faster than Slow.
                if limit == SpeedLimit::Full {
                    limit = SpeedLimit::Slow;
                }
            } else {
                self.degraded_until = None;
            }
        }
        if let Some(until) = self.security_stop_until {
            if now < until {
                limit = SpeedLimit::Stop;
            } else {
                self.security_stop_until = None;
            }
        }
        limit
    }

    /// Steps the machines and the radio node positions; returns the
    /// forwarder's post-step position. Shared by both tick bodies.
    fn step_machines(&mut self, now: SimTime, tick: SimDuration, limit: SpeedLimit) -> Vec2 {
        let before_loads = self.forwarder.loads_delivered();
        self.forwarder.step(&self.world, limit, tick);
        self.metrics.loads_delivered += self.forwarder.loads_delivered() - before_loads;
        let _ = self.harvester.step(now);
        if limit == SpeedLimit::Stop {
            self.metrics.stopped_ticks += 1;
        }

        let fw_pos = self.forwarder.position();
        self.medium.set_position(
            self.node_fw,
            fw_pos.with_z(self.world.ground_at(fw_pos) + 3.0),
        );
        if let (Some(node), Some(d)) = (self.node_drone, &self.drone) {
            self.medium.set_position(node, d.body.position);
        }
        fw_pos
    }

    /// Per-tick metric roll-up. Shared by both tick bodies.
    fn finish_tick(&mut self) {
        self.metrics.stop_events = self.supervisor.stop_events();
        self.metrics.distance_m = self.forwarder.distance_travelled();
        self.metrics.ticks += 1;
    }

    /// Returns a payload buffer to the pool (bounded, cleared).
    fn pool_push(pool: &mut Vec<Vec<u8>>, mut buf: Vec<u8>) {
        if pool.len() < PAYLOAD_POOL_CAP {
            buf.clear();
            pool.push(buf);
        }
    }

    /// A GNSS-guided machine corrects its trajectory against its fix; a
    /// dragged fix therefore pushes the *true* position off the plan.
    fn apply_gnss_spoof_drift(&mut self, now: SimTime, tick: SimDuration) {
        let truth = self.forwarder.position();
        let Some(fix) = self
            .gnss_rx
            .sample(&self.gnss_field, truth, now, &mut self.rng)
        else {
            return; // jammed: navigation falls back to odometry (no drift)
        };
        let offset = fix.position - truth;
        if offset.length() > 3.0 {
            // The controller steers to cancel the perceived error, moving
            // the true position opposite to the offset, bounded by what
            // the machine can physically do in one tick.
            let max_step = self.forwarder.vehicle.speed_cap.min(2.0) * tick.as_secs_f64();
            let correction = -offset.normalized() * offset.length().min(max_step);
            let size = self.config.world.terrain.size_m;
            let new_pos = Vec2::new(
                (truth.x + correction.x).clamp(0.0, size),
                (truth.y + correction.y).clamp(0.0, size),
            );
            self.forwarder.vehicle.position = new_pos;
        }
    }

    /// Zero-alloc drone feed: grid-culled `detect_into`, the canonical
    /// byte-exact JSON writer into a reused buffer, pooled comms
    /// payloads (recovered both from drained frames and from lost
    /// frames via [`Medium::transmit_env_reclaiming`]), and an
    /// attacker-capture gated on whether any replay campaign actually
    /// consumes captures. Byte-identical on the wire to
    /// [`Worksite::drone_feed_reference`].
    fn drone_feed(&mut self, now: SimTime, fw_pos: Vec2) {
        self.last_drone_feed.clear();
        let Some(drone) = &mut self.drone else {
            return;
        };
        let Some(node_drone) = self.node_drone else {
            return;
        };
        drone.step(&self.world, fw_pos, self.config.tick);
        drone.detect_into(
            &self.world,
            &mut self.rng,
            &mut self.candidates_scratch,
            &mut self.drone_scratch,
        );
        self.recorder.record_at(
            now,
            Event::SensorReading {
                sensor: LABEL_DRONE_CAMERA,
                detections: self.drone_scratch.len() as u32,
            },
        );

        detections_to_json(&self.drone_scratch, &mut self.feed_buf);
        let mut payload = self.payload_pool.pop().unwrap_or_default();
        if let Some(links) = &mut self.links {
            match links
                .drone
                .as_mut()
                .map(|s| s.seal_into(&self.feed_buf, &mut payload))
            {
                Some(Ok(())) => {}
                _ => {
                    Self::pool_push(&mut self.payload_pool, payload);
                    return;
                }
            }
        } else {
            payload.clear();
            payload.extend_from_slice(&self.feed_buf);
        }

        self.seq += 1;
        let frame = Frame::data(node_drone, self.node_fw, payload).with_seq(self.seq);
        self.metrics.drone_feed_sent += 1;
        // The attacker passively sniffs a fraction of the traffic for
        // later replay (it is in radio range of the whole stand).
        // Captures are only ever consumed by a replay campaign, so when
        // none is scheduled the clone is unobservable and skipped.
        if self.seq.is_multiple_of(5) && self.attack_engine.wants_captures() {
            self.attack_engine.capture(frame.clone());
        }
        let (_, reclaimed) = self.medium.transmit_env_reclaiming(
            self.world.stand(),
            self.world.weather(),
            node_drone,
            frame,
            now,
        );
        if let Some(buf) = reclaimed {
            Self::pool_push(&mut self.payload_pool, buf);
        }

        // Forwarder drains its inbox and decodes the feed.
        let mut rxs = std::mem::take(&mut self.rx_scratch);
        self.medium.drain_inbox_into(self.node_fw, &mut rxs);
        for rx in rxs.drain(..) {
            let frame = rx.frame;
            // `fresh` = a first-time, genuinely-sourced feed frame.
            // Secure links enforce this cryptographically (replays fail
            // to open); the plaintext path only *measures* it via the
            // ground-truth sequence log.
            let (body, fresh): (&[u8], bool) = if let Some(links) = &mut self.links {
                let Some(session) = links.fw_drone.as_mut() else {
                    Self::pool_push(&mut self.payload_pool, frame.payload);
                    continue;
                };
                match session.open_into(&frame.payload, &mut self.open_scratch) {
                    Ok(()) => (&self.open_scratch, true),
                    Err(_) => {
                        self.auth_failures_tick += 1;
                        self.metrics.auth_failures += 1;
                        Self::pool_push(&mut self.payload_pool, frame.payload);
                        continue;
                    }
                }
            } else {
                let fresh = frame.claimed_src == node_drone && self.seen_at_fw.insert(frame.seq);
                if !fresh {
                    self.metrics.forged_accepted += 1;
                }
                (&frame.payload, fresh)
            };
            if detections_from_json(body, &mut self.feed_parse_scratch) {
                // Stale replayed feeds still overwrite the forwarder's
                // picture (the attack's harm) but only fresh frames count
                // towards availability.
                std::mem::swap(&mut self.last_drone_feed, &mut self.feed_parse_scratch);
                if fresh {
                    self.metrics.drone_feed_delivered += 1;
                }
            }
            Self::pool_push(&mut self.payload_pool, frame.payload);
        }
        self.rx_scratch = rxs;
    }

    /// FROZEN pre-optimization drone feed (parity oracle / bench "old"
    /// arm): per-tick serde allocation, cloned stand, fresh inbox
    /// vectors, unconditional capture sampling. Do not optimize.
    fn drone_feed_reference(&mut self, now: SimTime, fw_pos: Vec2) {
        self.last_drone_feed.clear();
        let Some(drone) = &mut self.drone else {
            return;
        };
        let Some(node_drone) = self.node_drone else {
            return;
        };
        drone.step(&self.world, fw_pos, self.config.tick);
        let detections = drone.detect(&self.world, &mut self.rng);
        self.recorder.record_at(
            now,
            Event::SensorReading {
                sensor: Label::new("drone-01/camera"),
                detections: detections.len() as u32,
            },
        );

        let payload = serde_json::to_vec(&detections).expect("detections serialize");
        let payload = if let Some(links) = &mut self.links {
            match links.drone.as_mut().map(|s| s.seal(&payload)) {
                Some(Ok(sealed)) => sealed,
                _ => return,
            }
        } else {
            payload
        };

        self.seq += 1;
        let frame = Frame::data(node_drone, self.node_fw, payload).with_seq(self.seq);
        self.metrics.drone_feed_sent += 1;
        // The attacker passively sniffs a fraction of the traffic for
        // later replay (it is in radio range of the whole stand).
        if self.seq.is_multiple_of(5) {
            self.attack_engine.capture(frame.clone());
        }
        let env_stand = self.world.stand().clone();
        let weather = self.world.weather();
        let _ = self
            .medium
            .transmit_env(&env_stand, weather, node_drone, frame, now);

        // Forwarder drains its inbox and decodes the feed.
        for rx in self.medium.drain_inbox(self.node_fw) {
            // `fresh` = a first-time, genuinely-sourced feed frame.
            // Secure links enforce this cryptographically (replays fail
            // to open); the plaintext path only *measures* it via the
            // ground-truth sequence log.
            let (body, fresh): (&[u8], bool) = if let Some(links) = &mut self.links {
                let Some(session) = links.fw_drone.as_mut() else {
                    continue;
                };
                match session.open_into(&rx.frame.payload, &mut self.open_scratch) {
                    Ok(()) => (&self.open_scratch, true),
                    Err(_) => {
                        self.auth_failures_tick += 1;
                        self.metrics.auth_failures += 1;
                        continue;
                    }
                }
            } else {
                let fresh =
                    rx.frame.claimed_src == node_drone && self.seen_at_fw.insert(rx.frame.seq);
                if !fresh {
                    self.metrics.forged_accepted += 1;
                }
                (&rx.frame.payload, fresh)
            };
            if let Ok(detections) = serde_json::from_slice::<Vec<Detection>>(body) {
                // Stale replayed feeds still overwrite the forwarder's
                // picture (the attack's harm) but only fresh frames count
                // towards availability.
                self.last_drone_feed = detections;
                if fresh {
                    self.metrics.drone_feed_delivered += 1;
                }
            }
        }
    }

    /// Zero-alloc telemetry uplink: the report is formatted into a
    /// reused `String`, sealed into a pooled payload buffer, and lost
    /// or drained frames hand their buffers back to the pool.
    /// Byte-identical on the wire to
    /// [`Worksite::telemetry_uplink_reference`].
    fn telemetry_uplink(&mut self, now: SimTime, fw_pos: Vec2) {
        use std::fmt::Write as _;
        self.report_buf.clear();
        let _ = write!(
            self.report_buf,
            "pos={:.1},{:.1};loads={}",
            fw_pos.x,
            fw_pos.y,
            self.forwarder.loads_delivered()
        );
        let mut payload = self.payload_pool.pop().unwrap_or_default();
        if let Some(links) = &mut self.links {
            match links.fw.seal_into(self.report_buf.as_bytes(), &mut payload) {
                Ok(()) => {}
                Err(_) => {
                    Self::pool_push(&mut self.payload_pool, payload);
                    return;
                }
            }
        } else {
            payload.clear();
            payload.extend_from_slice(self.report_buf.as_bytes());
        }
        self.seq += 1;
        let frame = Frame::data(self.node_fw, self.node_bs, payload).with_seq(self.seq);
        self.metrics.messages_sent += 1;
        if self.seq.is_multiple_of(5) && self.attack_engine.wants_captures() {
            self.attack_engine.capture(frame.clone());
        }
        let (_, reclaimed) = self.medium.transmit_env_reclaiming(
            self.world.stand(),
            self.world.weather(),
            self.node_fw,
            frame,
            now,
        );
        if let Some(buf) = reclaimed {
            Self::pool_push(&mut self.payload_pool, buf);
        }

        let mut rxs = std::mem::take(&mut self.rx_scratch);
        self.medium.drain_inbox_into(self.node_bs, &mut rxs);
        for rx in rxs.drain(..) {
            let frame = rx.frame;
            if let Some(links) = &mut self.links {
                match links
                    .bs_fw
                    .open_into(&frame.payload, &mut self.open_scratch)
                {
                    Ok(()) => self.metrics.messages_delivered += 1,
                    Err(_) => {
                        self.auth_failures_tick += 1;
                        self.metrics.auth_failures += 1;
                    }
                }
            } else if frame.claimed_src != self.node_fw || !self.seen_at_bs.insert(frame.seq) {
                // Forged source or replayed sequence — accepted by the
                // plaintext receiver (the harm), but not counted as a
                // legitimate delivery.
                self.metrics.forged_accepted += 1;
            } else {
                self.metrics.messages_delivered += 1;
            }
            Self::pool_push(&mut self.payload_pool, frame.payload);
        }
        self.rx_scratch = rxs;
    }

    /// FROZEN pre-optimization telemetry uplink (parity oracle / bench
    /// "old" arm). Do not optimize.
    fn telemetry_uplink_reference(&mut self, now: SimTime, fw_pos: Vec2) {
        let report = format!(
            "pos={:.1},{:.1};loads={}",
            fw_pos.x,
            fw_pos.y,
            self.forwarder.loads_delivered()
        );
        let payload = if let Some(links) = &mut self.links {
            match links.fw.seal(report.as_bytes()) {
                Ok(sealed) => sealed,
                Err(_) => return,
            }
        } else {
            report.into_bytes()
        };
        self.seq += 1;
        let frame = Frame::data(self.node_fw, self.node_bs, payload).with_seq(self.seq);
        self.metrics.messages_sent += 1;
        if self.seq.is_multiple_of(5) {
            self.attack_engine.capture(frame.clone());
        }
        let env_stand = self.world.stand().clone();
        let weather = self.world.weather();
        let _ = self
            .medium
            .transmit_env(&env_stand, weather, self.node_fw, frame, now);

        for rx in self.medium.drain_inbox(self.node_bs) {
            if let Some(links) = &mut self.links {
                match links
                    .bs_fw
                    .open_into(&rx.frame.payload, &mut self.open_scratch)
                {
                    Ok(()) => self.metrics.messages_delivered += 1,
                    Err(_) => {
                        self.auth_failures_tick += 1;
                        self.metrics.auth_failures += 1;
                    }
                }
            } else if rx.frame.claimed_src != self.node_fw || !self.seen_at_bs.insert(rx.frame.seq)
            {
                // Forged source or replayed sequence — accepted by the
                // plaintext receiver (the harm), but not counted as a
                // legitimate delivery.
                self.metrics.forged_accepted += 1;
            } else {
                self.metrics.messages_delivered += 1;
            }
        }
    }

    fn observe_ids(&mut self, now: SimTime, fw_pos: Vec2) {
        let Some(ids) = &mut self.ids else {
            return;
        };
        let mut alerts = Vec::new();

        // Radio telemetry for the forwarder's receiver.
        let stats = self.medium.node_stats(self.node_fw);
        let deauth_delta = stats.deauth_rx - self.prev_deauth_rx;
        self.prev_deauth_rx = stats.deauth_rx;
        let link = self.medium.link_stats(self.node_fw, self.node_bs);
        let (attempted, delivered) = link.map_or((0, 0), |l| (l.attempted, l.delivered));
        let att_delta = attempted - self.prev_link_attempted;
        let del_delta = delivered - self.prev_link_delivered;
        self.prev_link_attempted = attempted;
        self.prev_link_delivered = delivered;
        let delivery_ratio = if att_delta == 0 {
            1.0
        } else {
            del_delta as f64 / att_delta as f64
        };

        // The roster is fixed at commissioning; any association request
        // arriving at the base station afterwards is from an unknown
        // radio.
        let bs_assoc = self.medium.node_stats(self.node_bs).assoc_rx;
        let unknown_assoc_delta = bs_assoc - self.prev_bs_assoc_rx;
        self.prev_bs_assoc_rx = bs_assoc;
        alerts.extend(ids.observe_radio(&RadioObservation {
            node_label: LABEL_BS,
            at: now,
            noise_dbm: None,
            delivery_ratio: 1.0,
            deauth_frames: 0,
            auth_failures: 0,
            unknown_assoc_requests: unknown_assoc_delta,
        }));

        alerts.extend(ids.observe_radio(&RadioObservation {
            node_label: LABEL_FW,
            at: now,
            noise_dbm: stats.noise_ewma.get(),
            delivery_ratio,
            deauth_frames: deauth_delta,
            auth_failures: self.auth_failures_tick,
            unknown_assoc_requests: 0,
        }));

        // Navigation cross-check: dead reckoning ≈ odometry (slow drift).
        let fix = self
            .gnss_rx
            .sample(&self.gnss_field, fw_pos, now, &mut self.rng)
            .map(|f| f.position);
        let dead_reckoned = Vec2::new(
            fw_pos.x + self.rng.normal(0.0, 0.4),
            fw_pos.y + self.rng.normal(0.0, 0.4),
        );
        alerts.extend(ids.observe_nav(&NavObservation {
            machine_label: LABEL_FW,
            at: now,
            gnss_fix: fix,
            dead_reckoned,
            moving: self.forwarder.vehicle.speed_cap > 0.0,
        }));

        // Sensor health: nearby trunks + detections are the feature
        // stream; blinding collapses it.
        // Counting variant: same set as `trees_near_segment` without
        // materializing the index vector.
        let nearby_trees =
            self.world
                .stand()
                .count_trees_near_segment(fw_pos, fw_pos + Vec2::new(0.1, 0.0), 25.0);
        let mut features = 0u32;
        for _ in 0..nearby_trees.min(60) {
            if self.rng.chance(0.85 * self.camera.health) {
                features += 1;
            }
        }
        alerts.extend(ids.observe_sensor(&SensorObservation {
            sensor_label: LABEL_FW_CAMERA,
            at: now,
            feature_count: features,
        }));

        // Correlate, record and respond.
        for alert in alerts {
            self.metrics.record_alert(alert.kind, alert.at);
            let _ = self.correlator.ingest(&alert);
            match self.response.decide_recorded(&alert, &self.recorder) {
                ResponseAction::SafeStop => {
                    self.security_stop_until = Some(now + self.config.safe_stop_hold);
                    self.metrics.security_stops += 1;
                }
                ResponseAction::RekeyAndReauth => {
                    if let Some(links) = &mut self.links {
                        links.fw.rekey();
                        links.bs_fw.rekey();
                        if let (Some(d), Some(f)) = (&mut links.drone, &mut links.fw_drone) {
                            d.rekey();
                            f.rekey();
                        }
                    }
                }
                ResponseAction::DegradedMode => {
                    self.degraded_until = Some(now + self.config.safe_stop_hold);
                }
                ResponseAction::LogOnly => {}
            }
        }
    }

    /// Grid-culled danger-zone accounting: only humans within
    /// `DANGER_RADIUS_M` of the forwarder (a conservative 2-D grid
    /// superset of the full roster restricted to that radius) are
    /// range-tested.
    ///
    /// Equivalence with the linear scan
    /// ([`Worksite::account_safety_reference`]): the culled candidate
    /// set is a subset of all humans, so its min distance is ≥ the true
    /// min; and whenever the true min is ≤ `DANGER_RADIUS_M` the argmin
    /// human is inside the query radius and therefore in the candidate
    /// set, so the two minima coincide exactly on every tick where the
    /// danger branch is taken. The branch predicate (and the recorded
    /// `distance_m`) is thus identical in both variants.
    fn account_safety(&mut self, now: SimTime, fw_pos: Vec2, limit: SpeedLimit) {
        self.world.human_grid().fill_candidates(
            fw_pos,
            DANGER_RADIUS_M,
            &mut self.candidates_scratch,
        );
        let mut nearest = f64::INFINITY;
        for &i in &self.candidates_scratch {
            nearest = nearest.min(self.world.humans()[i as usize].position.distance(fw_pos));
        }
        self.account_danger(now, nearest, limit);
    }

    /// FROZEN pre-optimization full-roster safety scan (parity oracle /
    /// bench "old" arm). Do not optimize.
    fn account_safety_reference(&mut self, now: SimTime, fw_pos: Vec2, limit: SpeedLimit) {
        let mut nearest = f64::INFINITY;
        for human in self.world.humans() {
            nearest = nearest.min(human.position.distance(fw_pos));
        }
        self.account_danger(now, nearest, limit);
    }

    fn account_danger(&mut self, now: SimTime, nearest: f64, limit: SpeedLimit) {
        if nearest <= DANGER_RADIUS_M {
            self.metrics.danger_zone_ticks += 1;
            let moving = limit != SpeedLimit::Stop
                && self.forwarder.vehicle.effective_speed(self.world.terrain()) > 0.3
                && !self.forwarder.vehicle.path_complete();
            if moving {
                self.metrics.moving_danger_ticks += 1;
                if !self.danger_in_progress {
                    self.danger_in_progress = true;
                    self.metrics.safety_incidents.push(SafetyIncident {
                        at: now,
                        distance_m: nearest,
                        speed_mps: self.forwarder.vehicle.effective_speed(self.world.terrain()),
                    });
                }
            } else {
                self.danger_in_progress = false;
            }
        } else {
            self.danger_in_progress = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityPosture;
    use silvasec_attacks::prelude::*;
    use silvasec_sim::terrain::TerrainConfig;
    use silvasec_sim::vegetation::StandConfig;
    use silvasec_sim::world::WorldConfig;

    fn small_config(security: SecurityPosture) -> WorksiteConfig {
        WorksiteConfig {
            world: WorldConfig {
                terrain: TerrainConfig {
                    size_m: 300.0,
                    relief_m: 6.0,
                    ..TerrainConfig::default()
                },
                stand: StandConfig {
                    trees_per_hectare: 300.0,
                    ..StandConfig::default()
                },
                human_count: 2,
                work_area: Vec2::new(240.0, 240.0),
                landing_area: Vec2::new(60.0, 60.0),
                ..WorldConfig::default()
            },
            security,
            ..WorksiteConfig::default()
        }
    }

    #[test]
    fn secure_site_runs_and_hauls() {
        let mut site = Worksite::new(&small_config(SecurityPosture::secure()), 1);
        site.run(SimDuration::from_secs(600));
        let m = site.metrics();
        assert_eq!(m.ticks, 1200);
        assert!(
            m.distance_m > 100.0,
            "forwarder barely moved: {} m",
            m.distance_m
        );
        assert!(m.messages_sent > 1000);
        assert!(m.delivery_ratio() > 0.8, "delivery {}", m.delivery_ratio());
        assert_eq!(m.forged_accepted, 0);
    }

    #[test]
    fn insecure_site_also_operates() {
        let mut site = Worksite::new(&small_config(SecurityPosture::insecure()), 1);
        site.run(SimDuration::from_secs(300));
        assert!(site.metrics().messages_delivered > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut site = Worksite::new(&small_config(SecurityPosture::secure()), seed);
            site.run(SimDuration::from_secs(120));
            (
                site.metrics().messages_delivered,
                site.metrics().distance_m.to_bits(),
                site.metrics().danger_zone_ticks,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn jamming_degrades_delivery_and_is_detected() {
        let mut site = Worksite::new(&small_config(SecurityPosture::secure()), 2);
        site.attack_engine_mut().add_campaign(AttackCampaign {
            kind: AttackKind::RfJamming,
            target: AttackTarget::Area {
                center: Vec2::new(150.0, 150.0),
                radius_m: 300.0,
            },
            start: SimTime::from_secs(60),
            duration: SimDuration::from_secs(120),
            intensity: 1.0,
        });
        site.run(SimDuration::from_secs(300));
        let m = site.metrics();
        assert!(
            m.delivery_ratio() < 0.9,
            "jamming had no effect: {}",
            m.delivery_ratio()
        );
        assert!(
            m.alert_count(silvasec_ids::AlertKind::Jamming) > 0,
            "jamming undetected"
        );
        let first = m.first_alert_at.get("jamming").copied().unwrap();
        assert!(first >= SimTime::from_secs(60));
        assert!(
            first <= SimTime::from_secs(120),
            "detected too late: {first}"
        );
    }

    #[test]
    fn camera_blinding_detected_and_safe_stopped() {
        let mut site = Worksite::new(&small_config(SecurityPosture::secure()), 3);
        site.attack_engine_mut().add_campaign(AttackCampaign {
            kind: AttackKind::CameraBlinding,
            target: AttackTarget::Machine {
                label: "forwarder-01".into(),
            },
            start: SimTime::from_secs(120),
            duration: SimDuration::from_secs(120),
            intensity: 1.0,
        });
        site.run(SimDuration::from_secs(360));
        let m = site.metrics();
        assert!(
            m.alert_count(silvasec_ids::AlertKind::SensorBlinding) > 0,
            "blinding undetected; alerts: {:?}",
            m.alerts
        );
        assert!(m.security_stops > 0, "no protective stop commanded");
    }

    #[test]
    fn rogue_node_association_detected() {
        let mut site = Worksite::new(&small_config(SecurityPosture::secure()), 5);
        site.attack_engine_mut().add_campaign(AttackCampaign {
            kind: AttackKind::RogueNode,
            target: AttackTarget::Link {
                spoof_as: silvasec_comms::NodeId(0),
                victim: silvasec_comms::NodeId(0),
            },
            start: SimTime::from_secs(60),
            duration: SimDuration::from_secs(60),
            intensity: 1.0,
        });
        site.run(SimDuration::from_secs(180));
        assert!(
            site.metrics()
                .alert_count(silvasec_ids::AlertKind::RogueAssociation)
                > 0,
            "rogue association undetected; alerts: {:?}",
            site.metrics().alerts
        );
    }

    #[test]
    fn telemetry_records_attack_story_deterministically() {
        let run = |seed| {
            let mut site = Worksite::new(&small_config(SecurityPosture::secure()), seed);
            site.attack_engine_mut().add_campaign(AttackCampaign {
                kind: AttackKind::RfJamming,
                target: AttackTarget::Area {
                    center: Vec2::new(150.0, 150.0),
                    radius_m: 300.0,
                },
                start: SimTime::from_secs(60),
                duration: SimDuration::from_secs(60),
                intensity: 1.0,
            });
            site.run(SimDuration::from_secs(180));
            site
        };
        let site = run(2);
        let records = site.security_records();
        // Commissioning handshakes land at t=0, the campaign's jammer
        // switch-on at t=60s, the IDS alerts and responses after that —
        // all in one globally-sequenced trace.
        assert!(records
            .iter()
            .any(|r| matches!(r.event, silvasec_telemetry::Event::HandshakeDone { .. })));
        assert!(records.iter().any(|r| matches!(
            r.event,
            silvasec_telemetry::Event::AttackPhase { started: true, .. }
        )));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, silvasec_telemetry::Event::Jam { on: true, .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, silvasec_telemetry::Event::IdsAlert { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, silvasec_telemetry::Event::Response { .. })));
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));

        // Identical seeds export byte-identical security traces.
        assert_eq!(site.export_security_jsonl(), run(2).export_security_jsonl());

        // The metrics registry saw every tick, and the flight ring's
        // drop accounting is visible in the snapshot.
        let snap = site.telemetry_snapshot();
        assert_eq!(snap.counter("worksite_ticks"), Some(360));
        assert_eq!(snap.subscribers.len(), 2);
    }

    #[test]
    fn disabled_telemetry_does_not_change_the_run() {
        let run = |enabled: bool| {
            let mut config = small_config(SecurityPosture::secure());
            config.telemetry.enabled = enabled;
            let mut site = Worksite::new(&config, 7);
            site.run(SimDuration::from_secs(120));
            (
                site.metrics().messages_delivered,
                site.metrics().distance_m.to_bits(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn replay_rejected_when_secure_accepted_when_not() {
        let campaign = AttackCampaign {
            kind: AttackKind::Replay,
            target: AttackTarget::Network,
            start: SimTime::from_secs(30),
            duration: SimDuration::from_secs(120),
            intensity: 1.0,
        };
        let run = |posture: SecurityPosture| {
            let mut site = Worksite::new(&small_config(posture), 4);
            site.attack_engine_mut().add_campaign(campaign.clone());
            site.run(SimDuration::from_secs(240));
            (site.metrics().forged_accepted, site.metrics().auth_failures)
        };
        let (secure_forged, secure_auth_failures) = run(SecurityPosture::secure());
        let (insecure_forged, _) = run(SecurityPosture::insecure());
        assert_eq!(secure_forged, 0, "secure channel accepted forged traffic");
        assert!(
            insecure_forged > 0,
            "insecure site should have accepted replayed frames"
        );
        assert!(
            secure_auth_failures > 0,
            "replays should surface as auth failures"
        );
    }

    fn jam_campaign() -> AttackCampaign {
        AttackCampaign {
            kind: AttackKind::RfJamming,
            target: AttackTarget::Area {
                center: Vec2::new(150.0, 150.0),
                radius_m: 300.0,
            },
            start: SimTime::from_secs(30),
            duration: SimDuration::from_secs(60),
            intensity: 1.0,
        }
    }

    /// Scalar + trace fingerprint of a finished run; byte-equal
    /// fingerprints mean observably identical episodes.
    fn fingerprint(site: &Worksite) -> (u64, u64, u64, u64, String, String) {
        let m = site.metrics();
        (
            m.ticks,
            m.messages_delivered,
            m.distance_m.to_bits(),
            m.danger_zone_ticks,
            site.export_security_jsonl(),
            site.export_flight_jsonl(),
        )
    }

    #[test]
    fn template_build_matches_naive_build() {
        let config = small_config(SecurityPosture::secure());
        let template = Rc::new(SitePkiTemplate::build(11, config.drone_enabled));
        let mut naive = Worksite::new(&config, 11);
        let mut fast = Worksite::with_template(&config, 11, template);
        naive.attack_engine_mut().add_campaign(jam_campaign());
        fast.attack_engine_mut().add_campaign(jam_campaign());
        naive.run(SimDuration::from_secs(120));
        fast.run(SimDuration::from_secs(120));
        assert_eq!(fingerprint(&naive), fingerprint(&fast));
    }

    #[test]
    fn reset_for_episode_matches_fresh_build() {
        let config = small_config(SecurityPosture::secure());
        // Dirty the reused site with a different episode first.
        let mut reused = Worksite::new(&config, 4);
        reused.attack_engine_mut().add_campaign(jam_campaign());
        reused.run(SimDuration::from_secs(90));
        for seed in [4u64, 9] {
            reused.reset_for_episode(&config, seed);
            reused.attack_engine_mut().add_campaign(jam_campaign());
            reused.run(SimDuration::from_secs(120));
            let mut fresh = Worksite::new(&config, seed);
            fresh.attack_engine_mut().add_campaign(jam_campaign());
            fresh.run(SimDuration::from_secs(120));
            assert_eq!(
                fingerprint(&fresh),
                fingerprint(&reused),
                "reset diverged from fresh at seed {seed}"
            );
        }
    }

    /// The optimized tick must be observably bit-identical to the
    /// frozen reference tick across postures, seeds, and a jamming
    /// campaign (which exercises frame loss, hence payload
    /// reclamation).
    #[test]
    fn tick_matches_reference_oracle() {
        for posture in [SecurityPosture::secure(), SecurityPosture::insecure()] {
            for seed in [3u64, 11] {
                for jam in [false, true] {
                    let config = small_config(posture.clone());
                    let mut fast = Worksite::new(&config, seed);
                    let mut reference = Worksite::new(&config, seed);
                    if jam {
                        fast.attack_engine_mut().add_campaign(jam_campaign());
                        reference.attack_engine_mut().add_campaign(jam_campaign());
                    }
                    fast.run(SimDuration::from_secs(150));
                    reference.run_reference(SimDuration::from_secs(150));
                    assert_eq!(
                        fingerprint(&fast),
                        fingerprint(&reference),
                        "tick diverged from reference (seed {seed}, jam {jam})"
                    );
                }
            }
        }
    }

    /// Replay campaigns consume captured frames, so the capture gate in
    /// the optimized path must still feed them; this pins parity on the
    /// one scenario where captures are observable.
    #[test]
    fn tick_matches_reference_under_replay() {
        for posture in [SecurityPosture::secure(), SecurityPosture::insecure()] {
            let config = small_config(posture);
            let replay = AttackCampaign {
                kind: AttackKind::Replay,
                target: AttackTarget::Network,
                start: SimTime::from_secs(30),
                duration: SimDuration::from_secs(120),
                intensity: 1.0,
            };
            let mut fast = Worksite::new(&config, 4);
            let mut reference = Worksite::new(&config, 4);
            fast.attack_engine_mut().add_campaign(replay.clone());
            reference.attack_engine_mut().add_campaign(replay);
            fast.run(SimDuration::from_secs(240));
            reference.run_reference(SimDuration::from_secs(240));
            assert_eq!(fingerprint(&fast), fingerprint(&reference));
        }
    }

    #[test]
    fn reset_crosses_security_postures_and_telemetry_shapes() {
        let secure = small_config(SecurityPosture::secure());
        let insecure = small_config(SecurityPosture::insecure());
        let mut quiet = small_config(SecurityPosture::secure());
        quiet.telemetry.enabled = false;

        let mut reused = Worksite::new(&secure, 6);
        reused.run(SimDuration::from_secs(60));
        for (config, seed) in [(&insecure, 8u64), (&secure, 8), (&quiet, 6), (&secure, 6)] {
            reused.reset_for_episode(config, seed);
            reused.run(SimDuration::from_secs(90));
            let mut fresh = Worksite::new(config, seed);
            fresh.run(SimDuration::from_secs(90));
            assert_eq!(fingerprint(&fresh), fingerprint(&reused));
        }
    }
}
