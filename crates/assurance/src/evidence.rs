//! Evidence items with freshness and invalidation.
//!
//! Continuous incremental assurance (Assurance 2.0, which the paper
//! cites) treats evidence as perishable: test reports age out, and
//! runtime incidents can invalidate evidence classes outright (an
//! observed jamming incident invalidates "the channel is available"
//! evidence until re-established).

use serde::{Deserialize, Serialize};

/// The state of an evidence item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvidenceStatus {
    /// Current and trusted.
    Valid,
    /// Past its freshness window; needs regeneration.
    Stale,
    /// Explicitly invalidated by an event.
    Invalidated,
}

/// One evidence item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// Stable id, e.g. `"ev.channel-tests"`.
    pub id: String,
    /// What the evidence shows.
    pub description: String,
    /// Where it came from (test run, analysis, review).
    pub source: String,
    /// Classification tags for bulk invalidation, e.g. `"comms"`.
    pub tags: Vec<String>,
    /// When it was produced (worksite ms).
    pub produced_at_ms: u64,
    /// How long it stays fresh (ms); `None` = does not expire.
    pub freshness_ms: Option<u64>,
    /// Explicit invalidation flag.
    pub invalidated: bool,
}

impl Evidence {
    /// Creates a non-expiring, valid evidence item.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        source: impl Into<String>,
    ) -> Self {
        Evidence {
            id: id.into(),
            description: description.into(),
            source: source.into(),
            tags: Vec::new(),
            produced_at_ms: 0,
            freshness_ms: None,
            invalidated: false,
        }
    }

    /// Adds classification tags (builder style).
    #[must_use]
    pub fn with_tags(mut self, tags: &[&str]) -> Self {
        self.tags = tags.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Sets production time and freshness window (builder style).
    #[must_use]
    pub fn with_freshness(mut self, produced_at_ms: u64, freshness_ms: u64) -> Self {
        self.produced_at_ms = produced_at_ms;
        self.freshness_ms = Some(freshness_ms);
        self
    }

    /// The item's status at `now_ms`.
    #[must_use]
    pub fn status(&self, now_ms: u64) -> EvidenceStatus {
        if self.invalidated {
            return EvidenceStatus::Invalidated;
        }
        match self.freshness_ms {
            Some(window) if now_ms.saturating_sub(self.produced_at_ms) > window => {
                EvidenceStatus::Stale
            }
            _ => EvidenceStatus::Valid,
        }
    }

    /// Whether the item carries `tag`.
    #[must_use]
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_by_default() {
        let e = Evidence::new("ev.1", "tests pass", "ci");
        assert_eq!(e.status(u64::MAX), EvidenceStatus::Valid);
    }

    #[test]
    fn staleness() {
        let e = Evidence::new("ev.1", "field test", "trial").with_freshness(1000, 500);
        assert_eq!(e.status(1200), EvidenceStatus::Valid);
        assert_eq!(e.status(1500), EvidenceStatus::Valid);
        assert_eq!(e.status(1501), EvidenceStatus::Stale);
        // Clock before production: still valid (no negative age).
        assert_eq!(e.status(0), EvidenceStatus::Valid);
    }

    #[test]
    fn invalidation_beats_freshness() {
        let mut e = Evidence::new("ev.1", "x", "y");
        e.invalidated = true;
        assert_eq!(e.status(0), EvidenceStatus::Invalidated);
    }

    #[test]
    fn tags() {
        let e = Evidence::new("ev.1", "x", "y").with_tags(&["comms", "availability"]);
        assert!(e.has_tag("comms"));
        assert!(!e.has_tag("nav"));
    }
}
