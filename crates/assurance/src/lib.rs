//! Security assurance cases (SACs) for the forestry worksite.
//!
//! The paper's Sec. V argues that compliance with Regulation (EU)
//! 2023/1230 will flow through *assurance cases*: structured arguments —
//! GSN (Goal Structuring Notation) or CAE (Claim-Argument-Evidence) —
//! linking claims about the system to evidence. For a system of systems
//! it proposes **modular** cases composed per constituent, and **continuous
//! incremental assurance** where runtime events invalidate evidence and
//! flag the affected arguments.
//!
//! * [`gsn`] — the typed argument graph (GSN node kinds; CAE maps onto
//!   the same structure).
//! * [`evidence`] — evidence items with freshness and invalidation.
//! * [`case`] — the assurance case: construction, well-formedness
//!   checking, coverage metrics, text/DOT rendering.
//! * [`modular`] — per-constituent modules with public claims and
//!   away-references, composed with contract checking.
//! * [`builder`] — automatic SAC construction from a TARA report (the
//!   knowledge transfer of the CASCADE approach the paper proposes).
//!
//! # Example
//!
//! ```
//! use silvasec_assurance::prelude::*;
//! use silvasec_risk::{catalog, Tara};
//!
//! let report = Tara::assess(&catalog::worksite_model());
//! let case = build_security_case(&report, "forestry worksite");
//! let defects = case.check();
//! // The generated case is well-formed by construction.
//! assert!(defects.is_empty(), "{defects:?}");
//! assert!(case.goal_coverage() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod case;
pub mod evidence;
pub mod gsn;
pub mod modular;

pub use builder::build_security_case;
pub use case::{AssuranceCase, Defect};
pub use evidence::{Evidence, EvidenceStatus};
pub use gsn::{EdgeKind, NodeId, NodeKind};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::builder::{build_interplay_case, build_security_case};
    pub use crate::case::{AssuranceCase, Defect};
    pub use crate::evidence::{Evidence, EvidenceStatus};
    pub use crate::gsn::{EdgeKind, NodeId, NodeKind};
    pub use crate::modular::{Composition, Module};
}
