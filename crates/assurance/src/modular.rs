//! Modular assurance for systems of systems.
//!
//! Each constituent (forwarder, drone, base station…) maintains its own
//! case and *exports* some goals as public claims. Other modules make
//! **away-references** to those claims. Composition checks that every
//! away-reference resolves to an exported claim in a well-formed module —
//! so when one constituent changes, only its module (plus the reference
//! check) needs re-validation, not the whole SoS argument. Experiment E4
//! measures exactly that cost difference.

use crate::case::{AssuranceCase, Defect};
use crate::gsn::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A reference from one module's argument to another module's public
/// claim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AwayReference {
    /// The local goal relying on the remote claim.
    pub local_goal: NodeId,
    /// The providing module's name.
    pub remote_module: String,
    /// The remote public claim's node id.
    pub remote_claim: NodeId,
}

/// One constituent's assurance module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (constituent id).
    pub name: String,
    /// The module's own case.
    pub case: AssuranceCase,
    /// Goals exported as public claims.
    pub public_claims: Vec<NodeId>,
    /// Claims this module relies on from other modules.
    pub away_references: Vec<AwayReference>,
}

/// A composition problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CompositionDefect {
    /// An away-reference names a module that is not in the composition.
    UnknownModule {
        /// Referencing module.
        from: String,
        /// The missing module name.
        missing: String,
    },
    /// An away-reference targets a claim the remote module does not
    /// export.
    UnexportedClaim {
        /// Referencing module.
        from: String,
        /// Providing module.
        remote: String,
        /// The claim that is not exported.
        claim: NodeId,
    },
    /// A module exports a claim that does not exist in its own case.
    PhantomExport {
        /// The module.
        module: String,
        /// The missing node.
        claim: NodeId,
    },
    /// A module's own case has structural defects.
    ModuleDefects {
        /// The module.
        module: String,
        /// Its defects.
        defects: Vec<Defect>,
    },
}

/// A composed system-of-systems assurance case.
#[derive(Debug, Clone, Default)]
pub struct Composition {
    modules: Vec<Module>,
}

impl Composition {
    /// Creates an empty composition.
    #[must_use]
    pub fn new() -> Self {
        Composition::default()
    }

    /// Adds a module.
    pub fn add_module(&mut self, module: Module) {
        self.modules.push(module);
    }

    /// The modules.
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Replaces a module by name; returns `false` if absent.
    pub fn replace_module(&mut self, module: Module) -> bool {
        if let Some(slot) = self.modules.iter_mut().find(|m| m.name == module.name) {
            *slot = module;
            true
        } else {
            false
        }
    }

    /// Checks only the inter-module contracts (away-references and
    /// exports), not module internals.
    #[must_use]
    pub fn check_contracts(&self) -> Vec<CompositionDefect> {
        let mut defects = Vec::new();
        let by_name: HashMap<&str, &Module> =
            self.modules.iter().map(|m| (m.name.as_str(), m)).collect();

        for module in &self.modules {
            for claim in &module.public_claims {
                if !module.case.nodes().iter().any(|n| &n.id == claim) {
                    defects.push(CompositionDefect::PhantomExport {
                        module: module.name.clone(),
                        claim: claim.clone(),
                    });
                }
            }
            for away in &module.away_references {
                match by_name.get(away.remote_module.as_str()) {
                    None => defects.push(CompositionDefect::UnknownModule {
                        from: module.name.clone(),
                        missing: away.remote_module.clone(),
                    }),
                    Some(remote) => {
                        if !remote.public_claims.contains(&away.remote_claim) {
                            defects.push(CompositionDefect::UnexportedClaim {
                                from: module.name.clone(),
                                remote: away.remote_module.clone(),
                                claim: away.remote_claim.clone(),
                            });
                        }
                    }
                }
            }
        }
        defects
    }

    /// Full monolithic check: every module's internals plus contracts.
    #[must_use]
    pub fn check_all(&self) -> Vec<CompositionDefect> {
        let mut defects = self.check_contracts();
        for module in &self.modules {
            let inner = module.case.check();
            if !inner.is_empty() {
                defects.push(CompositionDefect::ModuleDefects {
                    module: module.name.clone(),
                    defects: inner,
                });
            }
        }
        defects
    }

    /// Incremental check after `changed_module` was replaced: that
    /// module's internals plus the contracts. This is the modular
    /// re-validation whose cost E4 compares against [`Composition::check_all`].
    #[must_use]
    pub fn check_incremental(&self, changed_module: &str) -> Vec<CompositionDefect> {
        let mut defects = self.check_contracts();
        if let Some(module) = self.modules.iter().find(|m| m.name == changed_module) {
            let inner = module.case.check();
            if !inner.is_empty() {
                defects.push(CompositionDefect::ModuleDefects {
                    module: module.name.clone(),
                    defects: inner,
                });
            }
        }
        defects
    }

    /// Total node count across all modules (model-size metric).
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.modules.iter().map(|m| m.case.nodes().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsn::NodeKind;

    fn module(name: &str, export: &str, away: Option<(&str, &str)>) -> Module {
        let mut case = AssuranceCase::new(name);
        let g = case.add_node(NodeKind::Goal, export, format!("{name} is secure"));
        let sn = case.add_node(NodeKind::Solution, format!("{name}.sn"), "evidence");
        case.supported_by(&g, &sn);
        Module {
            name: name.into(),
            case,
            public_claims: vec![NodeId::new(export)],
            away_references: away
                .map(|(remote, claim)| {
                    vec![AwayReference {
                        local_goal: NodeId::new(export),
                        remote_module: remote.into(),
                        remote_claim: NodeId::new(claim),
                    }]
                })
                .unwrap_or_default(),
        }
    }

    #[test]
    fn sound_composition_passes() {
        let mut comp = Composition::new();
        comp.add_module(module("forwarder", "G.fw", Some(("drone", "G.drone"))));
        comp.add_module(module("drone", "G.drone", None));
        assert!(comp.check_contracts().is_empty());
        assert!(comp.check_all().is_empty());
        assert_eq!(comp.total_nodes(), 4);
    }

    #[test]
    fn unknown_module_detected() {
        let mut comp = Composition::new();
        comp.add_module(module("forwarder", "G.fw", Some(("ghost", "G.x"))));
        assert!(matches!(
            comp.check_contracts()[0],
            CompositionDefect::UnknownModule { .. }
        ));
    }

    #[test]
    fn unexported_claim_detected() {
        let mut comp = Composition::new();
        comp.add_module(module("forwarder", "G.fw", Some(("drone", "G.secret"))));
        comp.add_module(module("drone", "G.drone", None));
        assert!(matches!(
            comp.check_contracts()[0],
            CompositionDefect::UnexportedClaim { .. }
        ));
    }

    #[test]
    fn phantom_export_detected() {
        let mut m = module("drone", "G.drone", None);
        m.public_claims.push(NodeId::new("G.phantom"));
        let mut comp = Composition::new();
        comp.add_module(m);
        assert!(matches!(
            comp.check_contracts()[0],
            CompositionDefect::PhantomExport { .. }
        ));
    }

    #[test]
    fn broken_module_found_by_full_and_incremental() {
        let mut comp = Composition::new();
        comp.add_module(module("forwarder", "G.fw", None));
        let mut bad = module("drone", "G.drone", None);
        bad.case.add_node(NodeKind::Goal, "G.orphan", "unsupported");
        comp.add_module(bad);

        assert!(comp.check_all().iter().any(
            |d| matches!(d, CompositionDefect::ModuleDefects { module, .. } if module == "drone")
        ));
        assert!(comp
            .check_incremental("drone")
            .iter()
            .any(|d| matches!(d, CompositionDefect::ModuleDefects { .. })));
        // Incremental check of the *other* module does not flag drone.
        assert!(!comp
            .check_incremental("forwarder")
            .iter()
            .any(|d| matches!(d, CompositionDefect::ModuleDefects { .. })));
    }

    #[test]
    fn replace_module_swaps_in_place() {
        let mut comp = Composition::new();
        comp.add_module(module("drone", "G.drone", None));
        let replaced = comp.replace_module(module("drone", "G.drone", None));
        assert!(replaced);
        assert!(!comp.replace_module(module("ghost", "G.g", None)));
        assert_eq!(comp.modules().len(), 1);
    }
}
