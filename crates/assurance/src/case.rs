//! The assurance case: construction, checking, metrics and rendering.

use crate::evidence::{Evidence, EvidenceStatus};
use crate::gsn::{Edge, EdgeKind, Node, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// A structural defect found by [`AssuranceCase::check`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Defect {
    /// An edge references a node that does not exist.
    DanglingEdge {
        /// The missing node.
        missing: NodeId,
    },
    /// A `SupportedBy` cycle exists through this node.
    Cycle {
        /// A node on the cycle.
        on: NodeId,
    },
    /// A goal has no support and is not marked undeveloped.
    UnsupportedGoal {
        /// The offending goal.
        goal: NodeId,
    },
    /// A strategy has no supporting children.
    EmptyStrategy {
        /// The offending strategy.
        strategy: NodeId,
    },
    /// A `SupportedBy` edge points at a contextual node, or from a
    /// terminal node.
    IllTypedEdge {
        /// Source of the edge.
        from: NodeId,
        /// Target of the edge.
        to: NodeId,
    },
    /// A solution references an unregistered evidence item.
    UnknownEvidence {
        /// The solution node.
        solution: NodeId,
        /// The missing evidence id.
        evidence_id: String,
    },
    /// Duplicate node id.
    DuplicateNode {
        /// The duplicated id.
        id: NodeId,
    },
}

/// An assurance case: an argument graph plus an evidence registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssuranceCase {
    /// Case title.
    pub title: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    evidence: Vec<Evidence>,
}

impl AssuranceCase {
    /// Creates an empty case.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        AssuranceCase {
            title: title.into(),
            ..AssuranceCase::default()
        }
    }

    /// Adds a node; returns its id for chaining.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        id: impl Into<String>,
        statement: impl Into<String>,
    ) -> NodeId {
        let id = NodeId::new(id);
        self.nodes.push(Node {
            id: id.clone(),
            kind,
            statement: statement.into(),
            evidence_refs: Vec::new(),
            undeveloped: false,
        });
        id
    }

    /// Marks a goal as deliberately undeveloped.
    pub fn mark_undeveloped(&mut self, id: &NodeId) {
        if let Some(n) = self.nodes.iter_mut().find(|n| &n.id == id) {
            n.undeveloped = true;
        }
    }

    /// Connects `from` `SupportedBy` `to`.
    pub fn supported_by(&mut self, from: &NodeId, to: &NodeId) {
        self.edges.push(Edge {
            from: from.clone(),
            to: to.clone(),
            kind: EdgeKind::SupportedBy,
        });
    }

    /// Connects `from` `InContextOf` `to`.
    pub fn in_context_of(&mut self, from: &NodeId, to: &NodeId) {
        self.edges.push(Edge {
            from: from.clone(),
            to: to.clone(),
            kind: EdgeKind::InContextOf,
        });
    }

    /// Registers an evidence item.
    pub fn register_evidence(&mut self, evidence: Evidence) {
        self.evidence.push(evidence);
    }

    /// Links a solution node to an evidence item id.
    pub fn cite_evidence(&mut self, solution: &NodeId, evidence_id: &str) {
        if let Some(n) = self.nodes.iter_mut().find(|n| &n.id == solution) {
            n.evidence_refs.push(evidence_id.to_owned());
        }
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The evidence registry.
    #[must_use]
    pub fn evidence(&self) -> &[Evidence] {
        &self.evidence
    }

    fn node(&self, id: &NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| &n.id == id)
    }

    /// Checks well-formedness; empty = sound structure.
    #[must_use]
    pub fn check(&self) -> Vec<Defect> {
        let mut defects = Vec::new();

        // Duplicate ids.
        let mut seen = HashSet::new();
        for n in &self.nodes {
            if !seen.insert(&n.id) {
                defects.push(Defect::DuplicateNode { id: n.id.clone() });
            }
        }

        // Edge typing and dangling references.
        for e in &self.edges {
            let (Some(from), Some(to)) = (self.node(&e.from), self.node(&e.to)) else {
                let missing = if self.node(&e.from).is_none() {
                    e.from.clone()
                } else {
                    e.to.clone()
                };
                defects.push(Defect::DanglingEdge { missing });
                continue;
            };
            match e.kind {
                EdgeKind::SupportedBy => {
                    if !from.kind.can_be_supported() || to.kind.is_contextual() {
                        defects.push(Defect::IllTypedEdge {
                            from: e.from.clone(),
                            to: e.to.clone(),
                        });
                    }
                }
                EdgeKind::InContextOf => {
                    if !to.kind.is_contextual() {
                        defects.push(Defect::IllTypedEdge {
                            from: e.from.clone(),
                            to: e.to.clone(),
                        });
                    }
                }
            }
        }

        // Support coverage.
        let mut support_count: HashMap<&NodeId, usize> = HashMap::new();
        for e in &self.edges {
            if e.kind == EdgeKind::SupportedBy {
                *support_count.entry(&e.from).or_default() += 1;
            }
        }
        for n in &self.nodes {
            let supports = support_count.get(&n.id).copied().unwrap_or(0);
            match n.kind {
                NodeKind::Goal if supports == 0 && !n.undeveloped => {
                    defects.push(Defect::UnsupportedGoal { goal: n.id.clone() });
                }
                NodeKind::Strategy if supports == 0 => {
                    defects.push(Defect::EmptyStrategy {
                        strategy: n.id.clone(),
                    });
                }
                _ => {}
            }
        }

        // Evidence references.
        let known: HashSet<&str> = self.evidence.iter().map(|e| e.id.as_str()).collect();
        for n in &self.nodes {
            for ev in &n.evidence_refs {
                if !known.contains(ev.as_str()) {
                    defects.push(Defect::UnknownEvidence {
                        solution: n.id.clone(),
                        evidence_id: ev.clone(),
                    });
                }
            }
        }

        // Cycles in SupportedBy (iterative DFS, three-colour).
        let mut color: HashMap<&NodeId, u8> = HashMap::new();
        let adjacency: HashMap<&NodeId, Vec<&NodeId>> = {
            let mut adj: HashMap<&NodeId, Vec<&NodeId>> = HashMap::new();
            for e in &self.edges {
                if e.kind == EdgeKind::SupportedBy {
                    adj.entry(&e.from).or_default().push(&e.to);
                }
            }
            adj
        };
        for start in self.nodes.iter().map(|n| &n.id) {
            if color.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Stack of (node, next child index).
            let mut stack: Vec<(&NodeId, usize)> = vec![(start, 0)];
            color.insert(start, 1);
            while let Some((node, child_idx)) = stack.pop() {
                let children = adjacency.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if child_idx < children.len() {
                    stack.push((node, child_idx + 1));
                    let child = children[child_idx];
                    match color.get(child).copied().unwrap_or(0) {
                        0 => {
                            color.insert(child, 1);
                            stack.push((child, 0));
                        }
                        1 => {
                            defects.push(Defect::Cycle { on: child.clone() });
                        }
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                }
            }
        }

        defects
    }

    /// Fraction of goals that are supported or explicitly undeveloped=false
    /// — i.e. developed goals / all goals.
    #[must_use]
    pub fn goal_coverage(&self) -> f64 {
        let goals: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Goal)
            .collect();
        if goals.is_empty() {
            return 1.0;
        }
        let supported: HashSet<&NodeId> = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::SupportedBy)
            .map(|e| &e.from)
            .collect();
        let developed = goals.iter().filter(|g| supported.contains(&g.id)).count();
        developed as f64 / goals.len() as f64
    }

    /// Fraction of solutions whose every cited evidence item is valid at
    /// `now_ms` (solutions citing nothing count as unbacked).
    #[must_use]
    pub fn evidence_coverage(&self, now_ms: u64) -> f64 {
        let solutions: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Solution)
            .collect();
        if solutions.is_empty() {
            return 1.0;
        }
        let by_id: HashMap<&str, &Evidence> =
            self.evidence.iter().map(|e| (e.id.as_str(), e)).collect();
        let backed = solutions
            .iter()
            .filter(|s| {
                !s.evidence_refs.is_empty()
                    && s.evidence_refs.iter().all(|id| {
                        by_id
                            .get(id.as_str())
                            .is_some_and(|e| e.status(now_ms) == EvidenceStatus::Valid)
                    })
            })
            .count();
        backed as f64 / solutions.len() as f64
    }

    /// Invalidates all evidence carrying `tag`; returns how many items
    /// were hit (continuous assurance: an incident voids an evidence
    /// class).
    pub fn invalidate_evidence_tagged(&mut self, tag: &str) -> usize {
        let mut hit = 0;
        for e in &mut self.evidence {
            if e.has_tag(tag) && !e.invalidated {
                e.invalidated = true;
                hit += 1;
            }
        }
        hit
    }

    /// Goals whose argument subtree cites at least one non-valid
    /// evidence item at `now_ms` — the claims currently in doubt.
    #[must_use]
    pub fn goals_in_doubt(&self, now_ms: u64) -> Vec<NodeId> {
        let by_id: HashMap<&str, &Evidence> =
            self.evidence.iter().map(|e| (e.id.as_str(), e)).collect();
        let bad_solutions: HashSet<&NodeId> = self
            .nodes
            .iter()
            .filter(|n| {
                n.kind == NodeKind::Solution
                    && (n.evidence_refs.is_empty()
                        || n.evidence_refs.iter().any(|id| {
                            by_id
                                .get(id.as_str())
                                .is_none_or(|e| e.status(now_ms) != EvidenceStatus::Valid)
                        }))
            })
            .map(|n| &n.id)
            .collect();

        // Reverse reachability over SupportedBy.
        let mut parents: HashMap<&NodeId, Vec<&NodeId>> = HashMap::new();
        for e in &self.edges {
            if e.kind == EdgeKind::SupportedBy {
                parents.entry(&e.to).or_default().push(&e.from);
            }
        }
        let mut in_doubt: HashSet<&NodeId> = HashSet::new();
        let mut frontier: Vec<&NodeId> = bad_solutions.into_iter().collect();
        while let Some(node) = frontier.pop() {
            for parent in parents.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if in_doubt.insert(parent) {
                    frontier.push(parent);
                }
            }
        }
        let mut out: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Goal && in_doubt.contains(&n.id))
            .map(|n| n.id.clone())
            .collect();
        out.sort();
        out
    }

    /// Renders the case as an indented text outline (GSN notation).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!("Assurance case: {}\n", self.title);
        let children: HashMap<&NodeId, Vec<&Edge>> = {
            let mut m: HashMap<&NodeId, Vec<&Edge>> = HashMap::new();
            for e in &self.edges {
                m.entry(&e.from).or_default().push(e);
            }
            m
        };
        let targets: HashSet<&NodeId> = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::SupportedBy)
            .map(|e| &e.to)
            .collect();
        let roots: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Goal && !targets.contains(&n.id))
            .collect();
        let mut visited = HashSet::new();
        for root in roots {
            self.render_node(&mut out, root, 0, &children, &mut visited);
        }
        out
    }

    fn render_node<'a>(
        &'a self,
        out: &mut String,
        node: &'a Node,
        depth: usize,
        children: &HashMap<&NodeId, Vec<&'a Edge>>,
        visited: &mut HashSet<&'a NodeId>,
    ) {
        let _ = writeln!(
            out,
            "{}[{:?}] {}: {}{}",
            "  ".repeat(depth),
            node.kind,
            node.id,
            node.statement,
            if node.undeveloped {
                " (undeveloped)"
            } else {
                ""
            }
        );
        if !visited.insert(&node.id) {
            return;
        }
        if let Some(edges) = children.get(&node.id) {
            for e in edges {
                if let Some(child) = self.node(&e.to) {
                    self.render_node(out, child, depth + 1, children, visited);
                }
            }
        }
    }

    /// Renders the case in Graphviz DOT format.
    #[must_use]
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph assurance_case {\n  rankdir=TB;\n");
        for n in &self.nodes {
            let shape = match n.kind {
                NodeKind::Goal => "box",
                NodeKind::Strategy => "parallelogram",
                NodeKind::Solution => "circle",
                NodeKind::Context => "box, style=rounded",
                NodeKind::Assumption | NodeKind::Justification => "ellipse",
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{}\\n{}\"];",
                n.id,
                n.id,
                n.statement.replace('"', "'")
            );
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::SupportedBy => "solid",
                EdgeKind::InContextOf => "dashed",
            };
            let _ = writeln!(out, "  \"{}\" -> \"{}\" [style={style}];", e.from, e.to);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// goal → strategy → (goal→solution, solution)
    fn small_case() -> AssuranceCase {
        let mut c = AssuranceCase::new("test case");
        let g1 = c.add_node(NodeKind::Goal, "G1", "the system is secure");
        let s1 = c.add_node(NodeKind::Strategy, "S1", "argue over threats");
        let g2 = c.add_node(NodeKind::Goal, "G2", "jamming is mitigated");
        let sn1 = c.add_node(NodeKind::Solution, "Sn1", "IDS test report");
        let sn2 = c.add_node(NodeKind::Solution, "Sn2", "channel test report");
        let ctx = c.add_node(NodeKind::Context, "C1", "worksite per Figure 1");
        c.supported_by(&g1, &s1);
        c.supported_by(&s1, &g2);
        c.supported_by(&s1, &sn2);
        c.supported_by(&g2, &sn1);
        c.in_context_of(&g1, &ctx);
        c.register_evidence(
            Evidence::new("ev.ids", "IDS detects jamming", "sim").with_tags(&["comms"]),
        );
        c.register_evidence(Evidence::new("ev.chan", "handshake verified", "test"));
        c.cite_evidence(&sn1, "ev.ids");
        c.cite_evidence(&sn2, "ev.chan");
        c
    }

    #[test]
    fn well_formed_case_passes() {
        assert!(small_case().check().is_empty());
        assert_eq!(small_case().goal_coverage(), 1.0);
        assert_eq!(small_case().evidence_coverage(0), 1.0);
    }

    #[test]
    fn unsupported_goal_detected() {
        let mut c = small_case();
        c.add_node(NodeKind::Goal, "G3", "orphan goal");
        let defects = c.check();
        assert!(defects
            .iter()
            .any(|d| matches!(d, Defect::UnsupportedGoal { goal } if goal.0 == "G3")));
        // Marked undeveloped, it becomes acceptable.
        c.mark_undeveloped(&NodeId::new("G3"));
        assert!(c.check().is_empty());
        assert!(c.goal_coverage() < 1.0);
    }

    #[test]
    fn cycle_detected() {
        let mut c = small_case();
        // G2 supported by G1 closes a loop.
        c.supported_by(&NodeId::new("G2"), &NodeId::new("G1"));
        assert!(c.check().iter().any(|d| matches!(d, Defect::Cycle { .. })));
    }

    #[test]
    fn ill_typed_edges_detected() {
        let mut c = small_case();
        // Solution cannot support.
        c.supported_by(&NodeId::new("Sn1"), &NodeId::new("G2"));
        assert!(c
            .check()
            .iter()
            .any(|d| matches!(d, Defect::IllTypedEdge { .. })));

        let mut c2 = small_case();
        // SupportedBy onto a context is ill-typed.
        c2.supported_by(&NodeId::new("G1"), &NodeId::new("C1"));
        assert!(c2
            .check()
            .iter()
            .any(|d| matches!(d, Defect::IllTypedEdge { .. })));
    }

    #[test]
    fn dangling_edge_detected() {
        let mut c = small_case();
        c.supported_by(&NodeId::new("G1"), &NodeId::new("nope"));
        assert!(c
            .check()
            .iter()
            .any(|d| matches!(d, Defect::DanglingEdge { .. })));
    }

    #[test]
    fn unknown_evidence_detected() {
        let mut c = small_case();
        c.cite_evidence(&NodeId::new("Sn1"), "ev.ghost");
        assert!(c
            .check()
            .iter()
            .any(|d| matches!(d, Defect::UnknownEvidence { evidence_id, .. } if evidence_id == "ev.ghost")));
    }

    #[test]
    fn duplicate_node_detected() {
        let mut c = small_case();
        c.add_node(NodeKind::Goal, "G1", "duplicate");
        assert!(c
            .check()
            .iter()
            .any(|d| matches!(d, Defect::DuplicateNode { .. })));
    }

    #[test]
    fn invalidation_propagates_to_goals() {
        let mut c = small_case();
        assert!(c.goals_in_doubt(0).is_empty());
        let hit = c.invalidate_evidence_tagged("comms");
        assert_eq!(hit, 1);
        let doubted = c.goals_in_doubt(0);
        // Sn1 backs G2 which supports S1 which supports G1: both goals.
        assert_eq!(doubted, vec![NodeId::new("G1"), NodeId::new("G2")]);
        assert!(c.evidence_coverage(0) < 1.0);
    }

    #[test]
    fn rendering_contains_structure() {
        let c = small_case();
        let text = c.render_text();
        assert!(text.contains("G1"));
        assert!(text.contains("  [Strategy] S1"));
        let dot = c.render_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"G1\" -> \"S1\""));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn empty_case_is_vacuously_complete() {
        let c = AssuranceCase::new("empty");
        assert!(c.check().is_empty());
        assert_eq!(c.goal_coverage(), 1.0);
        assert_eq!(c.evidence_coverage(0), 1.0);
    }
}
