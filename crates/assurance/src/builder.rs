//! Automatic SAC construction from risk-assessment output — the
//! knowledge transfer of the asset-driven CASCADE approach the paper
//! proposes for forestry.

use crate::case::AssuranceCase;
use crate::evidence::Evidence;
use crate::gsn::NodeKind;
use silvasec_risk::tara::TaraReport;

/// Builds the worksite security assurance case from a TARA report.
///
/// Structure:
///
/// ```text
/// G.root: the <scope> is acceptably secure for operation
/// ├── S.risks: argue over every identified risk and its treatment
/// │   ├── G.<threat>: threat scenario <id> is adequately treated
/// │   │   └── Sn.<threat>: control verification evidence   (Reduce)
/// │   │   (Retain/Share risks: goal carries the decision rationale)
/// └── S.interplay: argue the safety–security interplay is controlled
///     └── G.int.<threat>.<hazard> per finding
/// ```
///
/// Evidence items are generated per requirement, tagged with their
/// candidate control tags so runtime incidents can invalidate exactly
/// the affected evidence class.
#[must_use]
pub fn build_security_case(report: &TaraReport, scope: &str) -> AssuranceCase {
    let mut case = AssuranceCase::new(format!("security assurance case: {scope}"));
    let root = case.add_node(
        NodeKind::Goal,
        "G.root",
        format!("the {scope} is acceptably secure for operation"),
    );
    let ctx = case.add_node(
        NodeKind::Context,
        "C.scope",
        "partially autonomous worksite: autonomous forwarder, manned harvester, observation drone",
    );
    case.in_context_of(&root, &ctx);

    let s_risks = case.add_node(
        NodeKind::Strategy,
        "S.risks",
        "argument over every identified threat scenario and its risk treatment",
    );
    case.supported_by(&root, &s_risks);
    let j = case.add_node(
        NodeKind::Justification,
        "J.tara",
        "risk identification follows the forestry-adapted ISO/SAE 21434 TARA",
    );
    case.in_context_of(&s_risks, &j);

    let requirements: Vec<_> = report.requirements().collect();
    for risk in &report.risks {
        let goal = case.add_node(
            NodeKind::Goal,
            format!("G.{}", risk.threat_id),
            format!(
                "threat scenario {} (risk {}) is adequately treated ({:?})",
                risk.threat_id, risk.risk.0, risk.treatment
            ),
        );
        case.supported_by(&s_risks, &goal);

        if let Some(req) = requirements.iter().find(|r| r.threat_id == risk.threat_id) {
            let solution = case.add_node(
                NodeKind::Solution,
                format!("Sn.{}", risk.threat_id),
                format!("verification evidence for {}", req.id),
            );
            case.supported_by(&goal, &solution);
            for control in &req.candidate_controls {
                let ev_id = format!("ev.{}.{}", risk.threat_id, control);
                case.register_evidence(
                    Evidence::new(
                        ev_id.clone(),
                        format!("control '{control}' verified against {}", risk.threat_id),
                        "simulation campaign",
                    )
                    .with_tags(&[control.as_str()]),
                );
                case.cite_evidence(&solution, &ev_id);
            }
        } else {
            // Retained or shared risks: the decision itself is the
            // support, recorded as a solution citing the assessment.
            let solution = case.add_node(
                NodeKind::Solution,
                format!("Sn.{}", risk.threat_id),
                format!(
                    "risk acceptance record for {} ({:?})",
                    risk.threat_id, risk.treatment
                ),
            );
            case.supported_by(&goal, &solution);
            let ev_id = format!("ev.{}.acceptance", risk.threat_id);
            case.register_evidence(
                Evidence::new(
                    ev_id.clone(),
                    format!("documented {:?} decision", risk.treatment),
                    "risk assessment",
                )
                .with_tags(&["acceptance"]),
            );
            case.cite_evidence(&solution, &ev_id);
        }
    }

    if !report.interplay_findings.is_empty() {
        build_interplay_case(&mut case, report);
    }
    case
}

/// Adds the safety–security interplay argument branch to `case`.
///
/// Exposed separately so scenario code can attach interplay arguments to
/// existing (e.g. safety) cases.
pub fn build_interplay_case(case: &mut AssuranceCase, report: &TaraReport) {
    let root = crate::gsn::NodeId::new("G.root");
    let s = case.add_node(
        NodeKind::Strategy,
        "S.interplay",
        "argument that security compromises cannot silently defeat safety functions",
    );
    case.supported_by(&root, &s);

    for finding in &report.interplay_findings {
        let goal = case.add_node(
            NodeKind::Goal,
            format!("G.int.{}.{}", finding.threat_id, finding.hazard_id),
            format!(
                "hazard {} remains controlled when threat {} is active (required {} → {})",
                finding.hazard_id, finding.threat_id, finding.baseline_pl, finding.compromised_pl
            ),
        );
        case.supported_by(&s, &goal);
        let solution = case.add_node(
            NodeKind::Solution,
            format!("Sn.int.{}.{}", finding.threat_id, finding.hazard_id),
            "attack-injection simulation: safety response verified under active attack",
        );
        case.supported_by(&goal, &solution);
        let ev_id = format!("ev.int.{}.{}", finding.threat_id, finding.hazard_id);
        case.register_evidence(
            Evidence::new(
                ev_id.clone(),
                "attack campaign run with safety supervisor engaged",
                "simulation campaign",
            )
            .with_tags(&["interplay", "safe-stop"]),
        );
        case.cite_evidence(&solution, &ev_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silvasec_risk::{catalog, Tara};

    fn case() -> AssuranceCase {
        build_security_case(&Tara::assess(&catalog::worksite_model()), "test worksite")
    }

    #[test]
    fn generated_case_is_well_formed() {
        let c = case();
        assert!(c.check().is_empty(), "{:?}", c.check());
    }

    #[test]
    fn one_goal_per_risk() {
        let report = Tara::assess(&catalog::worksite_model());
        let c = case();
        let risk_goals = c
            .nodes()
            .iter()
            .filter(|n| n.id.0.starts_with("G.ts."))
            .count();
        assert_eq!(risk_goals, report.risks.len());
    }

    #[test]
    fn interplay_branch_present() {
        let c = case();
        assert!(c.nodes().iter().any(|n| n.id.0 == "S.interplay"));
        assert!(c.nodes().iter().any(|n| n.id.0.starts_with("G.int.")));
    }

    #[test]
    fn full_coverage_when_fresh() {
        let c = case();
        assert_eq!(c.goal_coverage(), 1.0);
        assert_eq!(c.evidence_coverage(0), 1.0);
    }

    #[test]
    fn control_tag_invalidation_flags_goals() {
        let mut c = case();
        let hit = c.invalidate_evidence_tagged("ids");
        assert!(hit > 0);
        let doubted = c.goals_in_doubt(0);
        assert!(!doubted.is_empty());
        assert!(
            doubted.iter().any(|g| g.0 == "G.root"),
            "root must be in doubt"
        );
    }

    #[test]
    fn rendering_is_nonempty() {
        let c = case();
        assert!(c.render_text().lines().count() > 10);
        assert!(c.render_dot().contains("digraph"));
    }
}
