//! The typed argument graph underlying GSN and CAE.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node identifier within one assurance case.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub String);

impl NodeId {
    /// Creates an id.
    pub fn new(id: impl Into<String>) -> Self {
        NodeId(id.into())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// GSN node kinds (CAE's Claim/Argument/Evidence map to
/// Goal/Strategy/Solution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A claim to be supported (GSN goal / CAE claim).
    Goal,
    /// An argument decomposing a claim (GSN strategy / CAE argument).
    Strategy,
    /// An evidence reference terminating an argument branch (GSN
    /// solution / CAE evidence).
    Solution,
    /// Contextual statement scoping a claim.
    Context,
    /// An assumption the argument rests on.
    Assumption,
    /// A justification for an argument step.
    Justification,
}

impl NodeKind {
    /// Whether this kind can carry `SupportedBy` children.
    #[must_use]
    pub fn can_be_supported(self) -> bool {
        matches!(self, NodeKind::Goal | NodeKind::Strategy)
    }

    /// Whether this kind terminates an argument branch.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, NodeKind::Solution)
    }

    /// Whether this kind attaches via `InContextOf`.
    #[must_use]
    pub fn is_contextual(self) -> bool {
        matches!(
            self,
            NodeKind::Context | NodeKind::Assumption | NodeKind::Justification
        )
    }

    /// The CAE name of this kind.
    #[must_use]
    pub fn cae_name(self) -> &'static str {
        match self {
            NodeKind::Goal => "Claim",
            NodeKind::Strategy => "Argument",
            NodeKind::Solution => "Evidence",
            NodeKind::Context => "Context",
            NodeKind::Assumption => "Assumption",
            NodeKind::Justification => "Justification",
        }
    }
}

/// A node of the argument graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Its kind.
    pub kind: NodeKind,
    /// The statement text.
    pub statement: String,
    /// Evidence item ids backing this node (solutions only).
    pub evidence_refs: Vec<String>,
    /// Marked deliberately undeveloped (GSN diamond).
    pub undeveloped: bool,
}

/// Edge kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Argument support (goal → strategy/goal/solution,
    /// strategy → goal/solution).
    SupportedBy,
    /// Contextual attachment (→ context/assumption/justification).
    InContextOf,
}

/// A directed edge of the argument graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Goal.can_be_supported());
        assert!(NodeKind::Strategy.can_be_supported());
        assert!(!NodeKind::Solution.can_be_supported());
        assert!(NodeKind::Solution.is_terminal());
        assert!(NodeKind::Context.is_contextual());
        assert!(NodeKind::Assumption.is_contextual());
        assert!(!NodeKind::Goal.is_contextual());
    }

    #[test]
    fn cae_mapping() {
        assert_eq!(NodeKind::Goal.cae_name(), "Claim");
        assert_eq!(NodeKind::Strategy.cae_name(), "Argument");
        assert_eq!(NodeKind::Solution.cae_name(), "Evidence");
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new("G1").to_string(), "G1");
    }
}
