//! SilvaSec: cybersecurity and safety toolkit for autonomous forestry
//! worksites.
//!
//! This is the facade crate of the SilvaSec workspace, the executable
//! reproduction of *"Cybersecurity Pathways Towards CE-Certified
//! Autonomous Forestry Machines"* (DSN 2024). It re-exports the substrate
//! crates and adds two things of its own:
//!
//! * [`certify`] — the CE-certification pipeline: risk assessment →
//!   derived requirements → control verification → assurance case →
//!   conformity verdict;
//! * [`experiments`] — the scenario library behind every table and
//!   figure of the evaluation (see `EXPERIMENTS.md`).
//!
//! # Crate map
//!
//! | Layer | Crate |
//! |---|---|
//! | Crypto primitives | [`silvasec_crypto`] |
//! | PKI | [`silvasec_pki`] |
//! | Verified boot | [`silvasec_secure_boot`] |
//! | World simulation | [`silvasec_sim`] |
//! | Machines & sensors | [`silvasec_machines`] |
//! | Radio medium | [`silvasec_comms`] |
//! | Secure channel | [`silvasec_channel`] |
//! | Intrusion detection | [`silvasec_ids`] |
//! | Attack injection | [`silvasec_attacks`] |
//! | Risk methodology | [`silvasec_risk`] |
//! | Assurance cases | [`silvasec_assurance`] |
//! | Worksite orchestration | [`silvasec_sos`] |
//! | Flight recorder & metrics | [`silvasec_telemetry`] |
//! | Fleet operations & OTA | [`silvasec_fleet`] |
//! | Incident-response workflows | [`silvasec_ops`] |
//! | Generative TARA engine | [`silvasec_tara`] |
//!
//! # Quickstart
//!
//! ```
//! use silvasec::prelude::*;
//! use silvasec::certify::certify_worksite;
//!
//! // Assess, harden and certify the paper's Figure 1/2 worksite.
//! let report = certify_worksite(true);
//! assert!(report.verdict != Verdict::Fail);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod experiments;

pub use silvasec_sim::sweep;

pub use silvasec_assurance as assurance;
pub use silvasec_attacks as attacks;
pub use silvasec_channel as channel;
pub use silvasec_comms as comms;
pub use silvasec_crypto as crypto;
pub use silvasec_fleet as fleet;
pub use silvasec_ids as ids;
pub use silvasec_machines as machines;
pub use silvasec_ops as ops;
pub use silvasec_pki as pki;
pub use silvasec_risk as risk;
pub use silvasec_secure_boot as secure_boot;
pub use silvasec_sim as sim;
pub use silvasec_sos as sos;
pub use silvasec_tara as tara;
pub use silvasec_telemetry as telemetry;

/// Convenient glob import across the whole toolkit.
pub mod prelude {
    pub use crate::certify::{certify_worksite, CertificationReport, Verdict};
    // `NodeId` exists in both the assurance (GSN) and comms (radio)
    // preludes; import those preludes directly when you need both names.
    pub use silvasec_assurance::prelude::{
        build_interplay_case, build_security_case, AssuranceCase, Composition, Defect, EdgeKind,
        Evidence, EvidenceStatus, Module, NodeKind,
    };
    pub use silvasec_attacks::prelude::*;
    pub use silvasec_channel::prelude::*;
    pub use silvasec_comms::prelude::*;
    pub use silvasec_fleet::prelude::*;
    pub use silvasec_ids::prelude::*;
    pub use silvasec_machines::prelude::*;
    pub use silvasec_pki::prelude::*;
    pub use silvasec_risk::prelude::*;
    pub use silvasec_secure_boot::prelude::*;
    pub use silvasec_sim::prelude::*;
    pub use silvasec_sos::prelude::*;
    pub use silvasec_tara::prelude::*;
    pub use silvasec_telemetry::prelude::*;
}
