//! The CE-certification pipeline.
//!
//! Regulation (EU) 2023/1230 requires a demonstrably safe machine,
//! including protection against corruption (its cybersecurity essential
//! requirements). No harmonised standard exists yet, so the paper's route
//! is: run the combined risk assessment, derive and deploy controls,
//! verify security-level targets per zone, and carry the residual
//! argument in an assurance case. This module executes that route over
//! the worksite model and renders a conformity verdict with the open-gap
//! list an assessor would want.

use serde::{Deserialize, Serialize};
use silvasec_assurance::builder::build_security_case;
use silvasec_assurance::case::AssuranceCase;
use silvasec_risk::catalog;
use silvasec_risk::iec62443::control_catalog;
use silvasec_risk::tara::{RiskLevel, Tara, TaraReport, Treatment};

/// The conformity verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// All gates passed.
    Pass,
    /// Operable with documented open items.
    ConditionalPass,
    /// Not certifiable in this state.
    Fail,
}

/// One open item blocking or conditioning the verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenItem {
    /// Which pipeline gate raised it.
    pub gate: String,
    /// Description.
    pub description: String,
    /// Whether it blocks certification outright.
    pub blocking: bool,
}

/// The full certification report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertificationReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Open items found by the gates.
    pub open_items: Vec<OpenItem>,
    /// Number of assessed risks.
    pub risk_count: usize,
    /// Risks at level ≥ 4 (must be reduced).
    pub high_risk_count: usize,
    /// Derived security requirements.
    pub requirement_count: usize,
    /// Zone security-level gaps (zone id, FR shortfalls).
    pub zone_gaps: Vec<(String, usize)>,
    /// Assurance-case goal coverage.
    pub goal_coverage: f64,
    /// Assurance-case evidence coverage.
    pub evidence_coverage: f64,
}

/// Runs the pipeline over the built-in worksite model.
///
/// With `secure`, the zones carry the full control deployment; without,
/// the undefended baseline is assessed (and fails).
#[must_use]
pub fn certify_worksite(secure: bool) -> CertificationReport {
    let model = catalog::worksite_model();
    let tara = Tara::assess(&model);
    let case = build_security_case(&tara, "forestry worksite");
    let zones = catalog::worksite_zones(secure);
    certify(&tara, &case, &zones)
}

/// Runs the pipeline over explicit artifacts.
#[must_use]
pub fn certify(
    tara: &TaraReport,
    case: &AssuranceCase,
    zones: &[silvasec_risk::iec62443::Zone],
) -> CertificationReport {
    let mut open_items = Vec::new();

    // Gate 1: model integrity.
    for dangling in &tara.dangling_references {
        open_items.push(OpenItem {
            gate: "model-integrity".into(),
            description: format!("dangling reference: {dangling}"),
            blocking: true,
        });
    }

    // Gate 2: all high risks must be treated by reduction (or avoidance).
    let high_risks = tara.risks_at_or_above(RiskLevel(4));
    for risk in &high_risks {
        if !matches!(risk.treatment, Treatment::Reduce | Treatment::Avoid) {
            open_items.push(OpenItem {
                gate: "risk-treatment".into(),
                description: format!(
                    "risk {} on {} is {:?}, but level {} demands reduction",
                    risk.risk.0, risk.threat_id, risk.treatment, risk.risk.0
                ),
                blocking: true,
            });
        }
    }

    // Gate 3: zone security-level targets.
    let controls = control_catalog();
    let mut zone_gaps = Vec::new();
    for zone in zones {
        let gap = zone.gap(&controls);
        if !gap.is_empty() {
            open_items.push(OpenItem {
                gate: "iec62443-sl".into(),
                description: format!(
                    "zone {} misses its SL target on {} foundational requirements",
                    zone.id,
                    gap.len()
                ),
                blocking: false,
            });
        }
        zone_gaps.push((zone.id.clone(), gap.len()));
    }

    // Gate 4: assurance-case soundness and coverage.
    let defects = case.check();
    for defect in &defects {
        open_items.push(OpenItem {
            gate: "assurance-structure".into(),
            description: format!("{defect:?}"),
            blocking: true,
        });
    }
    let goal_coverage = case.goal_coverage();
    let evidence_coverage = case.evidence_coverage(0);
    if evidence_coverage < 1.0 {
        open_items.push(OpenItem {
            gate: "assurance-evidence".into(),
            description: format!("evidence coverage {evidence_coverage:.2} below 1.0"),
            blocking: false,
        });
    }

    let verdict = if open_items.iter().any(|i| i.blocking) {
        Verdict::Fail
    } else if open_items.is_empty() {
        Verdict::Pass
    } else {
        Verdict::ConditionalPass
    };

    CertificationReport {
        verdict,
        open_items,
        risk_count: tara.risks.len(),
        high_risk_count: high_risks.len(),
        requirement_count: tara.requirements().count(),
        zone_gaps,
        goal_coverage,
        evidence_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secure_worksite_passes() {
        let report = certify_worksite(true);
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "open items: {:?}",
            report.open_items
        );
        assert!(report.risk_count >= 10);
        assert!(report.high_risk_count >= 3);
        assert!(report.zone_gaps.iter().all(|(_, g)| *g == 0));
    }

    #[test]
    fn insecure_worksite_does_not_pass() {
        let report = certify_worksite(false);
        assert_ne!(report.verdict, Verdict::Pass);
        assert!(report.open_items.iter().any(|i| i.gate == "iec62443-sl"));
    }

    #[test]
    fn broken_case_fails() {
        let model = catalog::worksite_model();
        let tara = Tara::assess(&model);
        let mut case = build_security_case(&tara, "w");
        // Sabotage: add an unsupported goal.
        case.add_node(
            silvasec_assurance::gsn::NodeKind::Goal,
            "G.orphan",
            "unsupported",
        );
        let report = certify(&tara, &case, &catalog::worksite_zones(true));
        assert_eq!(report.verdict, Verdict::Fail);
        assert!(report
            .open_items
            .iter()
            .any(|i| i.gate == "assurance-structure"));
    }

    #[test]
    fn report_serializes() {
        let report = certify_worksite(true);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("verdict"));
    }
}
