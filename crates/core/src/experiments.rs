//! The scenario library behind every table and figure of the evaluation.
//!
//! Each public function here is one experiment from `EXPERIMENTS.md`; the
//! binaries in `silvasec-bench` call these and print the rows. Keeping
//! the logic in the library makes the experiments unit-testable and
//! reusable from the Criterion benches.

use serde::{Deserialize, Serialize};
use silvasec_assurance::case::AssuranceCase;
use silvasec_assurance::gsn::NodeKind;
use silvasec_assurance::modular::{AwayReference, Composition, Module};
use silvasec_attacks::prelude::*;
use silvasec_ids::AlertKind;
use silvasec_machines::drone::{Drone, DroneConfig};
use silvasec_machines::prelude::*;
use silvasec_risk::catalog;
use silvasec_risk::continuous::{alert_class_to_attack_class, ContinuousAssessment};
use silvasec_risk::tara::{RiskLevel, Tara};
use silvasec_sim::geom::Vec2;
use silvasec_sim::prelude::*;
use silvasec_sim::terrain::TerrainConfig;
use silvasec_sim::vegetation::StandConfig;
use silvasec_sos::metrics::WorksiteMetrics;
use silvasec_sos::prelude::*;
use silvasec_telemetry::{Event, Record};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Figure 2: occlusion study
// ---------------------------------------------------------------------

/// One row of the Figure 2 occlusion sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OcclusionRow {
    /// Stand density, trees per hectare.
    pub density: f64,
    /// Terrain relief, metres.
    pub relief_m: f64,
    /// Coverage with forwarder sensors only (fraction of in-range
    /// human-ticks detected).
    pub forwarder_coverage: f64,
    /// Coverage with the drone's point of view fused in.
    pub combined_coverage: f64,
    /// Mean time to first detection after a worker enters range,
    /// forwarder only (seconds; worst-case capped at the episode length).
    pub forwarder_ttd_s: f64,
    /// Mean time to first detection, combined (seconds).
    pub combined_ttd_s: f64,
}

/// Runs the Figure 2 occlusion experiment for one parameter point.
///
/// A stationary forwarder works at the stand centre with an escort drone
/// overhead; workers move with a strong work-area bias. Coverage is the
/// fraction of (human, tick) samples within detection range that were
/// detected; time-to-detect is measured per approach episode.
#[must_use]
pub fn occlusion_point(
    density: f64,
    relief_m: f64,
    seed: u64,
    duration: SimDuration,
) -> OcclusionRow {
    let eval_radius = 40.0;
    let config = WorldConfig {
        terrain: TerrainConfig {
            size_m: 300.0,
            relief_m,
            ..TerrainConfig::default()
        },
        stand: StandConfig {
            trees_per_hectare: density,
            ..StandConfig::default()
        },
        human_count: 4,
        human: silvasec_sim::humans::HumanConfig {
            work_area_bias: 0.7,
            ..silvasec_sim::humans::HumanConfig::default()
        },
        // Workers cluster around the felling front ~25 m from the
        // machine, so their approaches cross terrain features and tree
        // cover on the way in — the Figure 2 geometry.
        work_area: Vec2::new(175.0, 150.0),
        landing_area: Vec2::new(40.0, 40.0),
        ..WorldConfig::default()
    };
    let mut world = World::generate(&config, SimRng::from_seed(seed));
    let mut rng = SimRng::from_seed(seed ^ 0x5eed);

    let machine_pos = Vec2::new(150.0, 150.0);
    let camera = PeopleSensor::new(SensorKind::Camera, 2.8);
    let lidar = PeopleSensor::new(SensorKind::Lidar, 3.2);
    let mut drone = Drone::new(machine_pos, DroneConfig::default(), &world);

    let tick = SimDuration::from_millis(500);
    let ticks = duration.as_millis() / tick.as_millis();

    // Per-human, per-mode episode state.
    #[derive(Default, Clone)]
    struct Episode {
        in_range: bool,
        ticks_waiting_fw: u64,
        ticks_waiting_comb: u64,
        detected_fw: bool,
        detected_comb: bool,
    }
    let mut episodes: HashMap<u32, Episode> = HashMap::new();
    let mut ttd_fw: Vec<f64> = Vec::new();
    let mut ttd_comb: Vec<f64> = Vec::new();
    let (mut in_range_ticks, mut fw_hits, mut comb_hits) = (0u64, 0u64, 0u64);

    // The machine sweeps its heading like a working forwarder.
    let mut heading = 0.0f64;

    for t in 0..ticks {
        world.step(tick);
        drone.step(&world, machine_pos, tick);
        heading = (heading + 0.2) % std::f64::consts::TAU;

        let cam = camera.detect(&world, machine_pos, heading, &mut rng);
        let lid = lidar.detect(&world, machine_pos, heading, &mut rng);
        let air = drone.detect(&world, &mut rng);
        let fw_set: Vec<u32> = cam.iter().chain(lid.iter()).map(|d| d.human_id.0).collect();
        let comb_set: Vec<u32> = fw_set
            .iter()
            .copied()
            .chain(air.iter().map(|d| d.human_id.0))
            .collect();

        for human in world.humans() {
            let dist = human.position.distance(machine_pos);
            let ep = episodes.entry(human.id.0).or_default();
            if dist <= eval_radius {
                in_range_ticks += 1;
                let fw_detected = fw_set.contains(&human.id.0);
                let comb_detected = comb_set.contains(&human.id.0);
                if fw_detected {
                    fw_hits += 1;
                }
                if comb_detected {
                    comb_hits += 1;
                }
                if !ep.in_range {
                    // New approach episode.
                    *ep = Episode {
                        in_range: true,
                        ..Episode::default()
                    };
                }
                if !ep.detected_fw {
                    if fw_detected {
                        ep.detected_fw = true;
                        ttd_fw.push(ep.ticks_waiting_fw as f64 * tick.as_secs_f64());
                    } else {
                        ep.ticks_waiting_fw += 1;
                    }
                }
                if !ep.detected_comb {
                    if comb_detected {
                        ep.detected_comb = true;
                        ttd_comb.push(ep.ticks_waiting_comb as f64 * tick.as_secs_f64());
                    } else {
                        ep.ticks_waiting_comb += 1;
                    }
                }
            } else if ep.in_range {
                // Episode ends; undetected episodes contribute the cap.
                if !ep.detected_fw {
                    ttd_fw.push(ep.ticks_waiting_fw as f64 * tick.as_secs_f64());
                }
                if !ep.detected_comb {
                    ttd_comb.push(ep.ticks_waiting_comb as f64 * tick.as_secs_f64());
                }
                *ep = Episode::default();
            }
        }
        let _ = t;
    }

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    OcclusionRow {
        density,
        relief_m,
        forwarder_coverage: if in_range_ticks == 0 {
            1.0
        } else {
            fw_hits as f64 / in_range_ticks as f64
        },
        combined_coverage: if in_range_ticks == 0 {
            1.0
        } else {
            comb_hits as f64 / in_range_ticks as f64
        },
        forwarder_ttd_s: mean(&ttd_fw),
        combined_ttd_s: mean(&ttd_comb),
    }
}

/// Runs the full Figure 2 sweep over stand densities.
///
/// The densities × seeds grid is evaluated on the parallel sweep engine
/// ([`crate::sweep::par_sweep`]); every grid point carries its own seed,
/// and per-density means are folded in seed order, so the rows are
/// bit-identical to the sequential nested map this replaces.
#[must_use]
pub fn occlusion_sweep(
    densities: &[f64],
    relief_m: f64,
    seeds: &[u64],
    duration: SimDuration,
) -> Vec<OcclusionRow> {
    if seeds.is_empty() {
        // Degenerate grid: mirror the old nested map, whose empty-mean
        // division yielded NaN summaries.
        let nan = f64::NAN;
        return densities
            .iter()
            .map(|&density| OcclusionRow {
                density,
                relief_m,
                forwarder_coverage: nan,
                combined_coverage: nan,
                forwarder_ttd_s: nan,
                combined_ttd_s: nan,
            })
            .collect();
    }
    let points: Vec<(f64, u64)> = densities
        .iter()
        .flat_map(|&d| seeds.iter().map(move |&s| (d, s)))
        .collect();
    let rows = crate::sweep::par_sweep(&points, |&(density, seed)| {
        occlusion_point(density, relief_m, seed, duration)
    });
    rows.chunks(seeds.len())
        .zip(densities)
        .map(|(rows, &density)| {
            let n = rows.len() as f64;
            OcclusionRow {
                density,
                relief_m,
                forwarder_coverage: rows.iter().map(|r| r.forwarder_coverage).sum::<f64>() / n,
                combined_coverage: rows.iter().map(|r| r.combined_coverage).sum::<f64>() / n,
                forwarder_ttd_s: rows.iter().map(|r| r.forwarder_ttd_s).sum::<f64>() / n,
                combined_ttd_s: rows.iter().map(|r| r.combined_ttd_s).sum::<f64>() / n,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Worksite scenario wrapper (Figure 1, E1, E2)
// ---------------------------------------------------------------------

/// The standard small worksite used by the attack experiments.
#[must_use]
pub fn standard_config(posture: SecurityPosture) -> WorksiteConfig {
    WorksiteConfig {
        world: WorldConfig {
            terrain: TerrainConfig {
                size_m: 300.0,
                relief_m: 8.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 400.0,
                ..StandConfig::default()
            },
            human_count: 3,
            work_area: Vec2::new(240.0, 240.0),
            landing_area: Vec2::new(60.0, 60.0),
            ..WorldConfig::default()
        },
        security: posture,
        ..WorksiteConfig::default()
    }
}

/// A compact worksite configuration for episode sweeps: the full
/// security machinery (PKI, handshakes, drone link) over a small stand,
/// so per-episode *setup* dominates and huge batches of short probing
/// episodes stay cheap — the regime the pooled episode engine (E14) and
/// the generative Ag-ODD sweeps run in.
#[must_use]
pub fn compact_config(posture: SecurityPosture) -> WorksiteConfig {
    WorksiteConfig {
        world: WorldConfig {
            terrain: TerrainConfig {
                size_m: 150.0,
                relief_m: 4.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 200.0,
                ..StandConfig::default()
            },
            human_count: 2,
            work_area: Vec2::new(120.0, 120.0),
            landing_area: Vec2::new(30.0, 30.0),
            ..WorldConfig::default()
        },
        security: posture,
        ..WorksiteConfig::default()
    }
}

/// Builds the attack campaign for one attack class against the standard
/// worksite (starting at `start`, for `duration`).
#[must_use]
pub fn campaign_for(kind: AttackKind, start: SimTime, duration: SimDuration) -> AttackCampaign {
    let target = match kind {
        AttackKind::RfJamming | AttackKind::GnssSpoofing | AttackKind::GnssJamming => {
            AttackTarget::Area {
                center: Vec2::new(150.0, 150.0),
                radius_m: 400.0,
            }
        }
        AttackKind::DeauthFlood => {
            // Node ids in Worksite: 0 = base station, 1 = forwarder.
            AttackTarget::Link {
                spoof_as: silvasec_comms::NodeId(0),
                victim: silvasec_comms::NodeId(1),
            }
        }
        AttackKind::CameraBlinding | AttackKind::FirmwareTampering => AttackTarget::Machine {
            label: "forwarder-01".into(),
        },
        AttackKind::Replay => AttackTarget::Network,
        AttackKind::RogueNode => AttackTarget::Link {
            spoof_as: silvasec_comms::NodeId(0),
            victim: silvasec_comms::NodeId(0),
        },
        _ => AttackTarget::Network,
    };
    AttackCampaign {
        kind,
        target,
        start,
        duration,
        intensity: 1.0,
    }
}

/// Runs the standard worksite with an optional attack; returns metrics.
#[must_use]
pub fn run_worksite(
    posture: SecurityPosture,
    attack: Option<AttackKind>,
    seed: u64,
    total: SimDuration,
) -> WorksiteMetrics {
    let mut site = Worksite::new(&standard_config(posture), seed);
    if let Some(kind) = attack {
        let start = SimTime::from_secs(60);
        let dur = SimDuration::from_secs(total.as_secs_f64() as u64 / 2);
        site.attack_engine_mut()
            .add_campaign(campaign_for(kind, start, dur));
    }
    site.run(total);
    site.metrics().clone()
}

/// Runs the standard worksite like [`run_worksite`] but also returns the
/// security-event trace from the flight recorder (the record stream the
/// continuous risk assessment and the trace-divergence tooling consume).
#[must_use]
pub fn run_worksite_traced(
    posture: SecurityPosture,
    attack: Option<AttackKind>,
    seed: u64,
    total: SimDuration,
) -> (WorksiteMetrics, Vec<Record>) {
    let mut site = Worksite::new(&standard_config(posture), seed);
    if let Some(kind) = attack {
        let start = SimTime::from_secs(60);
        let dur = SimDuration::from_secs(total.as_secs_f64() as u64 / 2);
        site.attack_engine_mut()
            .add_campaign(campaign_for(kind, start, dur));
    }
    site.run(total);
    (site.metrics().clone(), site.security_records())
}

/// Runs a shortened Figure 1 episode (secure posture optional, five-phase
/// attack campaign scaled into `total`) and returns the security trace as
/// JSON Lines — the input format of the `trace_compare` tool.
#[must_use]
pub fn figure1_trace(posture: SecurityPosture, seed: u64, total: SimDuration) -> String {
    let mut site = Worksite::new(&standard_config(posture), seed);
    // The figure1 campaign phases, scaled to the episode length: five
    // attack classes back-to-back across the middle 5/6 of the run.
    let phase = total.as_secs_f64() as u64 / 8;
    for (i, kind) in [
        AttackKind::DeauthFlood,
        AttackKind::RfJamming,
        AttackKind::CameraBlinding,
        AttackKind::GnssSpoofing,
        AttackKind::Replay,
    ]
    .into_iter()
    .enumerate()
    {
        site.attack_engine_mut().add_campaign(campaign_for(
            kind,
            SimTime::from_secs(phase * (i as u64 + 1)),
            SimDuration::from_secs((phase * 3) / 4),
        ));
    }
    site.run(total);
    site.export_security_jsonl()
}

/// The alert kind the IDS is expected to raise for an attack class.
#[must_use]
pub fn expected_alert(kind: AttackKind) -> Option<AlertKind> {
    match kind {
        AttackKind::RfJamming => Some(AlertKind::Jamming),
        AttackKind::DeauthFlood => Some(AlertKind::DeauthFlood),
        AttackKind::GnssSpoofing => Some(AlertKind::GnssSpoofing),
        AttackKind::GnssJamming => Some(AlertKind::GnssJamming),
        AttackKind::CameraBlinding => Some(AlertKind::SensorBlinding),
        AttackKind::Replay => Some(AlertKind::AuthFailureStorm),
        AttackKind::RogueNode => Some(AlertKind::RogueAssociation),
        AttackKind::FirmwareTampering => None,
        _ => None,
    }
}

/// One row of the E1 attack × defense matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackMatrixRow {
    /// The attack class.
    pub attack: String,
    /// Whether the expected alert fired.
    pub detected: bool,
    /// Seconds from attack onset to first expected alert (if detected).
    pub time_to_detect_s: Option<f64>,
    /// Mission productivity relative to the clean baseline
    /// (distance-driven ratio — robust for runs shorter than one full
    /// haul cycle).
    pub productivity_ratio: f64,
    /// Telemetry delivery ratio under attack.
    pub delivery_ratio: f64,
    /// Safety incidents during the run.
    pub safety_incidents: usize,
    /// Forged/replayed application messages accepted.
    pub forged_accepted: u64,
}

/// Runs the E1 matrix for the runtime attack classes.
///
/// The clean baseline and the seven attacked runs are independent
/// episodes (each reconstructs its own `Worksite` from `seed`), so they
/// are evaluated together on the parallel sweep engine; rows are derived
/// afterwards and match the sequential formulation exactly.
#[must_use]
pub fn attack_matrix(
    posture: SecurityPosture,
    seed: u64,
    total: SimDuration,
) -> Vec<AttackMatrixRow> {
    let attacks = [
        AttackKind::RfJamming,
        AttackKind::DeauthFlood,
        AttackKind::GnssSpoofing,
        AttackKind::GnssJamming,
        AttackKind::CameraBlinding,
        AttackKind::Replay,
        AttackKind::RogueNode,
    ];
    let episodes: Vec<Option<AttackKind>> = std::iter::once(None)
        .chain(attacks.iter().copied().map(Some))
        .collect();
    let mut metrics = crate::sweep::par_sweep(&episodes, |&attack| {
        run_worksite(posture, attack, seed, total)
    })
    .into_iter();
    let baseline = metrics.next().expect("baseline episode present");
    let baseline_distance = baseline.distance_m.max(1.0);
    attacks
        .iter()
        .zip(metrics)
        .map(|(&kind, m)| {
            let onset = SimTime::from_secs(60);
            let (detected, ttd) = match expected_alert(kind) {
                Some(alert) => match m.first_alert_at.get(&alert.to_string()) {
                    Some(at) if *at >= onset => (true, Some(at.since(onset).as_secs_f64())),
                    Some(_) => (true, Some(0.0)),
                    None => (false, None),
                },
                None => (false, None),
            };
            AttackMatrixRow {
                attack: kind.to_string(),
                detected,
                time_to_detect_s: ttd,
                productivity_ratio: m.distance_m / baseline_distance,
                delivery_ratio: m.delivery_ratio(),
                safety_incidents: m.safety_incidents.len(),
                forged_accepted: m.forged_accepted,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 3: methodology pipeline
// ---------------------------------------------------------------------

/// Artifact counts per phase of the methodology pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineCounts {
    /// Identified assets.
    pub assets: usize,
    /// Damage scenarios.
    pub damage_scenarios: usize,
    /// Threat scenarios.
    pub threats: usize,
    /// Assessed risks.
    pub risks: usize,
    /// Risks at level ≥ 4.
    pub high_risks: usize,
    /// Derived requirements.
    pub requirements: usize,
    /// Safety–security interplay findings.
    pub interplay_findings: usize,
    /// Machinery hazards considered.
    pub hazards: usize,
    /// SOTIF triggering conditions.
    pub triggering_conditions: usize,
    /// Assurance-case nodes generated.
    pub assurance_nodes: usize,
    /// Assurance evidence items generated.
    pub evidence_items: usize,
}

/// Runs the pipeline over the built-in model and counts artifacts.
#[must_use]
pub fn methodology_pipeline() -> PipelineCounts {
    let model = catalog::worksite_model();
    let tara = Tara::assess(&model);
    let case = silvasec_assurance::builder::build_security_case(&tara, "worksite");
    PipelineCounts {
        assets: model.assets.len(),
        damage_scenarios: model.damage_scenarios.len(),
        threats: model.threats.len(),
        risks: tara.risks.len(),
        high_risks: tara.risks_at_or_above(silvasec_risk::RiskLevel(4)).len(),
        requirements: tara.requirements().count(),
        interplay_findings: tara.interplay_findings.len(),
        hazards: model.hazards.len(),
        triggering_conditions: model.triggering_conditions.len(),
        assurance_nodes: case.nodes().len(),
        evidence_items: case.evidence().len(),
    }
}

// ---------------------------------------------------------------------
// E4: SoS scaling
// ---------------------------------------------------------------------

/// Builds a synthetic SoS assurance composition of `n` constituent
/// modules, each with `goals_per_module` argument goals, chained by
/// away-references.
#[must_use]
pub fn build_sos_composition(n: usize, goals_per_module: usize) -> Composition {
    let mut composition = Composition::new();
    for i in 0..n {
        let name = format!("constituent-{i}");
        let mut case = AssuranceCase::new(&name);
        let root = case.add_node(
            NodeKind::Goal,
            format!("{name}.G0"),
            "constituent is secure",
        );
        let strategy = case.add_node(
            NodeKind::Strategy,
            format!("{name}.S0"),
            "argue over functions",
        );
        case.supported_by(&root, &strategy);
        for g in 0..goals_per_module {
            let goal = case.add_node(
                NodeKind::Goal,
                format!("{name}.G{}", g + 1),
                format!("function {g} is protected"),
            );
            case.supported_by(&strategy, &goal);
            let solution = case.add_node(
                NodeKind::Solution,
                format!("{name}.Sn{g}"),
                "verification run",
            );
            case.supported_by(&goal, &solution);
            let ev = format!("{name}.ev{g}");
            case.register_evidence(silvasec_assurance::evidence::Evidence::new(
                ev.clone(),
                "verification evidence",
                "simulation",
            ));
            case.cite_evidence(&solution, &ev);
        }
        let away = (i > 0).then(|| {
            vec![AwayReference {
                local_goal: silvasec_assurance::gsn::NodeId::new(format!("{name}.G0")),
                remote_module: format!("constituent-{}", i - 1),
                remote_claim: silvasec_assurance::gsn::NodeId::new(format!(
                    "constituent-{}.G0",
                    i - 1
                )),
            }]
        });
        composition.add_module(Module {
            name: name.clone(),
            case,
            public_claims: vec![silvasec_assurance::gsn::NodeId::new(format!("{name}.G0"))],
            away_references: away.unwrap_or_default(),
        });
    }
    composition
}

// ---------------------------------------------------------------------
// E9: SOTIF evidence from simulation
// ---------------------------------------------------------------------

/// Runs approach episodes under a fixed weather condition and collects
/// SOTIF evidence for the people-detection function: an episode is
/// *unsafe* when a worker reaches the critical distance while still
/// undetected (the function — as designed, no malfunction — failed to
/// see them in time). This is the ISO 21448 evidence loop of the paper's
/// Sec. III-C, executed.
#[must_use]
pub fn sotif_evidence(
    weather: silvasec_sim::weather::Weather,
    seed: u64,
    duration: SimDuration,
) -> silvasec_risk::sotif::Evidence {
    let critical_distance = 15.0;
    let config = WorldConfig {
        terrain: TerrainConfig {
            size_m: 300.0,
            relief_m: 10.0,
            ..TerrainConfig::default()
        },
        stand: StandConfig {
            trees_per_hectare: 400.0,
            ..StandConfig::default()
        },
        human_count: 5,
        human: silvasec_sim::humans::HumanConfig {
            work_area_bias: 0.8,
            ..silvasec_sim::humans::HumanConfig::default()
        },
        work_area: Vec2::new(170.0, 150.0),
        landing_area: Vec2::new(40.0, 40.0),
        initial_weather: weather,
        weather_change_prob: 0.0,
    };
    let mut world = World::generate(&config, SimRng::from_seed(seed));
    let mut rng = SimRng::from_seed(seed ^ 0x50f1f);

    let machine_pos = Vec2::new(150.0, 150.0);
    let camera = PeopleSensor::new(SensorKind::Camera, 2.8);
    let lidar = PeopleSensor::new(SensorKind::Lidar, 3.2);
    let mut drone = Drone::new(machine_pos, DroneConfig::default(), &world);

    let tick = SimDuration::from_millis(500);
    let ticks = duration.as_millis() / tick.as_millis();
    let mut heading = 0.0f64;

    // Episode state per human: whether the worker has been detected yet
    // in the current approach.
    let mut in_episode: HashMap<u32, bool> = HashMap::new();
    let mut evidence = silvasec_risk::sotif::Evidence::default();
    let mut episode_unsafe: HashMap<u32, bool> = HashMap::new();

    for _ in 0..ticks {
        world.step(tick);
        drone.step(&world, machine_pos, tick);
        heading = (heading + 0.2) % std::f64::consts::TAU;
        let detected: Vec<u32> = camera
            .detect(&world, machine_pos, heading, &mut rng)
            .into_iter()
            .chain(lidar.detect(&world, machine_pos, heading, &mut rng))
            .chain(drone.detect(&world, &mut rng))
            .map(|d| d.human_id.0)
            .collect();

        for human in world.humans() {
            let dist = human.position.distance(machine_pos);
            let id = human.id.0;
            if dist <= 40.0 {
                let seen = detected.contains(&id);
                let entry = in_episode.entry(id).or_insert(false);
                *entry = *entry || seen;
                if dist <= critical_distance && !*entry {
                    episode_unsafe.insert(id, true);
                }
            } else if in_episode.remove(&id).is_some() {
                evidence.record(episode_unsafe.remove(&id).unwrap_or(false));
            }
        }
    }
    // Close any episodes still open at the end.
    for (id, _) in in_episode.drain() {
        evidence.record(episode_unsafe.remove(&id).unwrap_or(false));
    }
    evidence
}

// ---------------------------------------------------------------------
// E5: continuous assessment latency
// ---------------------------------------------------------------------

/// Timings from attack onset through detection to risk update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinuousLatencyRow {
    /// The attack class exercised.
    pub attack: String,
    /// Attack onset, seconds.
    pub onset_s: f64,
    /// First matching alert, seconds (if detected).
    pub alert_s: Option<f64>,
    /// Risk level before the incident.
    pub risk_before: u8,
    /// Risk level after ingesting the incident.
    pub risk_after: u8,
    /// Goals thrown into doubt when the matching evidence class is
    /// invalidated.
    pub goals_in_doubt: usize,
}

/// Runs E5: attack → IDS alert → continuous risk escalation → assurance
/// invalidation, reporting each hop's outcome.
///
/// The risk layer consumes the worksite's *recorded* security trace: every
/// `IdsAlert` record is fed through
/// [`ContinuousAssessment::ingest_record`], which maps alert classes onto
/// TARA attack classes via [`alert_class_to_attack_class`]. The alert
/// latency is likewise read off the trace rather than from bespoke
/// first-alert bookkeeping.
#[must_use]
pub fn continuous_latency(kind: AttackKind, seed: u64) -> ContinuousLatencyRow {
    let total = SimDuration::from_secs(300);
    let (_metrics, trace) = run_worksite_traced(SecurityPosture::secure(), Some(kind), seed, total);
    let onset = SimTime::from_secs(60);

    let class = kind.as_str().to_string();
    let alert_s = trace.iter().find_map(|r| match &r.event {
        Event::IdsAlert { class: c, .. } if alert_class_to_attack_class(c.as_str()) == class => {
            Some(r.at.as_secs_f64())
        }
        _ => None,
    });

    // Static assessment, then replay the recorded alert stream into it.
    let model = catalog::worksite_model();
    let mut continuous = ContinuousAssessment::new(model);
    let threat_risk = |ca: &ContinuousAssessment| {
        ca.report()
            .risks
            .iter()
            .find(|r| {
                catalog::worksite_model()
                    .threats
                    .iter()
                    .any(|t| t.id == r.threat_id && t.attack_class.as_deref() == Some(&class))
            })
            .map(|r| r.risk.0)
            .unwrap_or(0)
    };
    let before = threat_risk(&continuous);
    for record in &trace {
        let _ = continuous.ingest_record(record);
    }
    let after = threat_risk(&continuous);

    // Assurance invalidation: the control tag tied to this attack class.
    let tara = Tara::assess(&catalog::worksite_model());
    let mut case = silvasec_assurance::builder::build_security_case(&tara, "worksite");
    let tag = Tara::candidate_controls(Some(&class))
        .into_iter()
        .next()
        .unwrap_or_default();
    let _ = case.invalidate_evidence_tagged(&tag);
    let doubt = case.goals_in_doubt(0).len();

    ContinuousLatencyRow {
        attack: class,
        onset_s: onset.as_secs_f64(),
        alert_s,
        risk_before: before,
        risk_after: after,
        goals_in_doubt: doubt,
    }
}

// ---------------------------------------------------------------------
// E10: fleet OTA rollout and fleet security operations
// ---------------------------------------------------------------------

/// The fleet-layer attack injected into an E10 rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetScenario {
    /// No attack — the baseline rollout.
    Clean,
    /// Update chunks corrupted in transit (MITM on the distribution
    /// path); every site must reject the reassembled bundle.
    Tampered,
    /// The old but genuinely signed bundle substituted on the wire;
    /// every site must reject the version rollback.
    Downgrade,
    /// A correctly signed malicious bundle: sites that apply it start
    /// misbehaving, and the canary IDS spike must halt the rollout.
    Poisoned,
    /// Broadband jamming of every uplink — the rollout completes but
    /// pays for it in retransmissions and latency.
    Jammed,
}

impl FleetScenario {
    /// Short stable name for result tables.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetScenario::Clean => "clean",
            FleetScenario::Tampered => "tampered",
            FleetScenario::Downgrade => "downgrade",
            FleetScenario::Poisoned => "poisoned",
            FleetScenario::Jammed => "jammed",
        }
    }

    /// The fleet-layer campaign this scenario schedules, if any.
    #[must_use]
    pub fn campaign(&self) -> Option<AttackCampaign> {
        let kind = match self {
            FleetScenario::Clean => return None,
            FleetScenario::Tampered => AttackKind::UpdateTampering,
            FleetScenario::Downgrade => AttackKind::Downgrade,
            FleetScenario::Poisoned => AttackKind::RolloutPoisoning,
            FleetScenario::Jammed => AttackKind::RfJamming,
        };
        Some(AttackCampaign {
            kind,
            target: AttackTarget::Network,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(100_000),
            intensity: 1.0,
        })
    }
}

/// The standard E10 fleet: compact worksites (fleet scale comes from the
/// site count, not from each site's stand), a one-site canary, and waves
/// of four.
#[must_use]
pub fn fleet_config(sites: usize) -> silvasec_fleet::FleetConfig {
    let site = WorksiteConfig {
        world: WorldConfig {
            terrain: TerrainConfig {
                size_m: 200.0,
                relief_m: 6.0,
                ..TerrainConfig::default()
            },
            stand: StandConfig {
                trees_per_hectare: 300.0,
                ..StandConfig::default()
            },
            human_count: 2,
            work_area: Vec2::new(160.0, 160.0),
            landing_area: Vec2::new(40.0, 40.0),
            ..WorldConfig::default()
        },
        ..WorksiteConfig::default()
    };
    silvasec_fleet::FleetConfig {
        sites,
        site,
        policy: silvasec_fleet::RolloutPolicy {
            canary_sites: 1,
            wave_size: 4,
            // Long enough for a poisoned canary's IDS alerts (which take
            // ~10 s to cross the halt threshold) to stop the rollout
            // before the first full wave ships.
            observe_ticks: 40,
            halt_alert_threshold: 3,
        },
        ..silvasec_fleet::FleetConfig::default()
    }
}

/// Runs one E10 point: commissions a fleet of `sites` worksites and
/// rolls firmware version 2 out under `scenario`. Returns the rollout
/// report and the fleet security trace (JSONL).
#[must_use]
pub fn run_fleet_rollout(
    sites: usize,
    seed: u64,
    scenario: FleetScenario,
) -> (silvasec_fleet::RolloutReport, String) {
    let mut fleet = silvasec_fleet::Fleet::new(fleet_config(sites), seed);
    if let Some(campaign) = scenario.campaign() {
        fleet.schedule_fleet_attack(campaign);
    }
    let report = fleet.run_rollout(2);
    let trace = fleet.export_trace_jsonl();
    (report, trace)
}

// ---------------------------------------------------------------------
// E12: fleet-scale control plane (two-fidelity shadow population)
// ---------------------------------------------------------------------

/// The E12 fleet-scale configuration: the same compact worksites as
/// [`fleet_config`] for the full-fidelity subset, a shadow population
/// for the rest, and a rollout policy whose waves scale with the fleet
/// (a million-site rollout is a handful of waves, not 250k of them).
#[must_use]
pub fn fleet_scale_config(sites: usize, sequential: bool) -> silvasec_fleet::FleetConfig {
    let mut config = fleet_config(sites);
    config.policy = silvasec_fleet::RolloutPolicy {
        canary_sites: (sites / 64).max(1),
        wave_size: (sites / 8).max(4),
        observe_ticks: 8,
        halt_alert_threshold: 3,
    };
    config.shadow = Some(silvasec_fleet::ShadowConfig {
        full_sites: 4,
        shard_sites: 8_192,
        sequential,
    });
    config
}

/// Runs one E12 point: a fleet of `sites` (full-fidelity subset plus
/// shadow population per [`fleet_scale_config`]) rolling out firmware
/// version 2 under `scenario`. Returns the report and the fleet itself
/// so callers can probe the trace, SIEM and security snapshot.
#[must_use]
pub fn run_fleet_scale_point(
    sites: usize,
    seed: u64,
    scenario: FleetScenario,
    sequential: bool,
) -> (silvasec_fleet::RolloutReport, silvasec_fleet::Fleet) {
    let mut fleet = silvasec_fleet::Fleet::new(fleet_scale_config(sites, sequential), seed);
    if let Some(campaign) = scenario.campaign() {
        fleet.schedule_fleet_attack(campaign);
    }
    let report = fleet.run_rollout(2);
    (report, fleet)
}

/// Runs the E12 security-operations scenario on an already shaped
/// fleet config: disclose an update-tampering vulnerability (risk up),
/// sustain a fleet-wide deauthentication flood for 60 s while
/// free-running 90 s (SIEM correlation, risk up), then roll out
/// version 2 (mitigation, risk down). Pass [`fleet_config`] with
/// `shadow: None` for the full-fidelity reference, or
/// [`fleet_scale_config`] for the two-fidelity scale points.
#[must_use]
pub fn run_fleet_scale_scenario(
    config: silvasec_fleet::FleetConfig,
    seed: u64,
) -> (silvasec_fleet::RolloutReport, silvasec_fleet::Fleet) {
    let mut fleet = silvasec_fleet::Fleet::new(config, seed);
    fleet.disclose_vulnerability("update-tampering");
    fleet.schedule_fleet_attack(campaign_for(
        AttackKind::DeauthFlood,
        SimTime::from_secs(5),
        SimDuration::from_secs(60),
    ));
    fleet.run(SimDuration::from_secs(90));
    let report = fleet.run_rollout(2);
    (report, fleet)
}

/// The fleet-level security *decisions* of a run, in emission order:
/// correlated campaign classes and risk transitions `(threat, from,
/// to)`. Timestamps and in-window site counts are excluded on purpose —
/// shadow alert latencies are modeled rather than simulated, so the
/// instants (and how many sites happen to sit in the window when the
/// k-th arrives) differ across fidelities while the decisions must not.
#[must_use]
pub fn fleet_decisions(
    fleet: &silvasec_fleet::Fleet,
) -> (Vec<String>, Vec<(String, RiskLevel, RiskLevel)>) {
    let campaigns = fleet
        .siem()
        .campaigns()
        .iter()
        .map(|c| c.class.clone())
        .collect();
    let risk = fleet
        .risk()
        .changes()
        .iter()
        .map(|c| (c.threat_id.clone(), c.from, c.to))
        .collect();
    (campaigns, risk)
}

// ---------------------------------------------------------------------
// E13: incident-response operations (deterministic ops engine)
// ---------------------------------------------------------------------

/// The standard E13 ops configuration for fleet wiring: the default
/// engine with a visibility timeout generous enough that a full staged
/// remediation rollout never outlives its lease (see
/// [`silvasec_fleet::Fleet::run_ops_remediations`]), and a review
/// window generous enough that a critical run gated mid-scenario is
/// still awaiting its reviewer when the free-running phase ends.
#[must_use]
pub fn ops_config() -> silvasec_ops::OpsConfig {
    silvasec_ops::OpsConfig {
        queue: silvasec_ops::QueueConfig {
            visibility_timeout_ms: 300_000,
            ..silvasec_ops::QueueConfig::default()
        },
        gate: silvasec_ops::GatePolicy {
            review_timeout_ms: 600_000,
            ..silvasec_ops::GatePolicy::default()
        },
        ..silvasec_ops::OpsConfig::default()
    }
}

/// Runs the E13 fleet incident-response scenario: the E10 fleet with
/// the ops engine enabled, a sustained fleet-wide deauthentication
/// flood that correlates into a SIEM campaign, then a free-running
/// window in which the engine triages, contains (site quarantine /
/// rollout halt) and gates the resulting incidents. Remediation is
/// deferred: the caller reviews pending gates and calls
/// `run_ops_remediations` to push the fix (see `tests/ops_incident.rs`
/// for the full arc).
#[must_use]
pub fn run_fleet_ops_scenario(sites: usize, seed: u64) -> silvasec_fleet::Fleet {
    let mut config = fleet_config(sites);
    config.ops = Some(ops_config());
    let mut fleet = silvasec_fleet::Fleet::new(config, seed);
    fleet.schedule_fleet_attack(campaign_for(
        AttackKind::DeauthFlood,
        SimTime::from_secs(5),
        SimDuration::from_secs(60),
    ));
    fleet.run(SimDuration::from_secs(90));
    fleet
}

/// One synthetic E13 load point: drives a bare [`silvasec_ops::OpsEngine`]
/// (no fleet attached) to idle under `incidents` incidents with a
/// deterministic arrival schedule, scope/severity mix, scripted command
/// flakiness and scripted review verdicts. Returns the settled engine
/// and its security-filtered JSONL trace; callers assert digests,
/// counters and replay against them. Everything is a pure function of
/// `(incidents, seed)` — two calls are byte-identical.
///
/// # Panics
///
/// Panics if the engine fails to settle within the tick budget (a
/// lost-incident bug by definition).
#[must_use]
pub fn run_ops_load(incidents: usize, seed: u64) -> (silvasec_ops::OpsEngine, String) {
    use silvasec_ids::alert::Severity;
    use silvasec_ops::{Action, GateDecision, Incident, IncidentScope, OpsConfig, OpsEngine};
    use silvasec_sim::rng::hash3;
    use silvasec_telemetry::{EventFilter, Recorder};

    const CLASSES: [&str; 4] = [
        "jamming",
        "gnss-spoofing",
        "auth-failure-storm",
        "rogue-association",
    ];
    let recorder = Recorder::new();
    let ring = (incidents * 64).max(1 << 16);
    let sub = recorder.subscribe_filtered("ops-load", ring, EventFilter::security());
    let mut engine = OpsEngine::new(
        OpsConfig {
            seed,
            ..OpsConfig::default()
        },
        recorder.clone(),
    );

    let mut now_ms = 0u64;
    let mut issued = 0usize;
    let mut verdicts = 0u64;
    // Scripted executor: QuarantineSite flakes on a fixed cadence so the
    // retry ladder and backoff paths are exercised; everything else
    // succeeds. MitigateRisk is fire-and-forget.
    let mut pump = |engine: &mut OpsEngine, mut cmds: Vec<silvasec_ops::OpsCommand>, now: u64| {
        while let Some(cmd) = cmds.pop() {
            if matches!(cmd.action, Action::MitigateRisk { .. }) {
                continue;
            }
            verdicts += 1;
            let ok = !(matches!(cmd.action, Action::QuarantineSite { .. })
                && verdicts.is_multiple_of(13));
            cmds.extend(engine.complete(cmd.id, ok, now));
        }
    };
    let max_ticks = 4 * incidents as u64 + 4_000;
    for _ in 0..max_ticks {
        // Arrivals: a batch of up to 64 per 500 ms tick, mixing scopes
        // and severities deterministically. Every 31st incident repeats
        // the previous identity to exercise dedup folding.
        let batch = (incidents - issued).min(64);
        for i in 0..batch {
            let k = (issued + i) as u64;
            let k = if k % 31 == 30 { k - 1 } else { k };
            let class = CLASSES[(k % 4) as usize];
            let severity = match k % 5 {
                0 => Severity::Low,
                1 | 2 => Severity::Medium,
                3 => Severity::High,
                _ => Severity::Critical,
            };
            let scope = if k % 7 == 0 {
                IncidentScope::Fleet {
                    sites: 3 + (k % 5) as u32,
                }
            } else {
                IncidentScope::Site((k % 97) as u32)
            };
            engine.enqueue_incident(
                &Incident {
                    class: class.to_string(),
                    severity,
                    scope,
                    detected_at_ms: now_ms,
                },
                now_ms,
            );
        }
        issued += batch;
        // Scripted reviewer: answers every pending gate the tick it
        // appears, rejecting one in four.
        for run in engine.pending_reviews() {
            let decision = if hash3(seed, run, 0xE13).is_multiple_of(4) {
                GateDecision::Reject
            } else {
                GateDecision::Approve
            };
            let cmds = engine.review(run, decision, now_ms);
            pump(&mut engine, cmds, now_ms);
        }
        let cmds = engine.tick(now_ms);
        pump(&mut engine, cmds, now_ms);
        now_ms += 500;
        if issued == incidents && engine.idle() {
            let trace = recorder.export_jsonl(sub);
            return (engine, trace);
        }
    }
    panic!("ops load of {incidents} incidents not settled after {max_ticks} ticks");
}

// ---------------------------------------------------------------------
// E11: generative TARA (scenario enumeration and live hypotheses)
// ---------------------------------------------------------------------

/// The standard E11 TARA knob for fleet wiring: a ranking wide enough
/// that every distinct scenario of the two-variant space (4 000) becomes
/// a live hypothesis, so campaign evidence of *any* attack class finds
/// hypotheses to confirm and the rollout mitigation finds the
/// firmware-tampering ones to retire.
#[must_use]
pub fn tara_config() -> silvasec_fleet::TaraConfig {
    silvasec_fleet::TaraConfig {
        variants: 2,
        top_k: 4_096,
    }
}

/// The exact ranking a fleet commissioned with `seed` under
/// [`tara_config`] carries — what `trace_compare --tara` replays the
/// hypothesis trace against.
#[must_use]
pub fn tara_ranking(seed: u64) -> Vec<silvasec_tara::ScoredScenario> {
    let tc = tara_config();
    let catalog = silvasec_tara::TaraCatalog::from_model(&catalog::worksite_model());
    silvasec_tara::ScenarioSpace::new(&catalog, seed, tc.variants, tc.top_k)
        .enumerate()
        .top
}

/// Runs the E11 live-hypothesis scenario: the E10 fleet with the
/// generative TARA on, a sustained fleet-wide deauthentication flood
/// that correlates into a SIEM campaign (confirming the matching
/// hypotheses), then a completed version-2 rollout whose mitigation
/// retires the firmware-tampering hypotheses. Probe the result through
/// [`silvasec_fleet::Fleet::tara`] and the fleet trace.
#[must_use]
pub fn run_tara_hypotheses(sites: usize, seed: u64) -> silvasec_fleet::Fleet {
    let mut config = fleet_config(sites);
    config.tara = Some(tara_config());
    let mut fleet = silvasec_fleet::Fleet::new(config, seed);
    fleet.schedule_fleet_attack(campaign_for(
        AttackKind::DeauthFlood,
        SimTime::from_secs(5),
        SimDuration::from_secs(60),
    ));
    fleet.run(SimDuration::from_secs(90));
    let _ = fleet.run_rollout(2);
    fleet
}

// ---------------------------------------------------------------------
// E14: episode-throughput engine (scenario sweeps over pooled worksites)
// ---------------------------------------------------------------------

/// One scenario point of an episode sweep: everything needed to run one
/// worksite episode from nothing.
#[derive(Debug, Clone)]
pub struct EpisodeSpec {
    /// The worksite configuration (world, posture, telemetry shape).
    pub config: WorksiteConfig,
    /// Scenario seed.
    pub seed: u64,
    /// Attack class launched with the standard campaign timing, if any.
    pub attack: Option<AttackKind>,
    /// Episode length.
    pub duration: SimDuration,
}

impl EpisodeSpec {
    /// An episode on the standard attack-experiment worksite.
    #[must_use]
    pub fn standard(
        posture: SecurityPosture,
        attack: Option<AttackKind>,
        seed: u64,
        duration: SimDuration,
    ) -> Self {
        EpisodeSpec {
            config: standard_config(posture),
            seed,
            attack,
            duration,
        }
    }

    /// An episode on the compact episode-sweep worksite
    /// ([`compact_config`]).
    #[must_use]
    pub fn compact(
        posture: SecurityPosture,
        attack: Option<AttackKind>,
        seed: u64,
        duration: SimDuration,
    ) -> Self {
        EpisodeSpec {
            config: compact_config(posture),
            seed,
            attack,
            duration,
        }
    }

    /// Schedules this spec's campaign on `site`, scaled to the episode
    /// length: onset a quarter in, lasting half the episode (matching
    /// [`run_worksite`]'s 60 s / half-run shape at its 240 s horizon,
    /// while still firing inside arbitrarily short probing episodes).
    pub fn arm(&self, site: &mut Worksite) {
        if let Some(kind) = self.attack {
            let secs = self.duration.as_secs_f64() as u64;
            let start = SimTime::from_secs(secs / 4);
            let dur = SimDuration::from_secs((secs / 2).max(1));
            site.attack_engine_mut()
                .add_campaign(campaign_for(kind, start, dur));
        }
    }
}

/// Scalar outcome of one episode, plus a digest of its security trace —
/// the cheap cross-run (parallel vs sequential, pooled vs naive)
/// equality witness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeOutcome {
    /// Scenario seed the episode ran under.
    pub seed: u64,
    /// Simulation ticks executed.
    pub ticks: u64,
    /// Messages delivered end-to-end.
    pub messages_delivered: u64,
    /// Forwarder distance, metres (bit-exact carrier: compare via
    /// `to_bits`).
    pub distance_m: f64,
    /// Ticks with a worker inside the danger zone.
    pub danger_zone_ticks: u64,
    /// Forged or replayed messages accepted.
    pub forged_accepted: u64,
    /// Total IDS alerts across kinds.
    pub alerts: u64,
    /// FNV-1a digest of the security-trace JSONL export.
    pub trace_digest: u64,
}

/// FNV-1a (64-bit) digest of a trace export.
#[must_use]
pub fn trace_digest(trace: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in trace.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn episode_outcome(site: &Worksite, seed: u64) -> EpisodeOutcome {
    let m = site.metrics();
    EpisodeOutcome {
        seed,
        ticks: m.ticks,
        messages_delivered: m.messages_delivered,
        distance_m: m.distance_m,
        danger_zone_ticks: m.danger_zone_ticks,
        forged_accepted: m.forged_accepted,
        alerts: m.alerts.values().sum(),
        trace_digest: trace_digest(&site.export_security_jsonl()),
    }
}

/// Runs one episode the naive way: build a fresh [`Worksite`] from
/// nothing (full PKI commissioning, world generation, all allocations),
/// run it, read the outcome.
///
/// This is the **frozen oracle** of the episode-throughput overhaul:
/// the pooled path must reproduce its outcomes bit-for-bit, and the
/// `exp14_episodes` bench measures its speedup against it. Do not
/// optimize this function.
#[must_use]
pub fn run_episode_naive(spec: &EpisodeSpec) -> EpisodeOutcome {
    let mut site = Worksite::new(&spec.config, spec.seed);
    spec.arm(&mut site);
    site.run(spec.duration);
    episode_outcome(&site, spec.seed)
}

/// Runs one episode on a pooled worksite slot: the first episode builds
/// the worksite, every later one resets it in place
/// ([`Worksite::reset_for_episode`]) — reusing terrain grids, telemetry
/// rings, radio buffers and the amortized PKI template.
pub fn run_episode_pooled(slot: &mut Option<Worksite>, spec: &EpisodeSpec) -> EpisodeOutcome {
    match slot {
        Some(site) => site.reset_for_episode(&spec.config, spec.seed),
        None => *slot = Some(Worksite::new(&spec.config, spec.seed)),
    }
    let site = slot.as_mut().expect("slot populated above");
    spec.arm(site);
    site.run(spec.duration);
    episode_outcome(site, spec.seed)
}

/// The episode-throughput engine: drives a batch of scenario points
/// through a pool of reusable worksites on the parallel sweep engine —
/// one long-lived worksite per worker, reset per episode.
///
/// Results come back in input order and are bit-identical to the
/// sequential single-worksite loop for any worker count (the
/// `par_sweep` determinism contract plus the reset-equals-fresh
/// property). This is the substrate for generative Ag-ODD scenario
/// sweeps: enumerate specs, hand them here, get trajectory-grade
/// outcomes back.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpisodeRunner {
    workers: Option<usize>,
}

impl EpisodeRunner {
    /// A runner using the hardware worker count.
    #[must_use]
    pub fn new() -> Self {
        EpisodeRunner::default()
    }

    /// A runner with an explicit worker count (1 = the sequential
    /// reference).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        EpisodeRunner {
            workers: Some(workers),
        }
    }

    /// Runs every episode, returning outcomes in input order.
    #[must_use]
    pub fn run(&self, episodes: &[EpisodeSpec]) -> Vec<EpisodeOutcome> {
        let workers = self
            .workers
            .unwrap_or_else(|| crate::sweep::worker_count(episodes.len()));
        crate::sweep::par_sweep_scoped_workers(
            episodes,
            workers,
            || None::<Worksite>,
            |slot, spec, _| run_episode_pooled(slot, spec),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occlusion_drone_helps_in_dense_stands() {
        let dense = occlusion_point(1200.0, 12.0, 5, SimDuration::from_secs(400));
        assert!(
            dense.combined_coverage > dense.forwarder_coverage,
            "drone must add coverage in dense stands: fw {} vs comb {}",
            dense.forwarder_coverage,
            dense.combined_coverage
        );
        assert!(dense.combined_ttd_s <= dense.forwarder_ttd_s + 1e-9);
    }

    #[test]
    fn occlusion_gap_grows_with_terrain_relief() {
        // The paper's Figure 2 claim: the drone's additional point of view
        // eliminates occlusions caused by *terrain obstacles*. The
        // forwarder-vs-combined coverage gap should widen on rough ground.
        let flat = occlusion_point(300.0, 0.5, 5, SimDuration::from_secs(400));
        let rough = occlusion_point(300.0, 25.0, 5, SimDuration::from_secs(400));
        let gap_flat = flat.combined_coverage - flat.forwarder_coverage;
        let gap_rough = rough.combined_coverage - rough.forwarder_coverage;
        assert!(
            gap_rough > gap_flat,
            "gap flat {gap_flat:.3} vs rough {gap_rough:.3}"
        );
        assert!(rough.forwarder_coverage < flat.forwarder_coverage);
    }

    #[test]
    fn pipeline_counts_consistent() {
        let p = methodology_pipeline();
        assert_eq!(p.risks, p.threats);
        assert!(p.requirements <= p.risks);
        assert!(p.high_risks <= p.risks);
        assert!(p.assurance_nodes > p.risks);
        assert!(p.evidence_items > 0);
    }

    #[test]
    fn sos_composition_scales_and_checks() {
        let comp = build_sos_composition(8, 5);
        assert_eq!(comp.modules().len(), 8);
        assert!(comp.check_all().is_empty());
        assert!(comp.check_incremental("constituent-3").is_empty());
        assert_eq!(comp.total_nodes(), 8 * (2 + 2 * 5));
    }

    #[test]
    fn sotif_evidence_separates_fog_from_clear() {
        let clear = sotif_evidence(
            silvasec_sim::weather::Weather::Clear,
            7,
            SimDuration::from_secs(1200),
        );
        let fog = sotif_evidence(
            silvasec_sim::weather::Weather::Fog,
            7,
            SimDuration::from_secs(1200),
        );
        assert!(
            clear.exposures >= 10,
            "too few episodes: {}",
            clear.exposures
        );
        assert!(
            fog.unsafe_rate() > clear.unsafe_rate(),
            "fog {:.2} vs clear {:.2}",
            fog.unsafe_rate(),
            clear.unsafe_rate()
        );
    }

    #[test]
    fn continuous_latency_escalates_risk() {
        let row = continuous_latency(AttackKind::GnssSpoofing, 11);
        assert!(row.risk_after >= row.risk_before);
        assert!(row.goals_in_doubt > 0);
    }

    #[test]
    fn ops_load_settles_conserves_and_replays() {
        let (engine, trace) = run_ops_load(100, 7);
        let counters = engine.store().counters();
        assert!(counters.duplicates_folded > 0, "dedup path exercised");
        assert_eq!(
            counters.settled() + counters.duplicates_folded,
            100,
            "every incident accounted for: {counters:?}"
        );
        assert!(engine.queue_conserves());
        let replayed = silvasec_ops::RunStore::replay_from_jsonl(&trace).unwrap();
        assert_eq!(replayed.digest(), engine.store().digest());
        assert_eq!(engine.store().first_divergence(&replayed), None);
        // Pure function of (incidents, seed).
        let (engine2, trace2) = run_ops_load(100, 7);
        assert_eq!(engine2.store().digest(), engine.store().digest());
        assert_eq!(trace2, trace);
    }

    #[test]
    fn tara_hypotheses_confirm_retire_and_replay_from_the_trace() {
        use silvasec_tara::{HypothesisSet, HypothesisStatus};

        let fleet = run_tara_hypotheses(4, 11);
        let tara = fleet.tara().expect("tara knob on");
        let (_, confirmed, retired) = tara.counts();
        assert!(confirmed > 0, "campaign evidence must confirm hypotheses");
        assert!(retired > 0, "rollout mitigation must retire hypotheses");
        assert!(tara
            .hypotheses()
            .iter()
            .filter(|h| h.status == HypothesisStatus::Retired)
            .all(|h| h.scenario.attack_class == "firmware-tampering"));

        // The hypothesis state is a pure function of the trace: rebuild
        // it from the JSONL alone and compare.
        let replayed =
            HypothesisSet::replay_from_jsonl(tara_ranking(11), &fleet.export_trace_jsonl())
                .unwrap();
        assert_eq!(replayed.first_divergence(tara), None);

        // And the scenario itself is deterministic.
        let fleet2 = run_tara_hypotheses(4, 11);
        assert_eq!(fleet2.export_trace_jsonl(), fleet.export_trace_jsonl());
    }

    fn episode_batch() -> Vec<EpisodeSpec> {
        let attacks = [
            None,
            Some(AttackKind::RfJamming),
            Some(AttackKind::DeauthFlood),
            Some(AttackKind::Replay),
        ];
        (0..8u64)
            .map(|i| {
                EpisodeSpec::standard(
                    SecurityPosture::secure(),
                    attacks[i as usize % attacks.len()],
                    11 + i % 3,
                    SimDuration::from_secs(150),
                )
            })
            .collect()
    }

    #[test]
    fn pooled_episodes_match_the_naive_oracle() {
        let specs = episode_batch();
        let naive: Vec<EpisodeOutcome> = specs.iter().map(run_episode_naive).collect();
        let pooled = EpisodeRunner::with_workers(1).run(&specs);
        assert_eq!(naive, pooled, "pooled runner diverged from naive oracle");
    }

    #[test]
    fn episode_runner_is_order_preserving_across_worker_counts() {
        let specs = episode_batch();
        let reference = EpisodeRunner::with_workers(1).run(&specs);
        assert_eq!(reference.len(), specs.len());
        for (spec, out) in specs.iter().zip(&reference) {
            assert_eq!(spec.seed, out.seed, "outcomes must come back in order");
        }
        for workers in [2usize, 3] {
            let out = EpisodeRunner::with_workers(workers).run(&specs);
            assert_eq!(out, reference, "diverged at {workers} workers");
        }
    }
}
