//! SHA-256 (FIPS 180-4).
//!
//! Incremental [`Sha256`] hasher plus the one-shot [`digest`] convenience
//! function. Validated against the NIST example vectors in the unit tests.

/// Digest output length in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block length in bytes.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use silvasec_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let d = h.finalize();
/// assert_eq!(d[..4], [0xba, 0x78, 0x16, 0xbf]);
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Full blocks compress straight out of the caller's slice — no
        // staging copy through the internal buffer.
        let mut blocks = data.chunks_exact(BLOCK_LEN);
        for block in &mut blocks {
            self.compress(block.try_into().expect("exact chunk"));
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > BLOCK_LEN - 8 {
            self.buf[self.buf_len..].fill(0);
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        self.buf[self.buf_len..BLOCK_LEN - 8].fill(0);
        self.buf[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    // Fully unrolled compression. The message schedule lives in a
    // rolling 16-word window updated in place, and the round macro is
    // invoked with rotated register orders so the eight working
    // variables never shuffle through a temporary — every index below
    // is a constant, so no bounds checks survive codegen. Bit-identical
    // to the textbook loop it replaced (same FIPS 180-4 arithmetic,
    // validated by the NIST vectors below).
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 16];
        for (w, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *w = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
             $k:expr, $w:expr) => {{
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add($k)
                    .wrapping_add($w);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0.wrapping_add(maj));
            }};
        }

        // Advance the rolling schedule window: w[i mod 16] becomes
        // message word i (for i >= 16) and is returned for the round.
        macro_rules! sched {
            ($i:expr) => {{
                let w15 = w[($i + 1) & 15];
                let w2 = w[($i + 14) & 15];
                let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
                let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
                w[$i & 15] = w[$i & 15]
                    .wrapping_add(s0)
                    .wrapping_add(w[($i + 9) & 15])
                    .wrapping_add(s1);
                w[$i & 15]
            }};
        }

        macro_rules! eight {
            ($k:expr, $w:expr) => {{
                let wf = $w;
                round!(a, b, c, d, e, f, g, h, K[$k], wf($k));
                round!(h, a, b, c, d, e, f, g, K[$k + 1], wf($k + 1));
                round!(g, h, a, b, c, d, e, f, K[$k + 2], wf($k + 2));
                round!(f, g, h, a, b, c, d, e, K[$k + 3], wf($k + 3));
                round!(e, f, g, h, a, b, c, d, K[$k + 4], wf($k + 4));
                round!(d, e, f, g, h, a, b, c, K[$k + 5], wf($k + 5));
                round!(c, d, e, f, g, h, a, b, K[$k + 6], wf($k + 6));
                round!(b, c, d, e, f, g, h, a, K[$k + 7], wf($k + 7));
            }};
        }

        eight!(0, |i: usize| w[i]);
        eight!(8, |i: usize| w[i]);

        macro_rules! sched_eight {
            ($k:expr) => {{
                round!(a, b, c, d, e, f, g, h, K[$k], sched!($k));
                round!(h, a, b, c, d, e, f, g, K[$k + 1], sched!($k + 1));
                round!(g, h, a, b, c, d, e, f, K[$k + 2], sched!($k + 2));
                round!(f, g, h, a, b, c, d, e, K[$k + 3], sched!($k + 3));
                round!(e, f, g, h, a, b, c, d, K[$k + 4], sched!($k + 4));
                round!(d, e, f, g, h, a, b, c, K[$k + 5], sched!($k + 5));
                round!(c, d, e, f, g, h, a, b, K[$k + 6], sched!($k + 6));
                round!(b, c, d, e, f, g, h, a, K[$k + 7], sched!($k + 7));
            }};
        }

        sched_eight!(16);
        sched_eight!(24);
        sched_eight!(32);
        sched_eight!(40);
        sched_eight!(48);
        sched_eight!(56);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
///
/// # Example
///
/// ```
/// let d = silvasec_crypto::sha256::digest(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
#[must_use]
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split_a in [0usize, 1, 63, 64, 65, 127, 500] {
            for split_b in [0usize, 1, 64, 100] {
                let mut h = Sha256::new();
                let a = split_a.min(data.len());
                let b = (split_a + split_b).min(data.len());
                h.update(&data[..a]);
                h.update(&data[a..b]);
                h.update(&data[b..]);
                assert_eq!(h.finalize(), digest(&data), "splits {split_a}/{split_b}");
            }
        }
    }

    #[test]
    fn length_boundary_paddings() {
        // Exercise the two-block padding path around the 56-byte boundary.
        for len in 50..70usize {
            let data = vec![0xabu8; len];
            let d1 = digest(&data);
            let mut h = Sha256::new();
            for byte in &data {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
