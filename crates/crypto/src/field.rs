//! Arithmetic in GF(2^255 − 19), the field underlying Curve25519.
//!
//! Elements are represented with five 51-bit limbs. All public
//! operations return *reduce-bounded* elements — every limb below
//! 2^51 + 2^15 — and [`FieldElement::mul`] / [`FieldElement::square`]
//! accept limbs up to 2^54, so every intermediate product stays inside
//! `u128`. The crate-internal `weak_*` operations skip the carry chain
//! and return limbs up to ~2^54; their results are only ever fed
//! straight into a multiply or square (see the bound notes at each
//! definition), never stored or compared.

const MASK51: u64 = (1 << 51) - 1;
/// 2·p in 51-bit limb form, added before subtraction to avoid underflow.
const TWO_P: [u64; 5] = [
    0x000f_ffff_ffff_ffda,
    0x000f_ffff_ffff_fffe,
    0x000f_ffff_ffff_fffe,
    0x000f_ffff_ffff_fffe,
    0x000f_ffff_ffff_fffe,
];
/// 4·p in 51-bit limb form, for `weak_sub_wide` whose subtrahend may
/// exceed the `TWO_P` limbs.
const FOUR_P: [u64; 5] = [
    0x001f_ffff_ffff_ffb4,
    0x001f_ffff_ffff_fffc,
    0x001f_ffff_ffff_fffc,
    0x001f_ffff_ffff_fffc,
    0x001f_ffff_ffff_fffc,
];

/// An element of GF(2^255 − 19).
///
/// # Example
///
/// ```
/// use silvasec_crypto::field::FieldElement;
///
/// let two = FieldElement::from_u64(2);
/// let four = two.mul(&two);
/// assert_eq!(four, FieldElement::from_u64(4));
/// assert_eq!(four.mul(&four.invert()), FieldElement::ONE);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FieldElement(pub(crate) [u64; 5]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0; 5]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Creates a field element from a small integer.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        let mut fe = FieldElement([0; 5]);
        fe.0[0] = x & MASK51;
        fe.0[1] = x >> 51;
        fe
    }

    /// Decodes 32 little-endian bytes, ignoring the top bit (bit 255).
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        let load = |range: std::ops::Range<usize>| -> u64 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[range]);
            u64::from_le_bytes(buf)
        };
        FieldElement([
            load(0..8) & MASK51,
            (load(6..14) >> 3) & MASK51,
            (load(12..20) >> 6) & MASK51,
            (load(19..27) >> 1) & MASK51,
            (load(24..32) >> 12) & MASK51,
        ])
    }

    /// Encodes the canonical (fully reduced) representative as 32 bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut limbs = self.carry().carry().0;
        // Compute q = floor((h + 19) / 2^255): 1 when h >= p, else 0.
        let mut q = (limbs[0] + 19) >> 51;
        q = (limbs[1] + q) >> 51;
        q = (limbs[2] + q) >> 51;
        q = (limbs[3] + q) >> 51;
        q = (limbs[4] + q) >> 51;
        // h + 19q mod 2^255 is the canonical representative.
        limbs[0] += 19 * q;
        for i in 0..4 {
            limbs[i + 1] += limbs[i] >> 51;
            limbs[i] &= MASK51;
        }
        limbs[4] &= MASK51;

        let mut out = [0u8; 32];
        let mut bit = 0usize;
        for limb in limbs {
            for k in 0..51 {
                if (limb >> k) & 1 == 1 {
                    out[(bit + k) / 8] |= 1 << ((bit + k) % 8);
                }
            }
            bit += 51;
        }
        out
    }

    fn carry(self) -> Self {
        let mut l = self.0;
        for i in 0..4 {
            l[i + 1] += l[i] >> 51;
            l[i] &= MASK51;
        }
        l[0] += 19 * (l[4] >> 51);
        l[4] &= MASK51;
        FieldElement(l)
    }

    /// Addition in the field.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        let mut l = [0u64; 5];
        for (out, (a, b)) in l.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *out = a + b;
        }
        FieldElement(l).carry()
    }

    /// Subtraction in the field.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + TWO_P[i] - rhs.0[i];
        }
        FieldElement(l).carry()
    }

    /// Negation in the field.
    #[must_use]
    pub fn neg(&self) -> Self {
        Self::ZERO.sub(self)
    }

    /// Addition without the trailing carry chain. Output limbs are the
    /// sums of the input limbs; the caller must feed the result into a
    /// multiply or square while the total stays below 2^54.
    pub(crate) fn weak_add(&self, rhs: &Self) -> Self {
        let mut l = [0u64; 5];
        for (out, (a, b)) in l.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *out = a + b;
        }
        FieldElement(l)
    }

    /// Subtraction without the trailing carry chain: `self + 2p − rhs`.
    /// `rhs` must be reduce-bounded (limbs < 2^51 + 2^15, i.e. the
    /// output of a carried operation or of `reduce_wide`) so no limb
    /// underflows; output limbs stay below `self`'s bound + 2^52.
    pub(crate) fn weak_sub(&self, rhs: &Self) -> Self {
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + TWO_P[i] - rhs.0[i];
        }
        FieldElement(l)
    }

    /// `weak_sub` against a wider subtrahend: `self + 4p − rhs` for
    /// `rhs` limbs below 2^53 − 76 (e.g. the un-carried double of a
    /// reduce-bounded element); output limbs stay below `self`'s bound
    /// + 2^53.
    pub(crate) fn weak_sub_wide(&self, rhs: &Self) -> Self {
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + FOUR_P[i] - rhs.0[i];
        }
        FieldElement(l)
    }

    /// Negation without the trailing carry chain: `4p − self`, for
    /// limbs below 2^53 − 76; output limbs stay below 2^53.
    pub(crate) fn weak_neg_wide(&self) -> Self {
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = FOUR_P[i] - self.0[i];
        }
        FieldElement(l)
    }

    /// Multiplication in the field.
    ///
    /// The ×19 wraparound factors are applied to `rhs`'s limbs in u64
    /// *before* widening — the same prescale [`square`] uses — so every
    /// term is a single 64×64→128 multiply instead of a wide 128-bit
    /// one. Inputs are ≤ 2^54 per the mul/square contract, so
    /// 19·bᵢ < 2^59 fits u64 and each five-term column stays below
    /// 2^116 inside `u128`. Bit-identical to the frozen
    /// [`mul_reference`] oracle (proptested).
    ///
    /// [`square`]: FieldElement::square
    /// [`mul_reference`]: FieldElement::mul_reference
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        let a = self.0;
        let b = rhs.0;
        let b1_19 = 19 * b[1];
        let b2_19 = 19 * b[2];
        let b3_19 = 19 * b[3];
        let b4_19 = 19 * b[4];
        let m = |x: u64, y: u64| u128::from(x) * u128::from(y);

        let c0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let c1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let c2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        Self::reduce_wide([c0, c1, c2, c3, c4])
    }

    /// Frozen widening reference for [`mul`]: the original formulation
    /// that widens every limb to `u128` first and applies the ×19
    /// factors after the products. Deliberately never optimized — the
    /// workspace proptests pin [`mul`] bit-identical against it.
    ///
    /// [`mul`]: FieldElement::mul
    #[must_use]
    pub fn mul_reference(&self, rhs: &Self) -> Self {
        let a = self.0.map(u128::from);
        let b = rhs.0.map(u128::from);

        let c0 = a[0] * b[0] + 19 * (a[1] * b[4] + a[2] * b[3] + a[3] * b[2] + a[4] * b[1]);
        let c1 = a[0] * b[1] + a[1] * b[0] + 19 * (a[2] * b[4] + a[3] * b[3] + a[4] * b[2]);
        let c2 = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + 19 * (a[3] * b[4] + a[4] * b[3]);
        let c3 = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + 19 * (a[4] * b[4]);
        let c4 = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];

        Self::reduce_wide([c0, c1, c2, c3, c4])
    }

    /// Squaring in the field.
    ///
    /// Dedicated formula: exploiting symmetry of the product terms cuts
    /// the 25 limb products of a general multiply down to 15, which is
    /// what makes the doubling-dominated scalar-multiplication ladders
    /// in [`crate::edwards`] cheap.
    #[must_use]
    pub fn square(&self) -> Self {
        let a = self.0;
        // Pre-doubled and pre-scaled copies so each cross term is one
        // multiply: a_i·a_j appears twice in the schoolbook expansion.
        // Scaling happens in u64 *before* widening (inputs are ≤ 2^54
        // per the mul/square contract, so 19·aᵢ < 2^59 and 2·aᵢ < 2^55
        // both fit), which keeps every product a single 64×64→128
        // multiply instead of a wide 128-bit one.
        let d0 = 2 * a[0];
        let d1 = 2 * a[1];
        let d2 = 2 * a[2];
        let a3_19 = 19 * a[3];
        let a4_19 = 19 * a[4];
        let d4_19 = 2 * a4_19;
        let m = |x: u64, y: u64| u128::from(x) * u128::from(y);

        let c0 = m(a[0], a[0]) + m(d1, a4_19) + m(d2, a3_19);
        let c1 = m(d0, a[1]) + m(d2, a4_19) + m(a3_19, a[3]);
        let c2 = m(d0, a[2]) + m(a[1], a[1]) + m(a[3], d4_19);
        let c3 = m(d0, a[3]) + m(d1, a[2]) + m(a4_19, a[4]);
        let c4 = m(d0, a[4]) + m(d1, a[3]) + m(a[2], a[2]);

        Self::reduce_wide([c0, c1, c2, c3, c4])
    }

    fn reduce_wide(mut c: [u128; 5]) -> Self {
        let mut out = [0u64; 5];
        for i in 0..4 {
            c[i + 1] += c[i] >> 51;
            out[i] = (c[i] as u64) & MASK51;
        }
        let carry = (c[4] >> 51) as u64;
        out[4] = (c[4] as u64) & MASK51;
        out[0] += 19 * carry;
        // One step of propagation is enough: only limb 0 can exceed 51
        // bits here, and 19·carry < 2^64 keeps the sum in range even for
        // inputs at the 2^54 limb bound. Limb 1 ends below 2^51 + 2^15,
        // so the result is reduce-bounded.
        out[1] += out[0] >> 51;
        out[0] &= MASK51;
        FieldElement(out)
    }

    /// Raises `self` to the power 2^k by repeated squaring.
    #[must_use]
    pub fn pow2k(&self, k: u32) -> Self {
        let mut out = *self;
        for _ in 0..k {
            out = out.square();
        }
        out
    }

    /// Computes the multiplicative inverse (x^(p−2)).
    ///
    /// Returns zero for the zero element (which has no inverse).
    #[must_use]
    pub fn invert(&self) -> Self {
        // p − 2 = 2^255 − 21: all bits set from 254 down to 5,
        // then bits 4..0 = 01011.
        let mut acc = Self::ONE;
        let mut first = true;
        for bit in (0..255).rev() {
            if !first {
                acc = acc.square();
            }
            let bit_set = if bit >= 5 {
                true
            } else {
                // low bits of (2^255 - 21): ...01011
                matches!(bit, 0 | 1 | 3)
            };
            if bit_set {
                if first {
                    acc = *self;
                    first = false;
                } else {
                    acc = acc.mul(self);
                }
            }
        }
        acc
    }

    /// Whether this element is zero (canonically).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Replaces `self` with `other` when `mask` is all-ones, leaves it
    /// unchanged when `mask` is all-zeros, without a data-dependent
    /// branch. `mask` must be `0` or `u64::MAX`.
    pub fn conditional_assign(&mut self, other: &Self, mask: u64) {
        for i in 0..5 {
            self.0[i] = crate::ct::select_u64(mask, other.0[i], self.0[i]);
        }
    }

    /// Swaps `a` and `b` when `swap` is 1, using arithmetic masking.
    pub fn conditional_swap(a: &mut Self, b: &mut Self, swap: u64) {
        debug_assert!(swap <= 1);
        let mask = swap.wrapping_neg();
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for FieldElement {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(x: u64) -> FieldElement {
        FieldElement::from_u64(x)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(123456789);
        let b = fe(987654321);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn sub_wraps_mod_p() {
        // 0 - 1 = p - 1
        let minus_one = FieldElement::ZERO.sub(&FieldElement::ONE);
        let bytes = minus_one.to_bytes();
        // p - 1 = 2^255 - 20 → low byte 0xec, top byte 0x7f.
        assert_eq!(bytes[0], 0xec);
        assert_eq!(bytes[31], 0x7f);
        assert_eq!(minus_one.add(&FieldElement::ONE), FieldElement::ZERO);
    }

    #[test]
    fn mul_matches_repeated_add() {
        let a = fe(7);
        let mut sum = FieldElement::ZERO;
        for _ in 0..13 {
            sum = sum.add(&a);
        }
        assert_eq!(a.mul(&fe(13)), sum);
    }

    #[test]
    fn invert_small_values() {
        for x in 1..50u64 {
            let a = fe(x);
            assert_eq!(a.mul(&a.invert()), FieldElement::ONE, "x = {x}");
        }
    }

    #[test]
    fn invert_zero_is_zero() {
        assert!(FieldElement::ZERO.invert().is_zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 17 + 3) as u8;
        }
        bytes[31] &= 0x7f; // keep below 2^255
        let a = FieldElement::from_bytes(&bytes);
        // Not all 255-bit strings are canonical; roundtrip through the
        // canonical form instead.
        let canon = a.to_bytes();
        assert_eq!(FieldElement::from_bytes(&canon).to_bytes(), canon);
    }

    #[test]
    fn noncanonical_p_encodes_as_zero() {
        // p itself = 2^255 - 19 must reduce to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(FieldElement::from_bytes(&p_bytes).is_zero());
    }

    #[test]
    fn conditional_assign_works() {
        let mut a = fe(1);
        a.conditional_assign(&fe(9), 0);
        assert_eq!(a, fe(1));
        a.conditional_assign(&fe(9), u64::MAX);
        assert_eq!(a, fe(9));
    }

    #[test]
    fn square_matches_mul_on_large_values() {
        // Exercise the dedicated squaring against the general multiply
        // on values with all limbs near the 2^51 bound.
        let mut bytes = [0xf3u8; 32];
        bytes[31] = 0x7a;
        let mut x = FieldElement::from_bytes(&bytes);
        for _ in 0..50 {
            assert_eq!(x.square(), x.mul(&x));
            x = x.square().add(&FieldElement::from_u64(0x1234_5678_9abc));
        }
    }

    #[test]
    fn conditional_swap_works() {
        let mut a = fe(1);
        let mut b = fe(2);
        FieldElement::conditional_swap(&mut a, &mut b, 0);
        assert_eq!((a, b), (fe(1), fe(2)));
        FieldElement::conditional_swap(&mut a, &mut b, 1);
        assert_eq!((a, b), (fe(2), fe(1)));
    }

    #[test]
    fn distributive_law() {
        let a = fe(0xdead_beef);
        let b = fe(0x1234_5678);
        let c = fe(0x0bad_f00d);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn mul_matches_reference_on_large_values() {
        // Prescaled mul against the frozen widening reference on values
        // with all limbs near the 2^51 bound (and on weak, un-carried
        // inputs near the 2^54 contract bound via repeated weak_add).
        let mut bytes = [0xf3u8; 32];
        bytes[31] = 0x7a;
        let mut x = FieldElement::from_bytes(&bytes);
        let mut y = FieldElement::from_bytes(&[0x5cu8; 32]);
        for _ in 0..50 {
            assert_eq!(x.mul(&y).0, x.mul_reference(&y).0);
            let wide = x.weak_add(&x).weak_add(&x).weak_add(&x);
            assert_eq!(wide.mul(&y).0, wide.mul_reference(&y).0);
            x = x.mul(&y).add(&FieldElement::ONE);
            y = y.square().add(&x);
        }
    }

    #[test]
    fn square_matches_mul() {
        let mut x = fe(3);
        for _ in 0..20 {
            assert_eq!(x.square(), x.mul(&x));
            x = x.mul(&fe(0x9e37_79b9)).add(&FieldElement::ONE);
        }
    }

    #[test]
    fn pow2k_matches_squares() {
        let x = fe(5);
        assert_eq!(x.pow2k(3), x.square().square().square());
    }
}
