//! The X25519 Diffie–Hellman function (RFC 7748).

use crate::field::FieldElement;

/// Length of X25519 private keys, public keys and shared secrets.
pub const KEY_LEN: usize = 32;

/// The u-coordinate of the X25519 base point (9).
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 scalar multiplication function.
///
/// Computes the u-coordinate of `scalar * (point with u-coordinate u)`,
/// clamping `scalar` per RFC 7748.
#[must_use]
pub fn scalar_mul(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = FieldElement::from_bytes(u);

    let mut x2 = FieldElement::ONE;
    let mut z2 = FieldElement::ZERO;
    let mut x3 = x1;
    let mut z3 = FieldElement::ONE;
    let a24 = FieldElement::from_u64(121_665);

    let mut swap = 0u64;
    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        FieldElement::conditional_swap(&mut x2, &mut x3, swap);
        FieldElement::conditional_swap(&mut z2, &mut z3, swap);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24.mul(&e)));
    }
    FieldElement::conditional_swap(&mut x2, &mut x3, swap);
    FieldElement::conditional_swap(&mut z2, &mut z3, swap);

    x2.mul(&z2.invert()).to_bytes()
}

/// Derives the public key for a private key.
#[must_use]
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    scalar_mul(private, &BASEPOINT)
}

/// Builds an (private, public) key pair from 32 bytes of seed material.
#[must_use]
pub fn keypair(seed: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    (*seed, public_key(seed))
}

/// Computes the Diffie–Hellman shared secret.
///
/// The result is all zeros when the peer's public key is a small-order
/// point; callers (the handshake layer) must reject that case.
#[must_use]
pub fn diffie_hellman(private: &[u8; 32], peer_public: &[u8; 32]) -> [u8; 32] {
    scalar_mul(private, peer_public)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7748 section 5.2, vector 1.
    #[test]
    fn rfc7748_vector1() {
        let k = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&scalar_mul(&k, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 section 5.2, vector 2.
    #[test]
    fn rfc7748_vector2() {
        let k = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&scalar_mul(&k, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 section 5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let k = BASEPOINT;
        let u = BASEPOINT;
        assert_eq!(
            hex(&scalar_mul(&k, &u)),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    // RFC 7748 section 6.1 Diffie-Hellman test.
    #[test]
    fn rfc7748_dh() {
        let alice_priv =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared = diffie_hellman(&alice_priv, &bob_pub);
        assert_eq!(
            hex(&shared),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
        assert_eq!(shared, diffie_hellman(&bob_priv, &alice_pub));
    }

    #[test]
    fn zero_point_gives_zero_secret() {
        let priv_key = [0x42u8; 32];
        assert_eq!(diffie_hellman(&priv_key, &[0u8; 32]), [0u8; 32]);
    }

    #[test]
    fn different_keys_different_secrets() {
        let (a_priv, a_pub) = keypair(&[1u8; 32]);
        let (_, b_pub) = keypair(&[2u8; 32]);
        assert_ne!(a_pub, b_pub);
        assert_ne!(
            diffie_hellman(&a_priv, &b_pub),
            diffie_hellman(&a_priv, &a_pub)
        );
    }
}
