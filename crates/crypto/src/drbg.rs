//! A deterministic random bit generator built on ChaCha20.
//!
//! The whole SilvaSec simulation is seeded and reproducible; this DRBG is
//! the only source of "randomness" the security substrates use (key
//! generation, nonces, attack schedules). It is *deterministic by design* —
//! a production system would seed it from hardware entropy.

use crate::chacha20::{ChaCha20, BLOCK_LEN};
use crate::sha256;

/// A ChaCha20-based deterministic random bit generator.
///
/// # Example
///
/// ```
/// use silvasec_crypto::drbg::ChaChaDrbg;
///
/// let mut rng = ChaChaDrbg::from_seed(b"worksite-7");
/// let a = rng.next_u64();
/// let mut rng2 = ChaChaDrbg::from_seed(b"worksite-7");
/// assert_eq!(a, rng2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct ChaChaDrbg {
    cipher: ChaCha20,
    counter: u64,
    buf: [u8; BLOCK_LEN],
    buf_pos: usize,
}

impl ChaChaDrbg {
    /// Creates a DRBG from arbitrary seed material (hashed to a key).
    #[must_use]
    pub fn from_seed(seed: &[u8]) -> Self {
        let key = sha256::digest(seed);
        ChaChaDrbg {
            cipher: ChaCha20::new(&key),
            counter: 0,
            buf: [0; BLOCK_LEN],
            buf_pos: BLOCK_LEN,
        }
    }

    /// Derives an independent child generator labelled by `label`.
    ///
    /// Children with different labels produce independent streams; the
    /// parent's state is unaffected.
    ///
    /// Short labels (all the simulation's subsystem labels) are hashed
    /// through a stack buffer so forking is allocation-free — the
    /// episode-reset fast path forks a dozen streams per episode and
    /// must stay at zero allocations. The hashed bytes are identical to
    /// the original heap-built layout, so every fork stream is unchanged.
    #[must_use]
    pub fn fork(&self, label: &[u8]) -> Self {
        const PREFIX: usize = 8 + 6; // counter ‖ b"/fork/"
        const STACK_LABEL_MAX: usize = 42;
        // Mix in a block of our keystream so forks of forks differ.
        let nonce = self.nonce_for(self.counter);
        let block = self.cipher.block(&nonce, u32::MAX);
        if label.len() <= STACK_LABEL_MAX {
            let mut seed = [0u8; PREFIX + STACK_LABEL_MAX + BLOCK_LEN];
            seed[..8].copy_from_slice(&self.counter.to_le_bytes());
            seed[8..PREFIX].copy_from_slice(b"/fork/");
            seed[PREFIX..PREFIX + label.len()].copy_from_slice(label);
            let end = PREFIX + label.len() + BLOCK_LEN;
            seed[PREFIX + label.len()..end].copy_from_slice(&block);
            ChaChaDrbg::from_seed(&seed[..end])
        } else {
            let mut seed = Vec::with_capacity(PREFIX + label.len() + BLOCK_LEN);
            seed.extend_from_slice(&self.counter.to_le_bytes());
            seed.extend_from_slice(b"/fork/");
            seed.extend_from_slice(label);
            seed.extend_from_slice(&block);
            ChaChaDrbg::from_seed(&seed)
        }
    }

    fn nonce_for(&self, counter: u64) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&counter.to_le_bytes());
        nonce
    }

    fn refill(&mut self) {
        let nonce = self.nonce_for(self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.buf = self.cipher.block(&nonce, 0);
        self.buf_pos = 0;
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buf_pos == BLOCK_LEN {
                self.refill();
            }
            *byte = self.buf[self.buf_pos];
            self.buf_pos += 1;
        }
    }

    /// Returns the next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a pseudorandom value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a pseudorandom `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a fresh 32-byte key/seed.
    pub fn next_seed(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaChaDrbg::from_seed(b"seed");
        let mut b = ChaChaDrbg::from_seed(b"seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaDrbg::from_seed(b"seed-a");
        let mut b = ChaChaDrbg::from_seed(b"seed-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let parent = ChaChaDrbg::from_seed(b"root");
        let mut c1 = parent.fork(b"comms");
        let mut c2 = parent.fork(b"attack");
        let mut c1_again = parent.fork(b"comms");
        assert_ne!(c1.next_u64(), c2.next_u64());
        assert_eq!(c1_again.next_u64(), {
            let mut c = parent.fork(b"comms");
            c.next_u64()
        });
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut rng = ChaChaDrbg::from_seed(b"range");
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2 + 1] {
            for _ in 0..200 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = ChaChaDrbg::from_seed(b"f");
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean should be near 0.5 for a uniform stream.
        let mean = sum / 1000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        ChaChaDrbg::from_seed(b"x").next_bounded(0);
    }

    #[test]
    fn fill_bytes_across_block_boundaries() {
        let mut a = ChaChaDrbg::from_seed(b"blocks");
        let mut big = [0u8; 200];
        a.fill_bytes(&mut big);

        let mut b = ChaChaDrbg::from_seed(b"blocks");
        let mut parts = [0u8; 200];
        let (p1, rest) = parts.split_at_mut(63);
        let (p2, p3) = rest.split_at_mut(65);
        b.fill_bytes(p1);
        b.fill_bytes(p2);
        b.fill_bytes(p3);
        assert_eq!(big.to_vec(), parts.to_vec());
    }
}
