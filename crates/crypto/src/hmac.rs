//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.
//!
//! [`HmacKey`] holds the key schedule — the hash states after the ipad
//! and opad blocks, compressed exactly once at construction. Every MAC
//! started from it ([`HmacKey::mac_start`]) clones those states instead
//! of re-deriving the pads and re-compressing them, which is what makes
//! multi-invocation consumers (HKDF expansion, per-record handshake
//! transcripts) cheap.

use crate::ct;
use crate::error::CryptoError;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// A precomputed HMAC-SHA256 key schedule: the inner (ipad) and outer
/// (opad) hash states, each compressed once when the key is prepared.
///
/// # Example
///
/// ```
/// use silvasec_crypto::hmac::{HmacKey, HmacSha256};
///
/// let key = HmacKey::new(b"key");
/// let tag = key.mac(b"message");
/// assert_eq!(tag, HmacSha256::mac(b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl HmacKey {
    /// Prepares the key schedule for `key` (any length): derives the
    /// ipad/opad blocks and absorbs each into its hash state once.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            block_key[..DIGEST_LEN].copy_from_slice(&crate::sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Starts an incremental MAC under this key. No pad derivation or
    /// compression happens here — both precomputed states are cloned.
    #[must_use]
    pub fn mac_start(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// Computes the tag of `data` under this key in one shot.
    #[must_use]
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.mac_start();
        h.update(data);
        h.finalize()
    }
}

/// An incremental HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use silvasec_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert!(HmacSha256::verify(b"key", b"message", &tag).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    ///
    /// For repeated MACs under one key, build an [`HmacKey`] once and
    /// use [`HmacKey::mac_start`] instead.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).mac_start()
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Computes the tag of `data` under `key` in one shot.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` over `data` under `key` in constant time.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] when the tag does not
    /// match.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> Result<(), CryptoError> {
        let expected = Self::mac(key, data);
        if ct::eq(&expected, tag) {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key larger than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag).is_ok());
        let mut bad = tag;
        bad[0] ^= 1;
        assert_eq!(
            HmacSha256::verify(b"k", b"m", &bad),
            Err(CryptoError::VerificationFailed)
        );
        assert!(HmacSha256::verify(b"k2", b"m", &tag).is_err());
        assert!(HmacSha256::verify(b"k", b"m2", &tag).is_err());
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }
}
