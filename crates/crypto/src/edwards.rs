//! The edwards25519 group: −x² + y² = 1 + d·x²·y² over GF(2^255 − 19).
//!
//! Points use extended twisted Edwards coordinates (X : Y : Z : T) with
//! x = X/Z, y = Y/Z, T = XY/Z. The wire encoding here is **uncompressed**
//! (x ‖ y, 64 bytes): unlike Ed25519 we never need a field square root,
//! which keeps the implementation small. This is a documented deviation
//! from the Ed25519 wire format (see DESIGN.md).

use crate::error::CryptoError;
use crate::field::FieldElement;
use crate::scalar::Scalar;

/// Length of an encoded (uncompressed) point.
pub const POINT_LEN: usize = 64;

/// The curve constant d = −121665/121666.
const D_BYTES: [u8; 32] = [
    0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75, 0xab, 0xd8, 0x41, 0x41, 0x4d, 0x0a, 0x70, 0x00,
    0x98, 0xe8, 0x79, 0x77, 0x79, 0x40, 0xc7, 0x8c, 0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52,
];
/// 2·d, used by the addition formula.
const D2_BYTES: [u8; 32] = [
    0x59, 0xf1, 0xb2, 0x26, 0x94, 0x9b, 0xd6, 0xeb, 0x56, 0xb1, 0x83, 0x82, 0x9a, 0x14, 0xe0, 0x00,
    0x30, 0xd1, 0xf3, 0xee, 0xf2, 0x80, 0x8e, 0x19, 0xe7, 0xfc, 0xdf, 0x56, 0xdc, 0xd9, 0x06, 0x24,
];
/// x-coordinate of the standard base point.
const BX_BYTES: [u8; 32] = [
    0x1a, 0xd5, 0x25, 0x8f, 0x60, 0x2d, 0x56, 0xc9, 0xb2, 0xa7, 0x25, 0x95, 0x60, 0xc7, 0x2c, 0x69,
    0x5c, 0xdc, 0xd6, 0xfd, 0x31, 0xe2, 0xa4, 0xc0, 0xfe, 0x53, 0x6e, 0xcd, 0xd3, 0x36, 0x69, 0x21,
];
/// y-coordinate of the standard base point (4/5).
const BY_BYTES: [u8; 32] = [
    0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
];

fn d() -> FieldElement {
    FieldElement::from_bytes(&D_BYTES)
}

fn d2() -> FieldElement {
    FieldElement::from_bytes(&D2_BYTES)
}

/// A point on edwards25519 in extended coordinates.
///
/// # Example
///
/// ```
/// use silvasec_crypto::{edwards::EdwardsPoint, scalar::Scalar};
///
/// let b = EdwardsPoint::basepoint();
/// let two_b = b.add(&b);
/// assert_eq!(b.scalar_mul(&Scalar::from_u64(2)), two_b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

impl EdwardsPoint {
    /// The identity (neutral) element.
    #[must_use]
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point B (order ℓ).
    #[must_use]
    pub fn basepoint() -> Self {
        let x = FieldElement::from_bytes(&BX_BYTES);
        let y = FieldElement::from_bytes(&BY_BYTES);
        EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        }
    }

    /// Constructs a point from affine coordinates, checking the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if (x, y) is not on the
    /// curve.
    pub fn from_affine(x: FieldElement, y: FieldElement) -> Result<Self, CryptoError> {
        // −x² + y² = 1 + d·x²·y²
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = FieldElement::ONE.add(&d().mul(&xx).mul(&yy));
        if lhs != rhs {
            return Err(CryptoError::InvalidEncoding);
        }
        Ok(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        })
    }

    /// Returns the affine coordinates (x, y).
    #[must_use]
    pub fn to_affine(&self) -> (FieldElement, FieldElement) {
        let z_inv = self.z.invert();
        (self.x.mul(&z_inv), self.y.mul(&z_inv))
    }

    /// Encodes the point as 64 bytes: x ‖ y, each 32 bytes little-endian.
    #[must_use]
    pub fn encode(&self) -> [u8; POINT_LEN] {
        let (x, y) = self.to_affine();
        let mut out = [0u8; POINT_LEN];
        out[..32].copy_from_slice(&x.to_bytes());
        out[32..].copy_from_slice(&y.to_bytes());
        out
    }

    /// Decodes a 64-byte uncompressed point, validating the curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if the coordinates are not
    /// a point on the curve.
    pub fn decode(bytes: &[u8; POINT_LEN]) -> Result<Self, CryptoError> {
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        // Reject non-canonical field encodings: bit 255 must be clear and
        // the value below p.
        let x = FieldElement::from_bytes(&xb);
        let y = FieldElement::from_bytes(&yb);
        if x.to_bytes() != xb || y.to_bytes() != yb {
            return Err(CryptoError::InvalidEncoding);
        }
        Self::from_affine(x, y)
    }

    /// Point addition (add-2008-hwcd-3 formulas for a = −1).
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let c = self.t.mul(&d2()).mul(&rhs.t);
        let dd = self.z.mul(&rhs.z).add(&self.z.mul(&rhs.z));
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling (dbl-2008-hwcd formulas for a = −1).
    #[must_use]
    pub fn double(&self) -> Self {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let d = a.neg(); // a·X² with a = −1
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Negation: (x, y) → (−x, y).
    #[must_use]
    pub fn neg(&self) -> Self {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by double-and-add (MSB first).
    #[must_use]
    pub fn scalar_mul(&self, scalar: &Scalar) -> Self {
        let mut acc = EdwardsPoint::identity();
        for bit in scalar.bits_msb_first() {
            acc = acc.double();
            if bit {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Computes `a·self + b·other` (the verification equation shape).
    #[must_use]
    pub fn double_scalar_mul(&self, a: &Scalar, other: &Self, b: &Scalar) -> Self {
        self.scalar_mul(a).add(&other.scalar_mul(b))
    }

    /// Whether this is the identity element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        // x = 0 and y = z.
        self.x.is_zero() && self.y == self.z
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1, Y1/Z1) == (X2/Z2, Y2/Z2) ⇔ cross products match.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        let b = EdwardsPoint::basepoint();
        let (x, y) = b.to_affine();
        assert!(EdwardsPoint::from_affine(x, y).is_ok());
    }

    #[test]
    fn identity_laws() {
        let b = EdwardsPoint::basepoint();
        let id = EdwardsPoint::identity();
        assert_eq!(b.add(&id), b);
        assert_eq!(id.add(&b), b);
        assert!(id.is_identity());
        assert!(!b.is_identity());
    }

    #[test]
    fn double_matches_add() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double(), b.add(&b));
        let four = b.double().double();
        assert_eq!(four, b.add(&b).add(&b).add(&b));
    }

    #[test]
    fn neg_is_inverse() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small() {
        let b = EdwardsPoint::basepoint();
        assert!(b.scalar_mul(&Scalar::ZERO).is_identity());
        assert_eq!(b.scalar_mul(&Scalar::ONE), b);
        assert_eq!(b.scalar_mul(&Scalar::from_u64(2)), b.double());
        assert_eq!(
            b.scalar_mul(&Scalar::from_u64(5)),
            b.double().double().add(&b)
        );
    }

    #[test]
    fn order_annihilates_basepoint() {
        // ℓ·B = identity.
        let b = EdwardsPoint::basepoint();
        // ℓ = L limbs; build ℓ−1 then add B once more.
        let l_minus_1 = Scalar::from_u64(1).neg();
        let almost = b.scalar_mul(&l_minus_1);
        assert!(almost.add(&b).is_identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = EdwardsPoint::basepoint();
        let a = Scalar::from_u64(123);
        let c = Scalar::from_u64(456);
        assert_eq!(
            b.scalar_mul(&a.add(&c)),
            b.scalar_mul(&a).add(&b.scalar_mul(&c))
        );
        assert_eq!(b.scalar_mul(&a.mul(&c)), b.scalar_mul(&a).scalar_mul(&c));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = EdwardsPoint::basepoint().scalar_mul(&Scalar::from_u64(777));
        let enc = p.encode();
        let q = EdwardsPoint::decode(&enc).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.encode(), enc);
    }

    #[test]
    fn decode_rejects_off_curve() {
        let mut enc = EdwardsPoint::basepoint().encode();
        enc[0] ^= 1; // perturb x
        assert_eq!(
            EdwardsPoint::decode(&enc),
            Err(CryptoError::InvalidEncoding)
        );
    }

    #[test]
    fn decode_rejects_noncanonical() {
        // Encode y = p (non-canonical zero) with x of the identity.
        let mut enc = [0u8; 64];
        enc[32] = 0xed;
        for b in enc[33..63].iter_mut() {
            *b = 0xff;
        }
        enc[63] = 0x7f;
        assert!(EdwardsPoint::decode(&enc).is_err());
    }

    #[test]
    fn double_scalar_mul_matches() {
        let b = EdwardsPoint::basepoint();
        let p = b.scalar_mul(&Scalar::from_u64(31337));
        let a = Scalar::from_u64(17);
        let c = Scalar::from_u64(99);
        assert_eq!(
            b.double_scalar_mul(&a, &p, &c),
            b.scalar_mul(&a).add(&p.scalar_mul(&c))
        );
    }
}
