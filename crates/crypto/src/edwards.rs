//! The edwards25519 group: −x² + y² = 1 + d·x²·y² over GF(2^255 − 19).
//!
//! Points use extended twisted Edwards coordinates (X : Y : Z : T) with
//! x = X/Z, y = Y/Z, T = XY/Z. The wire encoding here is **uncompressed**
//! (x ‖ y, 64 bytes): unlike Ed25519 we never need a field square root,
//! which keeps the implementation small. This is a documented deviation
//! from the Ed25519 wire format (see DESIGN.md).
//!
//! # Scalar-multiplication strategy
//!
//! Three paths replace the original MSB-first double-and-add (which is
//! kept, frozen, as [`EdwardsPoint::scalar_mul_naive`] — the reference
//! oracle for the proptests and the baseline for `crypto_bench`):
//!
//! * **Fixed-base, constant-time** ([`EdwardsPoint::mul_basepoint`]):
//!   a lazily-built shared table of windowed multiples of B (8 cached
//!   multiples per signed radix-16 digit position) turns k·B into 64
//!   table lookups + 64 cached additions, with *zero* doublings. Table
//!   scans touch every entry and mask with [`crate::ct`] helpers, so
//!   the access pattern is independent of the secret scalar.
//! * **Variable-base, constant-time** (the 4-bit fixed-window path
//!   inside [`EdwardsPoint::scalar_mul`]): an on-the-fly table of 8
//!   cached multiples, signed radix-16 digits, 4 doublings + 1 masked
//!   lookup + 1 addition per digit.
//! * **Straus/Shamir, variable-time** ([`EdwardsPoint::double_scalar_mul`]
//!   and the batch-verification multiscalar): width-5 NAF for dynamic
//!   points, width-9 NAF (`i16` digits, [`BASEPOINT_NAF_WINDOW`])
//!   against a static affine table of 128 odd basepoint multiples, one
//!   shared doubling chain for all scalars. This path is **not**
//!   constant-time and must only see public inputs — it backs signature
//!   *verification*, never signing.

use crate::ct;
use crate::error::CryptoError;
use crate::field::FieldElement;
use crate::scalar::Scalar;
use std::sync::OnceLock;

/// Length of an encoded (uncompressed) point.
pub const POINT_LEN: usize = 64;

/// The curve constant d = −121665/121666.
const D_BYTES: [u8; 32] = [
    0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75, 0xab, 0xd8, 0x41, 0x41, 0x4d, 0x0a, 0x70, 0x00,
    0x98, 0xe8, 0x79, 0x77, 0x79, 0x40, 0xc7, 0x8c, 0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52,
];
/// 2·d, used by the addition formula.
const D2_BYTES: [u8; 32] = [
    0x59, 0xf1, 0xb2, 0x26, 0x94, 0x9b, 0xd6, 0xeb, 0x56, 0xb1, 0x83, 0x82, 0x9a, 0x14, 0xe0, 0x00,
    0x30, 0xd1, 0xf3, 0xee, 0xf2, 0x80, 0x8e, 0x19, 0xe7, 0xfc, 0xdf, 0x56, 0xdc, 0xd9, 0x06, 0x24,
];
/// x-coordinate of the standard base point.
const BX_BYTES: [u8; 32] = [
    0x1a, 0xd5, 0x25, 0x8f, 0x60, 0x2d, 0x56, 0xc9, 0xb2, 0xa7, 0x25, 0x95, 0x60, 0xc7, 0x2c, 0x69,
    0x5c, 0xdc, 0xd6, 0xfd, 0x31, 0xe2, 0xa4, 0xc0, 0xfe, 0x53, 0x6e, 0xcd, 0xd3, 0x36, 0x69, 0x21,
];
/// y-coordinate of the standard base point (4/5).
const BY_BYTES: [u8; 32] = [
    0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
];

fn d() -> FieldElement {
    FieldElement::from_bytes(&D_BYTES)
}

fn d2() -> FieldElement {
    FieldElement::from_bytes(&D2_BYTES)
}

/// A point on edwards25519 in extended coordinates.
///
/// # Example
///
/// ```
/// use silvasec_crypto::{edwards::EdwardsPoint, scalar::Scalar};
///
/// let b = EdwardsPoint::basepoint();
/// let two_b = b.add(&b);
/// assert_eq!(b.scalar_mul(&Scalar::from_u64(2)), two_b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

/// A point prepared for repeated addition ("cached" form): stores
/// (Y + X, Y − X, Z, 2d·T) so [`EdwardsPoint::add_cached`] costs one
/// field multiplication less than the general addition.
#[derive(Debug, Clone, Copy)]
struct CachedPoint {
    y_plus_x: FieldElement,
    y_minus_x: FieldElement,
    z: FieldElement,
    t2d: FieldElement,
}

impl CachedPoint {
    /// The cached form of the identity (the neutral element for
    /// [`EdwardsPoint::add_cached`], used as the all-zero-digit filler
    /// in constant-time table scans).
    fn identity() -> Self {
        CachedPoint {
            y_plus_x: FieldElement::ONE,
            y_minus_x: FieldElement::ONE,
            z: FieldElement::ONE,
            t2d: FieldElement::ZERO,
        }
    }

    fn from_point(p: &EdwardsPoint) -> Self {
        CachedPoint {
            y_plus_x: p.y.add(&p.x),
            y_minus_x: p.y.sub(&p.x),
            z: p.z,
            t2d: p.t.mul(&d2()),
        }
    }

    /// Negation: swap the (Y±X) pair and negate 2d·T. Variable-time
    /// callers only.
    fn neg(&self) -> Self {
        CachedPoint {
            y_plus_x: self.y_minus_x,
            y_minus_x: self.y_plus_x,
            z: self.z,
            t2d: self.t2d.neg(),
        }
    }

    /// Replaces `self` with `other` when `mask` is all-ones (branchless).
    fn conditional_assign(&mut self, other: &Self, mask: u64) {
        self.y_plus_x.conditional_assign(&other.y_plus_x, mask);
        self.y_minus_x.conditional_assign(&other.y_minus_x, mask);
        self.z.conditional_assign(&other.z, mask);
        self.t2d.conditional_assign(&other.t2d, mask);
    }

    /// Negates the point when `bit` is 1 (branchless).
    fn conditional_negate(&mut self, bit: u64) {
        FieldElement::conditional_swap(&mut self.y_plus_x, &mut self.y_minus_x, bit);
        let negated = self.t2d.neg();
        self.t2d.conditional_assign(&negated, bit.wrapping_neg());
    }
}

/// A point with Z = 1 prepared for mixed addition: (y + x, y − x,
/// 2d·x·y). One field multiplication cheaper again than cached form;
/// only usable for precomputed (affine-normalized) tables.
#[derive(Debug, Clone, Copy)]
struct AffineNielsPoint {
    y_plus_x: FieldElement,
    y_minus_x: FieldElement,
    xy2d: FieldElement,
}

impl AffineNielsPoint {
    fn from_point(p: &EdwardsPoint) -> Self {
        let (x, y) = p.to_affine();
        AffineNielsPoint {
            y_plus_x: y.add(&x),
            y_minus_x: y.sub(&x),
            xy2d: x.mul(&y).mul(&d2()),
        }
    }

    fn neg(&self) -> Self {
        AffineNielsPoint {
            y_plus_x: self.y_minus_x,
            y_minus_x: self.y_plus_x,
            xy2d: self.xy2d.neg(),
        }
    }
}

/// Eight cached multiples [P, 2P, …, 8P]: one signed radix-16 digit's
/// worth of lookups for the constant-time fixed-window paths.
struct WindowTable([CachedPoint; 8]);

impl WindowTable {
    fn new(p: &EdwardsPoint) -> Self {
        let mut entries = [CachedPoint::from_point(p); 8];
        let mut cur = *p;
        for entry in entries.iter_mut().skip(1) {
            cur = cur.add(p);
            *entry = CachedPoint::from_point(&cur);
        }
        WindowTable(entries)
    }

    /// Looks up `digit`·P for a signed digit in [−8, 8], scanning every
    /// entry with arithmetic masks so the access pattern is independent
    /// of the digit (see DESIGN.md, constant-time boundary).
    fn select(&self, digit: i8) -> CachedPoint {
        let negative = ((i64::from(digit)) >> 63) as u64 & 1; // 1 iff digit < 0
        let abs = u64::from(digit.unsigned_abs());
        let mut r = CachedPoint::identity();
        for (j, entry) in self.0.iter().enumerate() {
            let mask = ct::eq_mask_u64(abs, j as u64 + 1);
            r.conditional_assign(entry, mask);
        }
        r.conditional_negate(negative);
        r
    }
}

/// Eight cached odd multiples [P, 3P, 5P, …, 15P]: the per-point table
/// for width-5 NAF in the variable-time Straus loop.
struct OddMultiples([CachedPoint; 8]);

impl OddMultiples {
    fn new(p: &EdwardsPoint) -> Self {
        let p2 = CachedPoint::from_point(&p.double());
        let mut entries = [CachedPoint::from_point(p); 8];
        let mut cur = *p;
        for entry in entries.iter_mut().skip(1) {
            cur = cur.add_cached(&p2);
            *entry = CachedPoint::from_point(&cur);
        }
        OddMultiples(entries)
    }

    /// Returns `d`·P for odd `d` in 1..=15. Variable-time.
    fn entry(&self, d: i8) -> &CachedPoint {
        debug_assert!(d > 0 && d % 2 == 1 && d <= 15);
        &self.0[(d / 2) as usize]
    }
}

/// Window width of the static basepoint NAF table: width-9 digits
/// (odd, up to ±255) against 128 precomputed affine odd multiples.
/// Widening from the original width-8 drops the expected basepoint
/// additions per verification from ~253/9 to ~253/10 at the price of a
/// one-off table twice the size — a trade that pays for itself because
/// the table is shared, lazily built once per process, while the NAF
/// walk runs on every signature verified.
pub const BASEPOINT_NAF_WINDOW: u32 = 9;

/// Entries in the static basepoint NAF table: odd multiples
/// [B, 3B, …, (2^(w−1) − 1)·B] for w = [`BASEPOINT_NAF_WINDOW`].
const BASEPOINT_WNAF_ENTRIES: usize = 1 << (BASEPOINT_NAF_WINDOW - 2);

/// The lazily-built shared basepoint tables: 64 windowed rows for the
/// constant-time fixed-base path (row i holds multiples of 16^i·B) and
/// 128 affine odd multiples [B, 3B, …, 255B] for width-9 NAF on the
/// verification side.
struct BasepointTables {
    window: Box<[WindowTable; 64]>,
    wnaf: [AffineNielsPoint; BASEPOINT_WNAF_ENTRIES],
}

static BASEPOINT_TABLES: OnceLock<BasepointTables> = OnceLock::new();

fn basepoint_tables() -> &'static BasepointTables {
    BASEPOINT_TABLES.get_or_init(|| {
        let b = EdwardsPoint::basepoint();

        let mut rows = Vec::with_capacity(64);
        let mut cur = b;
        for _ in 0..64 {
            rows.push(WindowTable::new(&cur));
            // Advance to the next digit position: cur ← 16·cur.
            cur = cur.double().double().double().double();
        }
        let window: Box<[WindowTable; 64]> = match rows.into_boxed_slice().try_into() {
            Ok(array) => array,
            Err(_) => unreachable!("exactly 64 rows were pushed"),
        };

        let b2 = b.double();
        let mut odd = b;
        let wnaf = std::array::from_fn(|_| {
            let entry = AffineNielsPoint::from_point(&odd);
            odd = odd.add(&b2);
            entry
        });

        BasepointTables { window, wnaf }
    })
}

impl EdwardsPoint {
    /// The identity (neutral) element.
    #[must_use]
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point B (order ℓ).
    #[must_use]
    pub fn basepoint() -> Self {
        let x = FieldElement::from_bytes(&BX_BYTES);
        let y = FieldElement::from_bytes(&BY_BYTES);
        EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        }
    }

    /// Constructs a point from affine coordinates, checking the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if (x, y) is not on the
    /// curve.
    pub fn from_affine(x: FieldElement, y: FieldElement) -> Result<Self, CryptoError> {
        // −x² + y² = 1 + d·x²·y²
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = FieldElement::ONE.add(&d().mul(&xx).mul(&yy));
        if lhs != rhs {
            return Err(CryptoError::InvalidEncoding);
        }
        Ok(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        })
    }

    /// Returns the affine coordinates (x, y).
    #[must_use]
    pub fn to_affine(&self) -> (FieldElement, FieldElement) {
        let z_inv = self.z.invert();
        (self.x.mul(&z_inv), self.y.mul(&z_inv))
    }

    /// Encodes the point as 64 bytes: x ‖ y, each 32 bytes little-endian.
    #[must_use]
    pub fn encode(&self) -> [u8; POINT_LEN] {
        let (x, y) = self.to_affine();
        let mut out = [0u8; POINT_LEN];
        out[..32].copy_from_slice(&x.to_bytes());
        out[32..].copy_from_slice(&y.to_bytes());
        out
    }

    /// Decodes a 64-byte uncompressed point, validating the curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if the coordinates are not
    /// a point on the curve.
    pub fn decode(bytes: &[u8; POINT_LEN]) -> Result<Self, CryptoError> {
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        // Reject non-canonical field encodings: bit 255 must be clear and
        // the value below p.
        let x = FieldElement::from_bytes(&xb);
        let y = FieldElement::from_bytes(&yb);
        if x.to_bytes() != xb || y.to_bytes() != yb {
            return Err(CryptoError::InvalidEncoding);
        }
        Self::from_affine(x, y)
    }

    /// Point addition (add-2008-hwcd-3 formulas for a = −1).
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let c = self.t.mul(&d2()).mul(&rhs.t);
        let zz = self.z.mul(&rhs.z);
        let dd = zz.add(&zz);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Mixed addition with a cached point (one multiplication cheaper:
    /// 2d·T is precomputed).
    ///
    /// Field additions and subtractions here use the carry-free `weak_*`
    /// forms: every weak result feeds straight into a multiply, and with
    /// reduce-bounded point fields on both sides no chain exceeds the
    /// 2^54 limb bound `mul` accepts. Every output coordinate is a `mul`
    /// result, so the point stays reduce-bounded.
    fn add_cached(&self, rhs: &CachedPoint) -> Self {
        self.add_cached_internal(rhs, true)
    }

    /// [`Self::add_cached`] with an optional T output. Like doublings,
    /// additions *read* T (the `self.t · 2d·T'` term) but their own T
    /// output is only ever consumed by a *following* addition — a
    /// doubling reads X, Y, Z alone. An add whose result feeds a
    /// doubling (every intermediate add in the ladders below) can
    /// therefore skip the E·H multiplication. Callers must ensure
    /// `need_t` is true whenever the result is added to something or
    /// escapes this module.
    fn add_cached_internal(&self, rhs: &CachedPoint, need_t: bool) -> Self {
        let a = self.y.weak_sub(&self.x).mul(&rhs.y_minus_x);
        let b = self.y.weak_add(&self.x).mul(&rhs.y_plus_x);
        let c = self.t.mul(&rhs.t2d);
        let zz = self.z.mul(&rhs.z);
        let dd = zz.weak_add(&zz);
        let e = b.weak_sub(&a);
        let f = dd.weak_sub(&c);
        let g = dd.weak_add(&c);
        let h = b.weak_add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: if need_t {
                e.mul(&h)
            } else {
                FieldElement::ZERO
            },
        }
    }

    /// Mixed addition with an affine-niels point (Z = 1 saves the Z·Z'
    /// multiplication on top of the cached form). Same carry-free
    /// `weak_*` discipline and optional T output as
    /// [`Self::add_cached_internal`].
    fn add_affine_niels(&self, rhs: &AffineNielsPoint, need_t: bool) -> Self {
        let a = self.y.weak_sub(&self.x).mul(&rhs.y_minus_x);
        let b = self.y.weak_add(&self.x).mul(&rhs.y_plus_x);
        let c = self.t.mul(&rhs.xy2d);
        let dd = self.z.weak_add(&self.z);
        let e = b.weak_sub(&a);
        let f = dd.weak_sub(&c);
        let g = dd.weak_add(&c);
        let h = b.weak_add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: if need_t {
                e.mul(&h)
            } else {
                FieldElement::ZERO
            },
        }
    }

    /// Point doubling (dbl-2008-hwcd formulas for a = −1).
    #[must_use]
    pub fn double(&self) -> Self {
        self.double_internal(true)
    }

    /// Doubling with an optional T output. Doubling never *reads* T and
    /// T is only *consumed* by additions, so a doubling whose result
    /// feeds another doubling can skip the E·H multiplication. Callers
    /// must ensure `need_t` is true whenever the result is added to
    /// something (or escapes this module).
    /// Additions and subtractions use the carry-free `weak_*` field
    /// forms (every weak result feeds a multiply; the widest chain —
    /// `(X+Y)² − X² − Y²` — peaks below 2^53.5 per limb, inside the
    /// 2^54 bound `mul` accepts). `zz2` is the un-carried double of a
    /// reduce-bounded square, so `f` uses the wide (4p) subtraction.
    fn double_internal(&self, need_t: bool) -> Self {
        let xx = self.x.square();
        let yy = self.y.square();
        let zz2 = {
            let zz = self.z.square();
            zz.weak_add(&zz)
        };
        // With a = −1: E = (X+Y)² − X² − Y², G = Y² − X²,
        // H = −(X² + Y²), F = G − 2Z².
        let e = self
            .x
            .weak_add(&self.y)
            .square()
            .weak_sub(&xx)
            .weak_sub(&yy);
        let g = yy.weak_sub(&xx);
        let f = g.weak_sub_wide(&zz2);
        let h = xx.weak_add(&yy).weak_neg_wide();
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: if need_t {
                e.mul(&h)
            } else {
                FieldElement::ZERO
            },
        }
    }

    /// Negation: (x, y) → (−x, y).
    #[must_use]
    pub fn neg(&self) -> Self {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication.
    ///
    /// Dispatches on the (public) identity of the point: multiples of
    /// the standard basepoint go through the shared precomputed table
    /// ([`Self::mul_basepoint`] — the key-generation and signing hot
    /// path); any other point takes the constant-time 4-bit fixed-window
    /// ladder with an on-the-fly table of 8 cached multiples. Both paths
    /// scan lookup tables with arithmetic masks, so timing is
    /// independent of the *scalar* (the branch is on the point, which is
    /// never secret in this system).
    #[must_use]
    pub fn scalar_mul(&self, scalar: &Scalar) -> Self {
        if *self == Self::basepoint() {
            return Self::mul_basepoint(scalar);
        }
        self.scalar_mul_windowed(scalar)
    }

    /// Constant-time fixed-window (4-bit) ladder for arbitrary points.
    fn scalar_mul_windowed(&self, scalar: &Scalar) -> Self {
        let table = WindowTable::new(self);
        let digits = scalar.radix16_digits();
        // Process digits most-significant first: acc ← 16·acc + dᵢ·P.
        // Intermediate adds feed doublings, which never read T, so only
        // the final add (digit 0) produces it.
        let mut acc = Self::identity().add_cached_internal(&table.select(digits[63]), false);
        for i in (0..63).rev() {
            acc = acc.double_internal(false);
            acc = acc.double_internal(false);
            acc = acc.double_internal(false);
            // The fourth doubling feeds an addition, which reads T.
            acc = acc.double_internal(true);
            acc = acc.add_cached_internal(&table.select(digits[i]), i == 0);
        }
        acc
    }

    /// Constant-time fixed-base multiplication k·B through the shared
    /// precomputed basepoint table: 64 masked lookups + 64 cached
    /// additions, no doublings at all. Used by key generation and
    /// Schnorr signing.
    #[must_use]
    pub fn mul_basepoint(scalar: &Scalar) -> Self {
        let tables = basepoint_tables();
        let digits = scalar.radix16_digits();
        let mut acc = Self::identity();
        for (row, &digit) in tables.window.iter().zip(digits.iter()) {
            acc = acc.add_cached(&row.select(digit));
        }
        acc
    }

    /// Computes `a·self + b·other` (the verification equation shape)
    /// with one shared Straus/Shamir doubling chain.
    ///
    /// **Variable-time**: digit positions leak through timing. All call
    /// sites are signature *verification* over public inputs; never use
    /// this with secret scalars. When either point is the standard
    /// basepoint its share of the work runs against the static width-8
    /// NAF table of odd basepoint multiples.
    #[must_use]
    pub fn double_scalar_mul(&self, a: &Scalar, other: &Self, b: &Scalar) -> Self {
        let bp = Self::basepoint();
        if *self == bp {
            Self::vartime_multiscalar_mul(&[(*other, *b)], Some(a))
        } else if *other == bp {
            Self::vartime_multiscalar_mul(&[(*self, *a)], Some(b))
        } else {
            Self::vartime_multiscalar_mul(&[(*self, *a), (*other, *b)], None)
        }
    }

    /// Variable-time Straus multiscalar: Σ sᵢ·Pᵢ (+ s_B·B when
    /// `base_scalar` is given). Dynamic points use width-5 NAF with
    /// on-the-fly odd-multiple tables; the basepoint share uses
    /// width-[`BASEPOINT_NAF_WINDOW`] NAF (`i16` digits) against the
    /// static affine table. One doubling chain is shared by every
    /// scalar; doublings that feed another doubling skip the T output.
    pub(crate) fn vartime_multiscalar_mul(
        pairs: &[(EdwardsPoint, Scalar)],
        base_scalar: Option<&Scalar>,
    ) -> Self {
        let nafs: Vec<[i8; 256]> = pairs.iter().map(|(_, s)| s.non_adjacent_form(5)).collect();
        let tables: Vec<OddMultiples> = pairs.iter().map(|(p, _)| OddMultiples::new(p)).collect();
        let base_naf = base_scalar.map(|s| s.non_adjacent_form_i16(BASEPOINT_NAF_WINDOW));

        let mut top = None;
        for naf in &nafs {
            top = top.max(naf.iter().rposition(|&d| d != 0));
        }
        if let Some(naf) = &base_naf {
            top = top.max(naf.iter().rposition(|&d| d != 0));
        }
        let Some(top) = top else {
            return Self::identity();
        };

        let mut acc = Self::identity();
        for i in (0..=top).rev() {
            let base_digit = base_naf.as_ref().map_or(0, |n| n[i]);
            let digit_count =
                nafs.iter().filter(|n| n[i] != 0).count() + usize::from(base_digit != 0);
            // T is read by the additions below and required on exit.
            acc = acc.double_internal(digit_count > 0 || i == 0);
            // An add's own T output is consumed only by a *later* add at
            // this digit position (the next doubling ignores T), or by
            // the caller when this is the final position.
            let mut remaining = digit_count;
            for (naf, table) in nafs.iter().zip(&tables) {
                let d = naf[i];
                if d != 0 {
                    remaining -= 1;
                    let need_t = remaining > 0 || i == 0;
                    acc = if d > 0 {
                        acc.add_cached_internal(table.entry(d), need_t)
                    } else {
                        acc.add_cached_internal(&table.entry(-d).neg(), need_t)
                    };
                }
            }
            if base_digit != 0 {
                let wnaf = &basepoint_tables().wnaf;
                acc = if base_digit > 0 {
                    acc.add_affine_niels(&wnaf[(base_digit / 2) as usize], i == 0)
                } else {
                    acc.add_affine_niels(&wnaf[((-base_digit) / 2) as usize].neg(), i == 0)
                };
            }
        }
        acc
    }

    /// Frozen seed implementation of point addition, kept verbatim as
    /// the reference oracle for the proptests and the baseline for
    /// `crypto_bench`. (The seed computed Z₁·Z₂ twice; that redundancy
    /// is preserved deliberately — this function must not be optimized.)
    #[must_use]
    pub fn add_naive(&self, rhs: &Self) -> Self {
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let c = self.t.mul(&d2()).mul(&rhs.t);
        let dd = self.z.mul(&rhs.z).add(&self.z.mul(&rhs.z));
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Frozen seed implementation of point doubling (reference oracle /
    /// bench baseline). The seed's `FieldElement::square` was a general
    /// multiplication, so the squarings here call `mul` explicitly to
    /// preserve the exact seed cost model; the Z² duplication is the
    /// seed's too. Must not be optimized.
    #[must_use]
    pub fn double_naive(&self) -> Self {
        let a = self.x.mul(&self.x);
        let b = self.y.mul(&self.y);
        let c = self.z.mul(&self.z).add(&self.z.mul(&self.z));
        let d = a.neg(); // a·X² with a = −1
        let e = self
            .x
            .add(&self.y)
            .mul(&self.x.add(&self.y))
            .sub(&a)
            .sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Frozen seed scalar multiplication: MSB-first double-and-add over
    /// [`Scalar::bits_msb_first`]. Reference oracle for the windowed
    /// paths and the naive baseline `crypto_bench` measures against.
    #[must_use]
    pub fn scalar_mul_naive(&self, scalar: &Scalar) -> Self {
        let mut acc = EdwardsPoint::identity();
        for bit in scalar.bits_msb_first() {
            acc = acc.double_naive();
            if bit {
                acc = acc.add_naive(self);
            }
        }
        acc
    }

    /// Frozen seed double-scalar multiplication: two independent naive
    /// ladders plus one addition. Reference oracle / bench baseline for
    /// [`Self::double_scalar_mul`].
    #[must_use]
    pub fn double_scalar_mul_naive(&self, a: &Scalar, other: &Self, b: &Scalar) -> Self {
        self.scalar_mul_naive(a)
            .add_naive(&other.scalar_mul_naive(b))
    }

    /// Whether this is the identity element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        // x = 0 and y = z.
        self.x.is_zero() && self.y == self.z
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1, Y1/Z1) == (X2/Z2, Y2/Z2) ⇔ cross products match.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        let b = EdwardsPoint::basepoint();
        let (x, y) = b.to_affine();
        assert!(EdwardsPoint::from_affine(x, y).is_ok());
    }

    #[test]
    fn identity_laws() {
        let b = EdwardsPoint::basepoint();
        let id = EdwardsPoint::identity();
        assert_eq!(b.add(&id), b);
        assert_eq!(id.add(&b), b);
        assert!(id.is_identity());
        assert!(!b.is_identity());
    }

    #[test]
    fn double_matches_add() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double(), b.add(&b));
        let four = b.double().double();
        assert_eq!(four, b.add(&b).add(&b).add(&b));
    }

    #[test]
    fn neg_is_inverse() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small() {
        let b = EdwardsPoint::basepoint();
        assert!(b.scalar_mul(&Scalar::ZERO).is_identity());
        assert_eq!(b.scalar_mul(&Scalar::ONE), b);
        assert_eq!(b.scalar_mul(&Scalar::from_u64(2)), b.double());
        assert_eq!(
            b.scalar_mul(&Scalar::from_u64(5)),
            b.double().double().add(&b)
        );
    }

    #[test]
    fn order_annihilates_basepoint() {
        // ℓ·B = identity.
        let b = EdwardsPoint::basepoint();
        // ℓ = L limbs; build ℓ−1 then add B once more.
        let l_minus_1 = Scalar::from_u64(1).neg();
        let almost = b.scalar_mul(&l_minus_1);
        assert!(almost.add(&b).is_identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = EdwardsPoint::basepoint();
        let a = Scalar::from_u64(123);
        let c = Scalar::from_u64(456);
        assert_eq!(
            b.scalar_mul(&a.add(&c)),
            b.scalar_mul(&a).add(&b.scalar_mul(&c))
        );
        assert_eq!(b.scalar_mul(&a.mul(&c)), b.scalar_mul(&a).scalar_mul(&c));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = EdwardsPoint::basepoint().scalar_mul(&Scalar::from_u64(777));
        let enc = p.encode();
        let q = EdwardsPoint::decode(&enc).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.encode(), enc);
    }

    #[test]
    fn decode_rejects_off_curve() {
        let mut enc = EdwardsPoint::basepoint().encode();
        enc[0] ^= 1; // perturb x
        assert_eq!(
            EdwardsPoint::decode(&enc),
            Err(CryptoError::InvalidEncoding)
        );
    }

    #[test]
    fn decode_rejects_noncanonical() {
        // Encode y = p (non-canonical zero) with x of the identity.
        let mut enc = [0u8; 64];
        enc[32] = 0xed;
        for b in enc[33..63].iter_mut() {
            *b = 0xff;
        }
        enc[63] = 0x7f;
        assert!(EdwardsPoint::decode(&enc).is_err());
    }

    #[test]
    fn double_scalar_mul_matches() {
        let b = EdwardsPoint::basepoint();
        let p = b.scalar_mul(&Scalar::from_u64(31337));
        let a = Scalar::from_u64(17);
        let c = Scalar::from_u64(99);
        assert_eq!(
            b.double_scalar_mul(&a, &p, &c),
            b.scalar_mul(&a).add(&p.scalar_mul(&c))
        );
    }

    /// A deterministic pseudo-random scalar for the equivalence tests.
    fn test_scalar(seed: u64) -> Scalar {
        let mut bytes = [0u8; 32];
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for b in bytes.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = state as u8;
        }
        Scalar::from_bytes_mod_order(&bytes)
    }

    #[test]
    fn windowed_matches_naive_on_arbitrary_points() {
        for seed in 0..8u64 {
            let s = test_scalar(seed);
            let p = EdwardsPoint::basepoint().scalar_mul_naive(&test_scalar(seed + 100));
            let fast = p.scalar_mul(&s);
            let slow = p.scalar_mul_naive(&s);
            assert_eq!(fast, slow, "seed {seed}");
            assert_eq!(fast.encode(), slow.encode(), "seed {seed}");
        }
    }

    #[test]
    fn basepoint_table_matches_naive() {
        let b = EdwardsPoint::basepoint();
        for seed in 0..8u64 {
            let s = test_scalar(seed);
            let fast = EdwardsPoint::mul_basepoint(&s);
            let slow = b.scalar_mul_naive(&s);
            assert_eq!(fast.encode(), slow.encode(), "seed {seed}");
        }
        // Edge digits: zero, one, ℓ−1 (all-253-bit), small powers of 16.
        for s in [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(16),
            Scalar::from_u64(256),
            Scalar::from_u64(1).neg(),
        ] {
            assert_eq!(
                EdwardsPoint::mul_basepoint(&s).encode(),
                b.scalar_mul_naive(&s).encode(),
                "{s:?}"
            );
        }
    }

    #[test]
    fn straus_matches_naive() {
        let b = EdwardsPoint::basepoint();
        for seed in 0..6u64 {
            let a = test_scalar(seed);
            let c = test_scalar(seed + 50);
            let p = b.scalar_mul_naive(&test_scalar(seed + 200));
            // Basepoint on the left (the verification shape)…
            assert_eq!(
                b.double_scalar_mul(&a, &p, &c).encode(),
                b.double_scalar_mul_naive(&a, &p, &c).encode(),
                "seed {seed}"
            );
            // …and two arbitrary points (generic Straus path).
            let q = b.scalar_mul_naive(&test_scalar(seed + 300));
            assert_eq!(
                p.double_scalar_mul(&a, &q, &c).encode(),
                p.double_scalar_mul_naive(&a, &q, &c).encode(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn straus_handles_zero_scalars() {
        let b = EdwardsPoint::basepoint();
        let p = b.scalar_mul(&Scalar::from_u64(7));
        let s = Scalar::from_u64(42);
        assert!(b
            .double_scalar_mul(&Scalar::ZERO, &p, &Scalar::ZERO)
            .is_identity());
        assert_eq!(b.double_scalar_mul(&s, &p, &Scalar::ZERO), b.scalar_mul(&s));
        assert_eq!(b.double_scalar_mul(&Scalar::ZERO, &p, &s), p.scalar_mul(&s));
    }

    #[test]
    fn wide_basepoint_naf_hits_table_extremes() {
        // Width-9 NAF digits reach ±255 (wnaf entry 127, the widened
        // table's last row). 255 recodes as a single digit; 257 as
        // [+1, 0…0, −255] — both must agree with the naive ladder.
        let b = EdwardsPoint::basepoint();
        let p = b.scalar_mul_naive(&test_scalar(7));
        let c = Scalar::from_u64(3);
        for k in [255u64, 257, 511, 0xffff_ffff] {
            let s = Scalar::from_u64(k);
            assert_eq!(
                b.double_scalar_mul(&s, &p, &c).encode(),
                b.double_scalar_mul_naive(&s, &p, &c).encode(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn multiscalar_matches_sum_of_naive() {
        let b = EdwardsPoint::basepoint();
        let points: Vec<EdwardsPoint> = (0..4)
            .map(|i| b.scalar_mul_naive(&test_scalar(400 + i)))
            .collect();
        let scalars: Vec<Scalar> = (0..4).map(|i| test_scalar(500 + i)).collect();
        let base = test_scalar(999);
        let pairs: Vec<(EdwardsPoint, Scalar)> = points
            .iter()
            .copied()
            .zip(scalars.iter().copied())
            .collect();
        let fast = EdwardsPoint::vartime_multiscalar_mul(&pairs, Some(&base));
        let mut slow = b.scalar_mul_naive(&base);
        for (p, s) in &pairs {
            slow = slow.add_naive(&p.scalar_mul_naive(s));
        }
        assert_eq!(fast.encode(), slow.encode());
    }
}
