//! Arithmetic modulo ℓ, the prime order of the edwards25519 group.
//!
//! ℓ = 2^252 + 27742317777372353535851937790883648493.
//!
//! Reduction uses shift-and-subtract long division, which is easy to verify
//! and fast enough for the simulation workloads in this repository.

/// ℓ as four little-endian 64-bit limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar modulo ℓ, stored as four little-endian 64-bit limbs.
///
/// # Example
///
/// ```
/// use silvasec_crypto::scalar::Scalar;
///
/// let a = Scalar::from_u64(5);
/// let b = Scalar::from_u64(7);
/// assert_eq!(a.mul(&b), Scalar::from_u64(35));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scalar(pub(crate) [u64; 4]);

/// Compares two 576-bit numbers (little-endian limb arrays).
fn geq_576(a: &[u64; 9], b: &[u64; 9]) -> bool {
    for i in (0..9).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// Subtracts `b` from `a` in place (576-bit); requires `a >= b`.
fn sub_576(a: &mut [u64; 9], b: &[u64; 9]) {
    let mut borrow = 0u64;
    for i in 0..9 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0);
}

/// Shifts a 576-bit number right by one bit in place.
fn shr1_576(a: &mut [u64; 9]) {
    for i in 0..8 {
        a[i] = (a[i] >> 1) | (a[i + 1] << 63);
    }
    a[8] >>= 1;
}

/// Shifts a 576-bit number left by `k < 64` bits in place.
fn shl_small_576(a: &mut [u64; 9], k: u32) {
    if k == 0 {
        return;
    }
    for i in (1..9).rev() {
        a[i] = (a[i] << k) | (a[i - 1] >> (64 - k));
    }
    a[0] <<= k;
}

/// Reduces a 512-bit number (low 8 limbs of `n`) modulo ℓ.
///
/// Restoring long division: start with m = ℓ·2^259 (≈ 2^511, which exceeds
/// n/2 for any n < 2^512) and conditionally subtract while halving m down
/// to ℓ itself. The invariant "remainder < 2m before each step" holds from
/// the start because n < 2^512 < ℓ·2^260.
fn reduce_512(n: [u64; 8]) -> [u64; 4] {
    let mut r = [0u64; 9];
    r[..8].copy_from_slice(&n);

    // m = ℓ << 259: limbs shifted up by 4 words (256 bits) then 3 bits.
    let mut m = [0u64; 9];
    m[4..8].copy_from_slice(&L);
    shl_small_576(&mut m, 3);

    for _shift in (0..=259).rev() {
        if geq_576(&r, &m) {
            sub_576(&mut r, &m);
        }
        shr1_576(&mut m);
    }
    debug_assert_eq!(&r[4..9], &[0u64; 5][..]);
    [r[0], r[1], r[2], r[3]]
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The one scalar.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Creates a scalar from a small integer.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        Scalar([x, 0, 0, 0])
    }

    /// Reduces 32 little-endian bytes modulo ℓ.
    #[must_use]
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Self {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Self::from_bytes_mod_order_wide(&wide)
    }

    /// Reduces 64 little-endian bytes modulo ℓ (for hash-to-scalar).
    #[must_use]
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Self {
        let mut limbs = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Scalar(reduce_512(limbs))
    }

    /// Encodes the scalar as 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Addition modulo ℓ.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        let mut wide = [0u64; 8];
        let mut carry = 0u64;
        for (i, out) in wide.iter_mut().enumerate().take(4) {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *out = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        wide[4] = carry;
        Scalar(reduce_512(wide))
    }

    /// Subtraction modulo ℓ.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        // a - b = a + (ℓ - b) mod ℓ.
        self.add(&rhs.neg())
    }

    /// Negation modulo ℓ.
    #[must_use]
    pub fn neg(&self) -> Self {
        if *self == Scalar::ZERO {
            return Scalar::ZERO;
        }
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d1, b1) = L[i].overflowing_sub(self.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "scalar must already be reduced");
        Scalar(out)
    }

    /// Multiplication modulo ℓ.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut limbs = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v =
                    u128::from(self.0[i]) * u128::from(rhs.0[j]) + u128::from(limbs[i + j]) + carry;
                limbs[i + j] = v as u64;
                carry = v >> 64;
            }
            limbs[i + 4] = carry as u64;
        }
        Scalar(reduce_512(limbs))
    }

    /// Whether the scalar is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Iterates over the significant bits of the scalar, most
    /// significant first.
    ///
    /// Leading zero bits are skipped (the returned vector starts at the
    /// highest set bit), so the double-and-add ladder driven by this
    /// iterator does no work on the zero prefix. For the zero scalar the
    /// vector is empty. Skipping leading zeros only removes doublings of
    /// the identity, so every consumer sees identical results — pinned
    /// by `bits_msb_first_skips_leading_zeros_same_result` below.
    #[must_use]
    pub fn bits_msb_first(&self) -> Vec<bool> {
        let top = match (0..253).rev().find(|&bit| self.bit(bit)) {
            Some(top) => top,
            None => return Vec::new(),
        };
        let mut bits = Vec::with_capacity(top + 1);
        for bit in (0..=top).rev() {
            bits.push(self.bit(bit));
        }
        bits
    }

    /// Returns bit `i` (little-endian numbering) of the scalar.
    fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Recodes the scalar into 64 signed radix-16 digits, least
    /// significant first, each in `[-8, 8]`.
    ///
    /// Σ dᵢ·16^i equals the scalar; since reduced scalars are below
    /// 2^253, the carry out of the top digit is absorbed there (d₆₃ stays
    /// in `[0, 8]`). This is the digit form consumed by the fixed-window
    /// constant-time multiplication paths in [`crate::edwards`].
    #[must_use]
    pub(crate) fn radix16_digits(&self) -> [i8; 64] {
        let bytes = self.to_bytes();
        let mut digits = [0i8; 64];
        for i in 0..32 {
            digits[2 * i] = (bytes[i] & 15) as i8;
            digits[2 * i + 1] = (bytes[i] >> 4) as i8;
        }
        // Recenter from [0, 15] to [-8, 7], pushing carries upward.
        for i in 0..63 {
            let carry = (digits[i] + 8) >> 4;
            digits[i] -= carry << 4;
            digits[i + 1] += carry;
        }
        digits
    }

    /// Recodes the scalar in width-`w` non-adjacent form: at most one of
    /// any `w` consecutive digits is nonzero, and nonzero digits are odd
    /// and in `(-2^(w-1), 2^(w-1))`.
    ///
    /// Variable-time: digit positions depend on the scalar value, so
    /// this must only be fed public scalars (verification-side use).
    /// `w` must be in `2..=8`.
    #[must_use]
    pub(crate) fn non_adjacent_form(&self, w: u32) -> [i8; 256] {
        debug_assert!((2..=8).contains(&w));
        let mut naf = [0i8; 256];
        // Working copy with one spare limb: the "add back |digit|" step
        // for negative digits can briefly push the value past 2^253.
        let mut x = [self.0[0], self.0[1], self.0[2], self.0[3], 0u64];
        let width = 1u64 << w;
        let mut pos = 0usize;
        while x != [0; 5] {
            debug_assert!(pos < 256);
            if x[0] & 1 == 1 {
                let mut digit = (x[0] % width) as i64;
                if digit >= (width as i64) / 2 {
                    digit -= width as i64;
                    // x -= digit  (digit negative → add |digit|)
                    let mut carry = digit.unsigned_abs();
                    for limb in x.iter_mut() {
                        let (sum, overflow) = limb.overflowing_add(carry);
                        *limb = sum;
                        carry = u64::from(overflow);
                        if carry == 0 {
                            break;
                        }
                    }
                } else {
                    let mut borrow = digit as u64;
                    for limb in x.iter_mut() {
                        let (diff, underflow) = limb.overflowing_sub(borrow);
                        *limb = diff;
                        borrow = u64::from(underflow);
                        if borrow == 0 {
                            break;
                        }
                    }
                }
                naf[pos] = digit as i8;
            }
            // x >>= 1
            for i in 0..4 {
                x[i] = (x[i] >> 1) | (x[i + 1] << 63);
            }
            x[4] >>= 1;
            pos += 1;
        }
        naf
    }

    /// Width-`w` non-adjacent form with `i16` digits, for windows past
    /// the `i8` limit of [`Self::non_adjacent_form`] (`w` in `2..=12`;
    /// nonzero digits are odd and in `(-2^(w-1), 2^(w-1))`).
    ///
    /// Same recoding, wider digit carrier: width-9 digits reach ±255,
    /// which overflows `i8`. This feeds the static basepoint table in
    /// [`crate::edwards`], where the one-off precomputation cost of the
    /// bigger window is shared by every verification.
    ///
    /// Variable-time — public scalars only, like the `i8` form.
    #[must_use]
    pub(crate) fn non_adjacent_form_i16(&self, w: u32) -> [i16; 256] {
        debug_assert!((2..=12).contains(&w));
        let mut naf = [0i16; 256];
        let mut x = [self.0[0], self.0[1], self.0[2], self.0[3], 0u64];
        let width = 1u64 << w;
        let mut pos = 0usize;
        while x != [0; 5] {
            debug_assert!(pos < 256);
            if x[0] & 1 == 1 {
                let mut digit = (x[0] % width) as i64;
                if digit >= (width as i64) / 2 {
                    digit -= width as i64;
                    let mut carry = digit.unsigned_abs();
                    for limb in x.iter_mut() {
                        let (sum, overflow) = limb.overflowing_add(carry);
                        *limb = sum;
                        carry = u64::from(overflow);
                        if carry == 0 {
                            break;
                        }
                    }
                } else {
                    let mut borrow = digit as u64;
                    for limb in x.iter_mut() {
                        let (diff, underflow) = limb.overflowing_sub(borrow);
                        *limb = diff;
                        borrow = u64::from(underflow);
                        if borrow == 0 {
                            break;
                        }
                    }
                }
                naf[pos] = digit as i16;
            }
            for i in 0..4 {
                x[i] = (x[i] >> 1) | (x[i + 1] << 63);
            }
            x[4] >>= 1;
            pos += 1;
        }
        naf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_minus(x: u64) -> Scalar {
        Scalar::from_u64(x).neg()
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&L);
        assert_eq!(reduce_512(wide), [0u64; 4]);
    }

    #[test]
    fn l_plus_one_reduces_to_one() {
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&L);
        wide[0] += 1;
        assert_eq!(reduce_512(wide), [1, 0, 0, 0]);
    }

    #[test]
    fn small_arithmetic() {
        let a = Scalar::from_u64(1_000_000);
        let b = Scalar::from_u64(999_999);
        assert_eq!(a.sub(&b), Scalar::ONE);
        assert_eq!(a.mul(&Scalar::ZERO), Scalar::ZERO);
        assert_eq!(a.mul(&Scalar::ONE), a);
        assert_eq!(
            Scalar::from_u64(12345).mul(&Scalar::from_u64(6789)),
            Scalar::from_u64(12345 * 6789)
        );
    }

    #[test]
    fn neg_is_additive_inverse() {
        for x in [0u64, 1, 42, u64::MAX] {
            let a = Scalar::from_u64(x);
            assert_eq!(a.add(&a.neg()), Scalar::ZERO, "x = {x}");
        }
    }

    #[test]
    fn wraparound_addition() {
        // (ℓ - 1) + 2 = 1 mod ℓ.
        assert_eq!(l_minus(1).add(&Scalar::from_u64(2)), Scalar::ONE);
    }

    #[test]
    fn wide_reduction_matches_double_reduction() {
        // (ℓ-1)² reduced must equal 1 (since -1 · -1 = 1 mod ℓ).
        let a = l_minus(1);
        assert_eq!(a.mul(&a), Scalar::ONE);
    }

    #[test]
    fn from_bytes_mod_order_wide_all_ones() {
        // Must not panic and must be < ℓ.
        let s = Scalar::from_bytes_mod_order_wide(&[0xff; 64]);
        // Multiply by one stays fixed → reduced form is stable.
        assert_eq!(s.mul(&Scalar::ONE), s);
    }

    #[test]
    fn bits_msb_first_small() {
        let bits = Scalar::from_u64(5).bits_msb_first();
        assert_eq!(bits, vec![true, false, true]);
        assert!(Scalar::ZERO.bits_msb_first().is_empty());
        assert_eq!(Scalar::ONE.bits_msb_first(), vec![true]);
    }

    #[test]
    fn bits_msb_first_skips_leading_zeros_same_result() {
        // Regression pin for the leading-zero skip: the trimmed bit
        // vector must equal the old full-width (253-entry) iteration
        // with its zero prefix stripped, for scalars of every size.
        for s in [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(5),
            Scalar::from_u64(u64::MAX),
            Scalar::from_bytes_mod_order(&[0xa7; 32]),
            Scalar::from_u64(1).neg(), // ℓ − 1: full 253 bits
        ] {
            let mut full = Vec::with_capacity(253);
            for bit in (0..253).rev() {
                full.push((s.0[bit / 64] >> (bit % 64)) & 1 == 1);
            }
            let first_set = full.iter().position(|&b| b).unwrap_or(full.len());
            assert_eq!(s.bits_msb_first(), &full[first_set..], "{s:?}");
        }
    }

    #[test]
    fn radix16_digits_recompose() {
        for s in [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(0xdead_beef),
            Scalar::from_bytes_mod_order(&[0xee; 32]),
            Scalar::from_u64(1).neg(),
        ] {
            let digits = s.radix16_digits();
            // Σ dᵢ·16^i must reconstruct the scalar; evaluate via Horner
            // in scalar arithmetic (digits can be negative).
            let sixteen = Scalar::from_u64(16);
            let mut acc = Scalar::ZERO;
            for &d in digits.iter().rev() {
                acc = acc.mul(&sixteen);
                let mag = Scalar::from_u64(d.unsigned_abs().into());
                acc = if d < 0 { acc.sub(&mag) } else { acc.add(&mag) };
            }
            assert_eq!(acc, s, "{s:?}");
            assert!(digits.iter().all(|&d| (-8..=8).contains(&d)));
            assert!(digits[63] >= 0);
        }
    }

    #[test]
    fn naf_recompose_and_shape() {
        for w in [5u32, 8] {
            for s in [
                Scalar::ZERO,
                Scalar::ONE,
                Scalar::from_u64(0x1234_5678_9abc_def0),
                Scalar::from_bytes_mod_order(&[0x5c; 32]),
                Scalar::from_u64(1).neg(),
            ] {
                let naf = s.non_adjacent_form(w);
                let two = Scalar::from_u64(2);
                let mut acc = Scalar::ZERO;
                for &d in naf.iter().rev() {
                    acc = acc.mul(&two);
                    let mag = Scalar::from_u64(d.unsigned_abs().into());
                    acc = if d < 0 { acc.sub(&mag) } else { acc.add(&mag) };
                }
                assert_eq!(acc, s, "w={w} {s:?}");
                let half = 1i16 << (w - 1);
                for (i, &d) in naf.iter().enumerate() {
                    if d != 0 {
                        assert!(d % 2 != 0, "digit at {i} even");
                        assert!((i16::from(d)) < half && i16::from(d) > -half);
                        // Non-adjacency: next w−1 digits are zero.
                        for k in 1..w as usize {
                            if i + k < 256 {
                                assert_eq!(naf[i + k], 0, "w={w} adjacency at {i}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn naf_i16_matches_i8_and_extends_past_it() {
        let samples = [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(0x1234_5678_9abc_def0),
            Scalar::from_bytes_mod_order(&[0x5c; 32]),
            Scalar::from_u64(1).neg(),
        ];
        // In the shared range the i16 recoding is digit-for-digit the
        // i8 one.
        for w in [5u32, 8] {
            for s in samples {
                let narrow = s.non_adjacent_form(w);
                let wide = s.non_adjacent_form_i16(w);
                for i in 0..256 {
                    assert_eq!(i16::from(narrow[i]), wide[i], "w={w} pos={i} {s:?}");
                }
            }
        }
        // Width 9 (beyond i8): recompose and check shape.
        for s in samples {
            let naf = s.non_adjacent_form_i16(9);
            let two = Scalar::from_u64(2);
            let mut acc = Scalar::ZERO;
            for &d in naf.iter().rev() {
                acc = acc.mul(&two);
                let mag = Scalar::from_u64(d.unsigned_abs().into());
                acc = if d < 0 { acc.sub(&mag) } else { acc.add(&mag) };
            }
            assert_eq!(acc, s, "{s:?}");
            for (i, &d) in naf.iter().enumerate() {
                if d != 0 {
                    assert!(d % 2 != 0 && d.abs() < 256, "digit {d} at {i}");
                    for k in 1..9usize {
                        if i + k < 256 {
                            assert_eq!(naf[i + k], 0, "adjacency at {i}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mul_commutative_and_associative() {
        let a = Scalar::from_bytes_mod_order(&[0x11; 32]);
        let b = Scalar::from_bytes_mod_order(&[0x22; 32]);
        let c = Scalar::from_bytes_mod_order(&[0x33; 32]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}
