//! The ChaCha20-Poly1305 AEAD construction (RFC 7539 section 2.8).
//!
//! Alongside the original allocating [`seal`]/[`open`] (kept frozen as
//! [`seal_naive`]/[`open_naive`] reference oracles), this module offers
//! one-pass in-place APIs: [`seal_in_place`] encrypts and MACs in a
//! single sweep over the caller's buffer, and [`open_in_place`]
//! verifies and decrypts the same way. The sweep works in
//! keystream-sized chunks so each chunk is touched once while cache-hot,
//! and every Poly1305 absorption lands on the copyless full-block path
//! (the AAD padding aligns the MAC to a block boundary before the
//! ciphertext starts).
//!
//! [`seal`]: ChaCha20Poly1305::seal
//! [`open`]: ChaCha20Poly1305::open
//! [`seal_naive`]: ChaCha20Poly1305::seal_naive
//! [`open_naive`]: ChaCha20Poly1305::open_naive
//! [`seal_in_place`]: ChaCha20Poly1305::seal_in_place
//! [`open_in_place`]: ChaCha20Poly1305::open_in_place

use crate::chacha20::{ChaCha20, BLOCK_LEN, KEY_LEN, NONCE_LEN, WIDE_BLOCKS};
use crate::ct;
use crate::error::CryptoError;
use crate::poly1305::{Poly1305, TAG_LEN};

/// Bytes processed per step of the one-pass sweep: one wide keystream
/// call, and a multiple of the Poly1305 block size so the MAC stays on
/// its copyless path across chunk boundaries.
const SWEEP_CHUNK: usize = WIDE_BLOCKS * BLOCK_LEN;

/// An authenticated cipher bound to one 256-bit key.
///
/// Each (key, nonce) pair must be used at most once for sealing; the secure
/// channel layer guarantees this with strictly increasing sequence numbers.
///
/// # Example
///
/// ```
/// use silvasec_crypto::aead::ChaCha20Poly1305;
///
/// let aead = ChaCha20Poly1305::new(&[9u8; 32]);
/// let ct = aead.seal(&[0; 12], b"frame header", b"emergency stop");
/// assert_eq!(aead.open(&[0; 12], b"frame header", &ct).unwrap(), b"emergency stop");
/// assert!(aead.open(&[1; 12], b"frame header", &ct).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    cipher: ChaCha20,
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD instance from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 {
            cipher: ChaCha20::new(key),
        }
    }

    /// Starts the record MAC: derives the one-time Poly1305 key from
    /// keystream block 0 and absorbs the AAD plus its padding, leaving
    /// the MAC block-aligned for the ciphertext sweep.
    fn mac_init(&self, nonce: &[u8; NONCE_LEN], aad: &[u8]) -> Poly1305 {
        // One-time Poly1305 key = first 32 bytes of keystream block 0.
        let block0 = self.cipher.block(nonce, 0);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);

        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac
    }

    /// Finishes the record MAC: ciphertext padding plus the two length
    /// words.
    fn mac_finish(mut mac: Poly1305, aad_len: usize, ct_len: usize) -> [u8; TAG_LEN] {
        mac.update(&[0u8; 16][..(16 - ct_len % 16) % 16]);
        mac.update(&(aad_len as u64).to_le_bytes());
        mac.update(&(ct_len as u64).to_le_bytes());
        mac.finalize()
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = self.mac_init(nonce, aad);
        mac.update(ciphertext);
        Self::mac_finish(mac, aad.len(), ciphertext.len())
    }

    /// Encrypts `plaintext` bound to `aad`, returning ciphertext || tag.
    ///
    /// Allocates once (exactly `plaintext.len() + overhead()`), then
    /// runs the same one-pass sweep as [`seal_in_place`].
    ///
    /// [`seal_in_place`]: ChaCha20Poly1305::seal_in_place
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.seal_in_place(nonce, aad, &mut out);
        out
    }

    /// One-pass in-place seal: encrypts the plaintext in `buf` and
    /// appends the tag, touching each chunk of the buffer once —
    /// keystream XOR immediately followed by MAC absorption while the
    /// chunk is cache-hot. Reserves exactly [`overhead`] extra bytes, so
    /// a caller that reuses a warm buffer never reallocates.
    ///
    /// Bit-identical to the frozen [`seal_naive`] oracle (proptested and
    /// cross-checked by `data_plane_bench`).
    ///
    /// [`overhead`]: ChaCha20Poly1305::overhead
    /// [`seal_naive`]: ChaCha20Poly1305::seal_naive
    pub fn seal_in_place(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>) {
        buf.reserve_exact(TAG_LEN);
        let tag = self.seal_detached(nonce, aad, buf);
        buf.extend_from_slice(&tag);
    }

    /// Detached-tag variant of [`seal_in_place`]: encrypts `buf` in
    /// place with the same one-pass sweep and returns the tag instead of
    /// appending it, for callers that frame ciphertext and tag
    /// themselves (e.g. the record layer, which prefixes a header).
    ///
    /// [`seal_in_place`]: ChaCha20Poly1305::seal_in_place
    pub fn seal_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let mut mac = self.mac_init(nonce, aad);
        let mut counter: u32 = 1;
        for chunk in buf.chunks_mut(SWEEP_CHUNK) {
            self.cipher.apply_keystream_inplace(nonce, counter, chunk);
            mac.update(chunk);
            counter = counter.wrapping_add((SWEEP_CHUNK / BLOCK_LEN) as u32);
        }
        Self::mac_finish(mac, aad.len(), buf.len())
    }

    /// Decrypts and verifies `sealed` (ciphertext || tag) bound to `aad`.
    ///
    /// Runs the same one-pass sweep as [`open_in_place`] after one exact
    /// allocation for the plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not
    /// verify, and [`CryptoError::InvalidLength`] if `sealed` is shorter
    /// than a tag.
    ///
    /// [`open_in_place`]: ChaCha20Poly1305::open_in_place
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                expected: TAG_LEN,
                actual: sealed.len(),
            });
        }
        let mut out = Vec::with_capacity(sealed.len());
        out.extend_from_slice(sealed);
        self.open_in_place(nonce, aad, &mut out)?;
        Ok(out)
    }

    /// One-pass in-place open: `buf` holds ciphertext || tag; each chunk
    /// is absorbed into the MAC and decrypted in the same sweep, then
    /// the tag is compared in constant time. On success `buf` is
    /// truncated to the plaintext. On failure the buffer is zeroed and
    /// truncated to empty — the speculative plaintext of a forged record
    /// never survives the call.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not
    /// verify, and [`CryptoError::InvalidLength`] if `buf` is shorter
    /// than a tag.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if buf.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                expected: TAG_LEN,
                actual: buf.len(),
            });
        }
        let ct_len = buf.len() - TAG_LEN;
        let (ciphertext, tag) = buf.split_at_mut(ct_len);
        match self.open_detached(nonce, aad, ciphertext, tag) {
            Ok(()) => {
                buf.truncate(ct_len);
                Ok(())
            }
            Err(e) => {
                // The ciphertext region is already zeroed; drop the tag
                // bytes too.
                buf.clear();
                Err(e)
            }
        }
    }

    /// Detached-tag variant of [`open_in_place`]: `buf` holds ciphertext
    /// only, with the tag supplied separately. On success `buf` holds
    /// the plaintext; on verification failure it is zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not
    /// verify.
    ///
    /// [`open_in_place`]: ChaCha20Poly1305::open_in_place
    pub fn open_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8],
    ) -> Result<(), CryptoError> {
        let mut mac = self.mac_init(nonce, aad);
        let mut counter: u32 = 1;
        for chunk in buf.chunks_mut(SWEEP_CHUNK) {
            mac.update(chunk);
            self.cipher.apply_keystream_inplace(nonce, counter, chunk);
            counter = counter.wrapping_add((SWEEP_CHUNK / BLOCK_LEN) as u32);
        }
        let expected = Self::mac_finish(mac, aad.len(), buf.len());
        if !ct::eq(&expected, tag) {
            buf.iter_mut().for_each(|b| *b = 0);
            return Err(CryptoError::VerificationFailed);
        }
        Ok(())
    }

    /// Frozen naive reference oracle for [`seal`]: the original
    /// two-pass, allocating implementation on top of the frozen
    /// per-block keystream. Deliberately unoptimized — `data_plane_bench`
    /// cross-checks and floors the fast path against it.
    ///
    /// [`seal`]: ChaCha20Poly1305::seal
    #[must_use]
    pub fn seal_naive(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.cipher.apply_keystream_naive(nonce, 1, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Frozen naive reference oracle for [`open`]: tag over the whole
    /// ciphertext first, then a separate decryption pass through the
    /// frozen per-block keystream.
    ///
    /// # Errors
    ///
    /// Same contract as [`open`].
    ///
    /// [`open`]: ChaCha20Poly1305::open
    pub fn open_naive(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                expected: TAG_LEN,
                actual: sealed.len(),
            });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ciphertext);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::VerificationFailed);
        }
        let mut out = ciphertext.to_vec();
        self.cipher.apply_keystream_naive(nonce, 1, &mut out);
        Ok(out)
    }

    /// The number of bytes `seal` adds to a plaintext.
    #[must_use]
    pub const fn overhead() -> usize {
        TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 section 2.8.2 AEAD test vector.
    #[test]
    fn rfc7539_aead_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let sealed = ChaCha20Poly1305::new(&key).seal(&nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");

        let opened = ChaCha20Poly1305::new(&key)
            .open(&nonce, &aad, &sealed)
            .unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tampering_detected_everywhere() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let sealed = aead.seal(&[0; 12], b"aad", b"payload");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(
                aead.open(&[0; 12], b"aad", &bad).is_err(),
                "byte {i} tamper missed"
            );
        }
    }

    #[test]
    fn wrong_aad_rejected() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let sealed = aead.seal(&[0; 12], b"header-a", b"payload");
        assert!(aead.open(&[0; 12], b"header-b", &sealed).is_err());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let sealed = aead.seal(&[2; 12], b"", b"");
        assert_eq!(sealed.len(), ChaCha20Poly1305::overhead());
        assert_eq!(aead.open(&[2; 12], b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn short_input_is_invalid_length() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        assert_eq!(
            aead.open(&[0; 12], b"", &[0u8; 15]),
            Err(CryptoError::InvalidLength {
                expected: 16,
                actual: 15
            })
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aead = ChaCha20Poly1305::new(&[8u8; 32]);
        for len in [0usize, 1, 15, 16, 17, 64, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let sealed = aead.seal(&[3; 12], b"a", &pt);
            assert_eq!(aead.open(&[3; 12], b"a", &sealed).unwrap(), pt, "len {len}");
        }
    }
}
