//! The ChaCha20-Poly1305 AEAD construction (RFC 7539 section 2.8).

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::ct;
use crate::error::CryptoError;
use crate::poly1305::{Poly1305, TAG_LEN};

/// An authenticated cipher bound to one 256-bit key.
///
/// Each (key, nonce) pair must be used at most once for sealing; the secure
/// channel layer guarantees this with strictly increasing sequence numbers.
///
/// # Example
///
/// ```
/// use silvasec_crypto::aead::ChaCha20Poly1305;
///
/// let aead = ChaCha20Poly1305::new(&[9u8; 32]);
/// let ct = aead.seal(&[0; 12], b"frame header", b"emergency stop");
/// assert_eq!(aead.open(&[0; 12], b"frame header", &ct).unwrap(), b"emergency stop");
/// assert!(aead.open(&[1; 12], b"frame header", &ct).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    cipher: ChaCha20,
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD instance from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 {
            cipher: ChaCha20::new(key),
        }
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        // One-time Poly1305 key = first 32 bytes of keystream block 0.
        let block0 = self.cipher.block(nonce, 0);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);

        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext` bound to `aad`, returning ciphertext || tag.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.cipher.apply_keystream(nonce, 1, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts and verifies `sealed` (ciphertext || tag) bound to `aad`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not
    /// verify, and [`CryptoError::InvalidLength`] if `sealed` is shorter
    /// than a tag.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidLength {
                expected: TAG_LEN,
                actual: sealed.len(),
            });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ciphertext);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::VerificationFailed);
        }
        let mut out = ciphertext.to_vec();
        self.cipher.apply_keystream(nonce, 1, &mut out);
        Ok(out)
    }

    /// The number of bytes `seal` adds to a plaintext.
    #[must_use]
    pub const fn overhead() -> usize {
        TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 section 2.8.2 AEAD test vector.
    #[test]
    fn rfc7539_aead_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let sealed = ChaCha20Poly1305::new(&key).seal(&nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");

        let opened = ChaCha20Poly1305::new(&key)
            .open(&nonce, &aad, &sealed)
            .unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tampering_detected_everywhere() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let sealed = aead.seal(&[0; 12], b"aad", b"payload");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(
                aead.open(&[0; 12], b"aad", &bad).is_err(),
                "byte {i} tamper missed"
            );
        }
    }

    #[test]
    fn wrong_aad_rejected() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let sealed = aead.seal(&[0; 12], b"header-a", b"payload");
        assert!(aead.open(&[0; 12], b"header-b", &sealed).is_err());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        let sealed = aead.seal(&[2; 12], b"", b"");
        assert_eq!(sealed.len(), ChaCha20Poly1305::overhead());
        assert_eq!(aead.open(&[2; 12], b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn short_input_is_invalid_length() {
        let aead = ChaCha20Poly1305::new(&[5u8; 32]);
        assert_eq!(
            aead.open(&[0; 12], b"", &[0u8; 15]),
            Err(CryptoError::InvalidLength {
                expected: 16,
                actual: 15
            })
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aead = ChaCha20Poly1305::new(&[8u8; 32]);
        for len in [0usize, 1, 15, 16, 17, 64, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let sealed = aead.seal(&[3; 12], b"a", &pt);
            assert_eq!(aead.open(&[3; 12], b"a", &sealed).unwrap(), pt, "len {len}");
        }
    }
}
