//! Error type shared by all primitives in this crate.

use std::error::Error;
use std::fmt;

/// An error produced by a cryptographic operation.
///
/// Deliberately coarse: distinguishing *why* verification failed would leak
/// information to an attacker, so all authenticity failures collapse into
/// [`CryptoError::VerificationFailed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// A MAC, AEAD tag or signature did not verify.
    VerificationFailed,
    /// An encoded group element or key had an invalid encoding.
    InvalidEncoding,
    /// An input had the wrong length for the primitive.
    InvalidLength {
        /// The length the primitive expected.
        expected: usize,
        /// The length that was provided.
        actual: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::InvalidEncoding => write!(f, "invalid encoding"),
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid length: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            CryptoError::VerificationFailed.to_string(),
            CryptoError::InvalidEncoding.to_string(),
            CryptoError::InvalidLength {
                expected: 32,
                actual: 31,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
