//! Constant-time comparison helpers.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately (and unavoidably, observably) when the
/// lengths differ; length is considered public information.
///
/// # Example
///
/// ```
/// assert!(silvasec_crypto::ct::eq(b"tag", b"tag"));
/// assert!(!silvasec_crypto::ct::eq(b"tag", b"tab"));
/// ```
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    (diff as u16).wrapping_sub(1) >> 15 == 1
}

/// Returns an all-ones mask when `a == b`, all-zeros otherwise, without
/// a data-dependent branch.
///
/// Used by the windowed scalar-multiplication table scans in
/// [`crate::edwards`]: every table entry is combined with the mask so
/// the memory access pattern is independent of the (secret) digit.
#[must_use]
pub fn eq_mask_u64(a: u64, b: u64) -> u64 {
    // (a ^ b) is zero iff equal; collapse "is zero" to the top bit via
    // the classic x | -x trick, then sign-extend.
    let x = a ^ b;
    let nonzero_top = x | x.wrapping_neg(); // top bit set iff x != 0
    ((nonzero_top >> 63) ^ 1).wrapping_neg()
}

/// Selects `a` when `mask` is all-ones and `b` when `mask` is all-zeros.
///
/// `mask` must be `0` or `u64::MAX`; any other value mixes the operands.
#[must_use]
pub fn select_u64(mask: u64, a: u64, b: u64) -> u64 {
    b ^ (mask & (a ^ b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(eq(&[], &[]));
        assert!(eq(&[0u8; 64], &[0u8; 64]));
        assert!(eq(b"abc", b"abc"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(&[0u8], &[]));
        assert!(!eq(&[0x80], &[0x00]));
    }

    #[test]
    fn eq_mask_matches_equality() {
        for (a, b) in [
            (0u64, 0u64),
            (0, 1),
            (1, 0),
            (u64::MAX, u64::MAX),
            (u64::MAX, u64::MAX - 1),
            (1 << 63, 1 << 63),
            (1 << 63, 0),
            (7, 7),
        ] {
            let expect = if a == b { u64::MAX } else { 0 };
            assert_eq!(eq_mask_u64(a, b), expect, "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn select_picks_by_mask() {
        assert_eq!(select_u64(u64::MAX, 0xaa, 0x55), 0xaa);
        assert_eq!(select_u64(0, 0xaa, 0x55), 0x55);
    }

    #[test]
    fn differs_in_every_position() {
        let a = [0u8; 16];
        for i in 0..16 {
            let mut b = [0u8; 16];
            b[i] = 1;
            assert!(!eq(&a, &b), "difference at byte {i} not detected");
        }
    }
}
