//! Constant-time comparison helpers.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately (and unavoidably, observably) when the
/// lengths differ; length is considered public information.
///
/// # Example
///
/// ```
/// assert!(silvasec_crypto::ct::eq(b"tag", b"tag"));
/// assert!(!silvasec_crypto::ct::eq(b"tag", b"tab"));
/// ```
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch.
    (diff as u16).wrapping_sub(1) >> 15 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(eq(&[], &[]));
        assert!(eq(&[0u8; 64], &[0u8; 64]));
        assert!(eq(b"abc", b"abc"));
    }

    #[test]
    fn unequal_slices() {
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(&[0u8], &[]));
        assert!(!eq(&[0x80], &[0x00]));
    }

    #[test]
    fn differs_in_every_position() {
        let a = [0u8; 16];
        for i in 0..16 {
            let mut b = [0u8; 16];
            b[i] = 1;
            assert!(!eq(&a, &b), "difference at byte {i} not detected");
        }
    }
}
