//! Schnorr signatures over the edwards25519 group.
//!
//! The scheme is Ed25519's structure — deterministic nonce, challenge
//! e = H(R ‖ A ‖ m), response s = r + e·a — with two documented deviations:
//!
//! 1. Points use the uncompressed 64-byte encoding from [`crate::edwards`]
//!    (no field square root needed), so a signature is 96 bytes
//!    (R: 64 ‖ s: 32) and a public key is 64 bytes.
//! 2. SHA-256 (via HKDF/HMAC domain separation) replaces SHA-512.
//!
//! Security-wise this is standard Fiat–Shamir Schnorr on a prime-order
//! subgroup; verification checks `s·B == R + e·A`.

use crate::edwards::{EdwardsPoint, POINT_LEN};
use crate::error::CryptoError;
use crate::hkdf;
use crate::hmac::HmacSha256;
use crate::scalar::Scalar;
use crate::sha256::Sha256;

/// Length of a serialized signature in bytes.
pub const SIGNATURE_LEN: usize = POINT_LEN + 32;
/// Length of a serialized verifying (public) key in bytes.
pub const PUBLIC_KEY_LEN: usize = POINT_LEN;
/// Length of a signing-key seed in bytes.
pub const SEED_LEN: usize = 32;

/// A Schnorr signature (R ‖ s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// The commitment point R, uncompressed.
    pub r_bytes: [u8; POINT_LEN],
    /// The response scalar s.
    pub s_bytes: [u8; 32],
}

impl Signature {
    /// Serializes the signature to 96 bytes.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..POINT_LEN].copy_from_slice(&self.r_bytes);
        out[POINT_LEN..].copy_from_slice(&self.s_bytes);
        out
    }

    /// Parses a signature from 96 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] when `bytes` is not exactly
    /// [`SIGNATURE_LEN`] bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != SIGNATURE_LEN {
            return Err(CryptoError::InvalidLength {
                expected: SIGNATURE_LEN,
                actual: bytes.len(),
            });
        }
        let mut r_bytes = [0u8; POINT_LEN];
        let mut s_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&bytes[..POINT_LEN]);
        s_bytes.copy_from_slice(&bytes[POINT_LEN..]);
        Ok(Signature { r_bytes, s_bytes })
    }
}

/// A verifying (public) key.
///
/// # Example
///
/// ```
/// use silvasec_crypto::schnorr::SigningKey;
///
/// let sk = SigningKey::from_seed(&[1u8; 32]);
/// let vk = sk.verifying_key();
/// let sig = sk.sign(b"firmware image digest");
/// assert!(vk.verify(b"firmware image digest", &sig).is_ok());
/// assert!(vk.verify(b"other message", &sig).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    point: EdwardsPoint,
    encoded: [u8; PUBLIC_KEY_LEN],
}

impl VerifyingKey {
    /// Parses a verifying key from its 64-byte encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if the bytes are not a
    /// valid curve point.
    pub fn from_bytes(bytes: &[u8; PUBLIC_KEY_LEN]) -> Result<Self, CryptoError> {
        let point = EdwardsPoint::decode(bytes)?;
        if point.is_identity() {
            return Err(CryptoError::InvalidEncoding);
        }
        Ok(VerifyingKey {
            point,
            encoded: *bytes,
        })
    }

    /// The 64-byte encoding of this key.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; PUBLIC_KEY_LEN] {
        self.encoded
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the signature is not
    /// valid for this key and message, or [`CryptoError::InvalidEncoding`]
    /// if R is not a valid point.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let r = EdwardsPoint::decode(&signature.r_bytes)?;
        let s = Scalar::from_bytes_mod_order(&signature.s_bytes);
        // Reject non-canonical s (s must already be < ℓ).
        if s.to_bytes() != signature.s_bytes {
            return Err(CryptoError::VerificationFailed);
        }
        let e = challenge(&signature.r_bytes, &self.encoded, message);
        // s·B == R + e·A, checked as s·B − e·A == R so both scalar
        // multiplications share one Straus/Shamir doubling chain (all
        // inputs here are public, so the variable-time path is fine).
        let v = EdwardsPoint::basepoint().double_scalar_mul(&s, &self.point, &e.neg());
        if v == r {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

/// One signature-verification job for [`verify_batch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// The signed message.
    pub message: &'a [u8],
    /// The signature to check.
    pub signature: &'a Signature,
    /// The key it must verify under.
    pub key: &'a VerifyingKey,
}

/// Batch signature verification: checks every item in one multiscalar
/// multiplication instead of one verification equation per signature.
///
/// Each item's equation `sᵢ·B − eᵢ·Aᵢ − Rᵢ = 0` is scaled by an
/// independent coefficient zᵢ and the results are summed, so the whole
/// batch costs a single shared doubling chain:
///
/// ```text
/// (Σ zᵢ·sᵢ)·B − Σ (zᵢ·eᵢ)·Aᵢ − Σ zᵢ·Rᵢ == identity
/// ```
///
/// The coefficients are derived deterministically (Fiat–Shamir over all
/// signatures, keys, and message digests) because this codebase runs
/// everything from seeds — no ambient randomness. A batch of valid
/// signatures therefore *always* accepts (no false rejections), and a
/// batch containing an invalid signature is rejected unless the forger
/// can steer the hash-derived coefficients, i.e. break SHA-256.
///
/// Returns `true` exactly when every individual [`VerifyingKey::verify`]
/// would succeed (up to that hash caveat). The batch cannot say *which*
/// item failed — callers that need the failing index or the precise
/// error must fall back to individual verification, which is also how
/// every call site in this workspace preserves its original
/// error-precedence semantics.
#[must_use]
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    if items.is_empty() {
        return true;
    }
    // Cheap per-item checks, replicating `verify` exactly: R must decode
    // to a curve point and s must be canonical.
    let mut decoded = Vec::with_capacity(items.len());
    for item in items {
        let Ok(r) = EdwardsPoint::decode(&item.signature.r_bytes) else {
            return false;
        };
        let s = Scalar::from_bytes_mod_order(&item.signature.s_bytes);
        if s.to_bytes() != item.signature.s_bytes {
            return false;
        }
        let e = challenge(&item.signature.r_bytes, &item.key.encoded, item.message);
        decoded.push((r, s, e));
    }

    // Deterministic coefficient seed binding every input.
    let mut h = Sha256::new();
    h.update(b"silvasec-schnorr-batch-v1");
    h.update(&(items.len() as u64).to_le_bytes());
    for item in items {
        h.update(&item.signature.r_bytes);
        h.update(&item.signature.s_bytes);
        h.update(&item.key.encoded);
        let mut mh = Sha256::new();
        mh.update(item.message);
        h.update(&mh.finalize());
    }
    let seed = h.finalize();

    let mut base_scalar = Scalar::ZERO;
    let mut pairs = Vec::with_capacity(2 * items.len());
    for (i, (item, (r, s, e))) in items.iter().zip(decoded.iter()).enumerate() {
        let z = batch_coefficient(&seed, i as u64);
        base_scalar = base_scalar.add(&z.mul(s));
        pairs.push((*r, z.neg()));
        pairs.push((item.key.point, z.mul(e).neg()));
    }
    EdwardsPoint::vartime_multiscalar_mul(&pairs, Some(&base_scalar)).is_identity()
}

/// Derives the i-th batch coefficient: 128 bits of H(seed ‖ i),
/// guaranteed nonzero.
fn batch_coefficient(seed: &[u8; 32], i: u64) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"silvasec-schnorr-batch-z");
    h.update(seed);
    h.update(&i.to_le_bytes());
    let d = h.finalize();
    let mut bytes = [0u8; 32];
    bytes[..16].copy_from_slice(&d[..16]);
    let z = Scalar::from_bytes_mod_order(&bytes);
    if z.is_zero() {
        Scalar::ONE
    } else {
        z
    }
}

/// A signing (private) key derived deterministically from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    secret: Scalar,
    prf_key: [u8; 32],
    verifying: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret material.
        f.debug_struct("SigningKey")
            .field("verifying", &self.verifying)
            .finish_non_exhaustive()
    }
}

fn challenge(r_enc: &[u8; POINT_LEN], a_enc: &[u8; PUBLIC_KEY_LEN], message: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"silvasec-schnorr-v1");
    h.update(r_enc);
    h.update(a_enc);
    h.update(message);
    let d1 = h.finalize();
    // Widen to 64 bytes for uniform reduction mod ℓ.
    let mut h2 = Sha256::new();
    h2.update(b"silvasec-schnorr-v1-widen");
    h2.update(&d1);
    let d2 = h2.finalize();
    let mut wide = [0u8; 64];
    wide[..32].copy_from_slice(&d1);
    wide[32..].copy_from_slice(&d2);
    Scalar::from_bytes_mod_order_wide(&wide)
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> Self {
        let mut okm = [0u8; 96];
        hkdf::derive(b"silvasec-schnorr-keygen", seed, b"key-expansion", &mut okm);
        let mut wide = [0u8; 64];
        wide.copy_from_slice(&okm[..64]);
        let secret = Scalar::from_bytes_mod_order_wide(&wide);
        let mut prf_key = [0u8; 32];
        prf_key.copy_from_slice(&okm[64..]);

        let point = EdwardsPoint::mul_basepoint(&secret);
        let encoded = point.encode();
        SigningKey {
            secret,
            prf_key,
            verifying: VerifyingKey { point, encoded },
        }
    }

    /// The verifying key corresponding to this signing key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.verifying
    }

    /// Signs `message` deterministically (RFC 6979-style nonce derivation).
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        // r = H(prf_key, message) widened, reduced mod ℓ.
        let mut mac1 = HmacSha256::new(&self.prf_key);
        mac1.update(b"nonce-1");
        mac1.update(message);
        let t1 = mac1.finalize();
        let mut mac2 = HmacSha256::new(&self.prf_key);
        mac2.update(b"nonce-2");
        mac2.update(message);
        let t2 = mac2.finalize();
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&t1);
        wide[32..].copy_from_slice(&t2);
        let mut r = Scalar::from_bytes_mod_order_wide(&wide);
        if r.is_zero() {
            // Vanishingly unlikely; nudge to 1 to keep R a valid point.
            r = Scalar::ONE;
        }

        let r_point = EdwardsPoint::mul_basepoint(&r);
        let r_bytes = r_point.encode();
        let e = challenge(&r_bytes, &self.verifying.encoded, message);
        let s = r.add(&e.mul(&self.secret));
        Signature {
            r_bytes,
            s_bytes: s.to_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::from_seed(&[42u8; 32]);
        let vk = sk.verifying_key();
        for msg in [&b""[..], b"a", b"forwarder stop command", &[0u8; 1000]] {
            let sig = sk.sign(msg);
            assert!(vk.verify(msg, &sig).is_ok());
        }
    }

    #[test]
    fn deterministic_signatures() {
        let sk = SigningKey::from_seed(&[1u8; 32]);
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m"), sk.sign(b"n"));
    }

    #[test]
    fn wrong_message_rejected() {
        let sk = SigningKey::from_seed(&[2u8; 32]);
        let sig = sk.sign(b"original");
        assert_eq!(
            sk.verifying_key().verify(b"forged", &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_seed(&[3u8; 32]);
        let sk2 = SigningKey::from_seed(&[4u8; 32]);
        let sig = sk1.sign(b"m");
        assert!(sk2.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_seed(&[5u8; 32]);
        let sig = sk.sign(b"m");
        let bytes = sig.to_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes;
            bad[i] ^= 0x40;
            let parsed = Signature::from_bytes(&bad).unwrap();
            assert!(
                sk.verifying_key().verify(b"m", &parsed).is_err(),
                "tamper at byte {i} accepted"
            );
        }
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let sk = SigningKey::from_seed(&[6u8; 32]);
        let sig = sk.sign(b"m");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&[0u8; 95]).is_err());
    }

    #[test]
    fn verifying_key_roundtrip_and_validation() {
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let vk = sk.verifying_key();
        let parsed = VerifyingKey::from_bytes(&vk.to_bytes()).unwrap();
        assert_eq!(parsed, vk);
        // Identity is rejected as a public key.
        let id_enc = crate::edwards::EdwardsPoint::identity().encode();
        assert!(VerifyingKey::from_bytes(&id_enc).is_err());
        // Garbage is rejected.
        assert!(VerifyingKey::from_bytes(&[9u8; 64]).is_err());
    }

    #[test]
    fn noncanonical_s_rejected() {
        // Take a valid signature and add ℓ to s (non-canonical but
        // algebraically equivalent) — must be rejected to prevent
        // malleability.
        let sk = SigningKey::from_seed(&[8u8; 32]);
        let sig = sk.sign(b"m");
        let s = Scalar::from_bytes_mod_order(&sig.s_bytes);
        // s + ℓ as raw 256-bit addition (may overflow 256 bits for large s;
        // skip the check in that case).
        let mut carry = 0u128;
        let mut raw = [0u64; 4];
        let s_limbs = {
            let b = s.to_bytes();
            let mut l = [0u64; 4];
            for (i, chunk) in b.chunks_exact(8).enumerate() {
                l[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            l
        };
        for i in 0..4 {
            let v = u128::from(s_limbs[i]) + u128::from(crate::scalar::L[i]) + carry;
            raw[i] = v as u64;
            carry = v >> 64;
        }
        if carry == 0 {
            let mut s_bytes = [0u8; 32];
            for (i, limb) in raw.iter().enumerate() {
                s_bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
            }
            let bad = Signature {
                r_bytes: sig.r_bytes,
                s_bytes,
            };
            assert!(sk.verifying_key().verify(b"m", &bad).is_err());
        }
    }

    #[test]
    fn batch_accepts_all_valid() {
        let keys: Vec<SigningKey> = (0..16u8).map(|i| SigningKey::from_seed(&[i; 32])).collect();
        let messages: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 40]).collect();
        let sigs: Vec<Signature> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let vks: Vec<VerifyingKey> = keys.iter().map(SigningKey::verifying_key).collect();
        let items: Vec<BatchItem<'_>> = (0..16)
            .map(|i| BatchItem {
                message: &messages[i],
                signature: &sigs[i],
                key: &vks[i],
            })
            .collect();
        assert!(verify_batch(&items));
        assert!(verify_batch(&items[..1]));
        assert!(verify_batch(&[]));
    }

    #[test]
    fn batch_rejects_single_corruption() {
        let keys: Vec<SigningKey> = (0..16u8).map(|i| SigningKey::from_seed(&[i; 32])).collect();
        let messages: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i ^ 0x5a; 33]).collect();
        let mut sigs: Vec<Signature> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        // Corrupt exactly one signature's s.
        sigs[7].s_bytes[3] ^= 0x10;
        let vks: Vec<VerifyingKey> = keys.iter().map(SigningKey::verifying_key).collect();
        let items: Vec<BatchItem<'_>> = (0..16)
            .map(|i| BatchItem {
                message: &messages[i],
                signature: &sigs[i],
                key: &vks[i],
            })
            .collect();
        assert!(!verify_batch(&items));
        // The individual fallback pinpoints the failure.
        for (i, item) in items.iter().enumerate() {
            let ok = item.key.verify(item.message, item.signature).is_ok();
            assert_eq!(ok, i != 7, "item {i}");
        }
    }

    #[test]
    fn batch_rejects_swapped_messages() {
        let sk = SigningKey::from_seed(&[77u8; 32]);
        let vk = sk.verifying_key();
        let sig_a = sk.sign(b"message a");
        let sig_b = sk.sign(b"message b");
        let items = [
            BatchItem {
                message: b"message b",
                signature: &sig_a,
                key: &vk,
            },
            BatchItem {
                message: b"message a",
                signature: &sig_b,
                key: &vk,
            },
        ];
        assert!(!verify_batch(&items));
    }

    #[test]
    fn batch_matches_individual_on_bad_encodings() {
        let sk = SigningKey::from_seed(&[78u8; 32]);
        let vk = sk.verifying_key();
        let good = sk.sign(b"m");
        // Off-curve R.
        let mut bad_r = good;
        bad_r.r_bytes[0] ^= 1;
        assert!(!verify_batch(&[BatchItem {
            message: b"m",
            signature: &bad_r,
            key: &vk,
        }]));
        assert!(vk.verify(b"m", &bad_r).is_err());
    }

    #[test]
    fn debug_hides_secret() {
        let sk = SigningKey::from_seed(&[9u8; 32]);
        let dbg = format!("{sk:?}");
        assert!(dbg.contains("SigningKey"));
        assert!(!dbg.contains("secret"));
    }
}
