//! From-scratch cryptographic primitives for the SilvaSec toolkit.
//!
//! This crate implements every primitive the secure substrates of the
//! forestry worksite need, with no external dependencies:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), validated against NIST vectors.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against RFC 4231 vectors.
//! * [`hkdf`] — HKDF-SHA256 (RFC 5869) extract-and-expand key derivation.
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 7539).
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 7539).
//! * [`aead`] — the ChaCha20-Poly1305 AEAD construction (RFC 7539).
//! * [`field`] — arithmetic in GF(2^255 − 19) using 51-bit limbs.
//! * [`x25519`] — the X25519 Diffie–Hellman function (RFC 7748).
//! * [`edwards`] — the edwards25519 group (extended coordinates).
//! * [`scalar`] — arithmetic modulo the edwards25519 group order ℓ.
//! * [`schnorr`] — Schnorr signatures over edwards25519 (uncompressed
//!   point encoding; see the module docs for how this differs from Ed25519).
//! * [`drbg`] — a deterministic ChaCha20-based random bit generator.
//! * [`ct`] — constant-time byte comparison.
//!
//! # Why from scratch?
//!
//! The reproduced paper prescribes authenticated communication, a PKI and
//! signed firmware for autonomous forestry machines, but its project had not
//! yet built them. Implementing the primitives here (rather than binding a
//! production library) keeps the whole system self-contained and lets the
//! benchmark harness measure primitive costs on equal footing with the rest
//! of the simulation.
//!
//! **These implementations favour clarity over side-channel hardening; do not
//! reuse them outside the simulation context.**
//!
//! # Example
//!
//! ```
//! use silvasec_crypto::{schnorr::SigningKey, aead::ChaCha20Poly1305, x25519};
//!
//! # fn main() {
//! // Sign and verify.
//! let sk = SigningKey::from_seed(&[7u8; 32]);
//! let sig = sk.sign(b"forwarder telemetry frame");
//! assert!(sk.verifying_key().verify(b"forwarder telemetry frame", &sig).is_ok());
//!
//! // Agree on a shared secret and encrypt.
//! let (a_priv, a_pub) = x25519::keypair(&[1u8; 32]);
//! let (b_priv, b_pub) = x25519::keypair(&[2u8; 32]);
//! let shared_a = x25519::diffie_hellman(&a_priv, &b_pub);
//! let shared_b = x25519::diffie_hellman(&b_priv, &a_pub);
//! assert_eq!(shared_a, shared_b);
//!
//! let aead = ChaCha20Poly1305::new(&shared_a);
//! let ct = aead.seal(&[0u8; 12], b"header", b"stop command");
//! let pt = aead.open(&[0u8; 12], b"header", &ct).unwrap();
//! assert_eq!(pt, b"stop command");
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod drbg;
pub mod edwards;
pub mod error;
pub mod field;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod scalar;
pub mod schnorr;
pub mod sha256;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use drbg::ChaChaDrbg;
pub use error::CryptoError;
pub use schnorr::{Signature, SigningKey, VerifyingKey};
