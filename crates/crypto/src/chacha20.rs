//! The ChaCha20 stream cipher (RFC 7539).
//!
//! Two keystream paths live here, mirroring the oracle discipline the
//! asymmetric side established for scalar multiplication:
//!
//! * the **fast path** ([`ChaCha20::apply_keystream_inplace`]) builds
//!   the 16-word key/nonce state once per call and then generates
//!   [`WIDE_BLOCKS`] keystream blocks per core invocation: each state
//!   word is held as a 4-lane `[u32; 4]` so the lane loops compile to
//!   vector adds/xors/rotates, two independent 4-lane quarter-round
//!   chains are interleaved statement by statement to cover the rotate
//!   latency, and the block counter is incremented in-register across
//!   the lanes;
//! * the **naive reference oracle** ([`ChaCha20::apply_keystream_naive`])
//!   is the original one-block-at-a-time code, kept frozen and
//!   unoptimized so the fast path always has an independent
//!   implementation to be cross-checked against (RFC vectors, proptests,
//!   and the `data_plane_bench` cross-check digest all compare the two).
//!
//! Both paths are bit-identical by contract; the fast path must never be
//! "validated" against itself.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;
/// Keystream blocks produced per fast-path core invocation.
pub const WIDE_BLOCKS: usize = 8;

/// The ChaCha20 stream cipher keyed with a 256-bit key.
///
/// Encryption and decryption are the same operation (XOR with the
/// keystream).
///
/// # Example
///
/// ```
/// use silvasec_crypto::chacha20::ChaCha20;
///
/// let cipher = ChaCha20::new(&[0x42; 32]);
/// let mut data = *b"drone waypoint update";
/// cipher.apply_keystream(&[0; 12], 1, &mut data);
/// cipher.apply_keystream(&[0; 12], 1, &mut data);
/// assert_eq!(&data, b"drone waypoint update");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One 4-block lane group: element `l` belongs to keystream block
/// `counter + l` within the group.
type Lanes = [u32; 4];

#[inline(always)]
fn vadd(a: Lanes, b: Lanes) -> Lanes {
    let mut r = [0u32; 4];
    for l in 0..4 {
        r[l] = a[l].wrapping_add(b[l]);
    }
    r
}

#[inline(always)]
fn vxor(a: Lanes, b: Lanes) -> Lanes {
    let mut r = [0u32; 4];
    for l in 0..4 {
        r[l] = a[l] ^ b[l];
    }
    r
}

#[inline(always)]
fn vrol<const N: u32>(a: Lanes) -> Lanes {
    let mut r = [0u32; 4];
    for l in 0..4 {
        r[l] = a[l].rotate_left(N);
    }
    r
}

/// Two independent 4-lane quarter-rounds, interleaved statement by
/// statement: the second chain's instructions fill the rotate/add
/// latency bubbles of the first, which is where the fast path's
/// throughput margin over one chain comes from.
macro_rules! quarter_round_pair {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident) => {
        $a = vadd($a, $b);
        $e = vadd($e, $f);
        $d = vrol::<16>(vxor($d, $a));
        $h = vrol::<16>(vxor($h, $e));
        $c = vadd($c, $d);
        $g = vadd($g, $h);
        $b = vrol::<12>(vxor($b, $c));
        $f = vrol::<12>(vxor($f, $g));
        $a = vadd($a, $b);
        $e = vadd($e, $f);
        $d = vrol::<8>(vxor($d, $a));
        $h = vrol::<8>(vxor($h, $e));
        $c = vadd($c, $d);
        $g = vadd($g, $h);
        $b = vrol::<7>(vxor($b, $c));
        $f = vrol::<7>(vxor($f, $g));
    };
}

/// 4x4 transpose of four lane-vectors: output `i` holds element `i` of
/// each input, so per-block keystream words become contiguous.
#[inline(always)]
fn transpose4(r0: Lanes, r1: Lanes, r2: Lanes, r3: Lanes) -> (Lanes, Lanes, Lanes, Lanes) {
    (
        [r0[0], r1[0], r2[0], r3[0]],
        [r0[1], r1[1], r2[1], r3[1]],
        [r0[2], r1[2], r2[2], r3[2]],
        [r0[3], r1[3], r2[3], r3[3]],
    )
}

/// Adds the feedforward, transposes lane-major keystream words into
/// block-major order, and XORs them into four contiguous 64-byte
/// blocks. The fixed-size chunk lets the compiler drop every bounds
/// check, which this loop is hot enough to care about.
#[inline(always)]
fn xor_lane_group(fin: &[Lanes; 16], init: &[Lanes; 16], chunk: &mut [u8; 4 * BLOCK_LEN]) {
    let mut ks = [[0u32; 4]; 16];
    for i in 0..16 {
        ks[i] = vadd(fin[i], init[i]);
    }
    // rows[l * 4 + g] = keystream words 4g..4g+4 of block l
    let mut rows = [[0u32; 4]; 16];
    for g in 0..4 {
        let (t0, t1, t2, t3) = transpose4(ks[4 * g], ks[4 * g + 1], ks[4 * g + 2], ks[4 * g + 3]);
        rows[g] = t0;
        rows[4 + g] = t1;
        rows[8 + g] = t2;
        rows[12 + g] = t3;
    }
    for (r, row) in rows.iter().enumerate() {
        for (l, k) in row.iter().enumerate() {
            let p = r * 16 + 4 * l;
            let w = u32::from_le_bytes([chunk[p], chunk[p + 1], chunk[p + 2], chunk[p + 3]]);
            chunk[p..p + 4].copy_from_slice(&(w ^ k).to_le_bytes());
        }
    }
}

/// The fast-path core: generates [`WIDE_BLOCKS`] keystream blocks
/// (counters `counter .. counter + WIDE_BLOCKS`) from a precomputed
/// key/nonce state and XORs them into `chunk`. The counter never
/// round-trips through memory — lane `l` of each chain seeds word 12
/// with `counter + l` directly.
#[allow(clippy::too_many_lines)]
fn xor_wide_blocks(template: &[u32; 16], counter: u32, chunk: &mut [u8; WIDE_BLOCKS * BLOCK_LEN]) {
    let splat = |w: u32| [w; 4];
    let (mut a0, mut a1, mut a2, mut a3) = (
        splat(template[0]),
        splat(template[1]),
        splat(template[2]),
        splat(template[3]),
    );
    let (mut a4, mut a5, mut a6, mut a7) = (
        splat(template[4]),
        splat(template[5]),
        splat(template[6]),
        splat(template[7]),
    );
    let (mut a8, mut a9, mut a10, mut a11) = (
        splat(template[8]),
        splat(template[9]),
        splat(template[10]),
        splat(template[11]),
    );
    let mut a12 = [0u32; 4];
    for (l, slot) in a12.iter_mut().enumerate() {
        *slot = counter.wrapping_add(l as u32);
    }
    let (mut a13, mut a14, mut a15) = (
        splat(template[13]),
        splat(template[14]),
        splat(template[15]),
    );
    let (mut b0, mut b1, mut b2, mut b3) = (a0, a1, a2, a3);
    let (mut b4, mut b5, mut b6, mut b7) = (a4, a5, a6, a7);
    let (mut b8, mut b9, mut b10, mut b11) = (a8, a9, a10, a11);
    let mut b12 = [0u32; 4];
    for (l, slot) in b12.iter_mut().enumerate() {
        *slot = counter.wrapping_add(4 + l as u32);
    }
    let (mut b13, mut b14, mut b15) = (a13, a14, a15);
    let init_a = [
        a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14, a15,
    ];
    let init_b = [
        b0, b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14, b15,
    ];
    for _ in 0..10 {
        quarter_round_pair!(a0, a4, a8, a12, b0, b4, b8, b12);
        quarter_round_pair!(a1, a5, a9, a13, b1, b5, b9, b13);
        quarter_round_pair!(a2, a6, a10, a14, b2, b6, b10, b14);
        quarter_round_pair!(a3, a7, a11, a15, b3, b7, b11, b15);
        quarter_round_pair!(a0, a5, a10, a15, b0, b5, b10, b15);
        quarter_round_pair!(a1, a6, a11, a12, b1, b6, b11, b12);
        quarter_round_pair!(a2, a7, a8, a13, b2, b7, b8, b13);
        quarter_round_pair!(a3, a4, a9, a14, b3, b4, b9, b14);
    }
    let fin_a = [
        a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13, a14, a15,
    ];
    let fin_b = [
        b0, b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13, b14, b15,
    ];
    let (lo, hi) = chunk.split_at_mut(4 * BLOCK_LEN);
    xor_lane_group(&fin_a, &init_a, lo.try_into().expect("split is exact"));
    xor_lane_group(&fin_b, &init_b, hi.try_into().expect("split is exact"));
}

impl ChaCha20 {
    /// Creates a cipher instance from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 { key_words }
    }

    /// The 16-word initial state for `nonce` with the counter slot left
    /// at zero — precomputed once per keystream call so the per-block
    /// work is rounds only.
    #[inline]
    fn state_template(&self, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key_words);
        state[13] = u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]);
        state[14] = u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]);
        state[15] = u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]);
        state
    }

    /// Produces the 64-byte keystream block for (`nonce`, `counter`).
    ///
    /// Part of the frozen naive oracle: one block per call, scalar
    /// rounds. The AEAD layer also uses it directly for the one-time
    /// Poly1305 key (a single block, where the wide path buys nothing).
    #[must_use]
    pub fn block(&self, nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = self.state_template(nonce);
        state[12] = counter;

        let mut working = state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream starting at block `initial_counter` into `data`.
    ///
    /// Delegates to the multi-block fast path
    /// ([`apply_keystream_inplace`]); the original per-block code
    /// survives as [`apply_keystream_naive`].
    ///
    /// # Panics
    ///
    /// Panics if the block counter would wrap past `u32::MAX` (more than
    /// ~256 GiB under one nonce — a misuse in this codebase).
    ///
    /// [`apply_keystream_inplace`]: ChaCha20::apply_keystream_inplace
    /// [`apply_keystream_naive`]: ChaCha20::apply_keystream_naive
    pub fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], initial_counter: u32, data: &mut [u8]) {
        self.apply_keystream_inplace(nonce, initial_counter, data);
    }

    /// Fast path: XORs the keystream into `data` in place, generating
    /// [`WIDE_BLOCKS`] blocks per core call from a precomputed key/nonce
    /// state. Bit-identical to [`apply_keystream_naive`] — the proptests
    /// and the `data_plane_bench` cross-check digest hold it to that.
    ///
    /// # Panics
    ///
    /// Panics if the block counter would wrap past `u32::MAX`, matching
    /// the naive oracle's misuse guard.
    ///
    /// [`apply_keystream_naive`]: ChaCha20::apply_keystream_naive
    pub fn apply_keystream_inplace(
        &self,
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        data: &mut [u8],
    ) {
        let blocks = data.len().div_ceil(BLOCK_LEN) as u64;
        assert!(
            u64::from(initial_counter) + blocks <= u64::from(u32::MAX),
            "chacha20 block counter overflow"
        );
        let template = self.state_template(nonce);
        let mut counter = initial_counter;
        let mut chunks = data.chunks_exact_mut(WIDE_BLOCKS * BLOCK_LEN);
        for chunk in &mut chunks {
            xor_wide_blocks(
                &template,
                counter,
                chunk.try_into().expect("chunks_exact yields exact chunks"),
            );
            counter = counter.wrapping_add(WIDE_BLOCKS as u32);
        }
        for chunk in chunks.into_remainder().chunks_mut(BLOCK_LEN) {
            let mut state = template;
            state[12] = counter;
            let mut working = state;
            for _ in 0..10 {
                quarter_round(&mut working, 0, 4, 8, 12);
                quarter_round(&mut working, 1, 5, 9, 13);
                quarter_round(&mut working, 2, 6, 10, 14);
                quarter_round(&mut working, 3, 7, 11, 15);
                quarter_round(&mut working, 0, 5, 10, 15);
                quarter_round(&mut working, 1, 6, 11, 12);
                quarter_round(&mut working, 2, 7, 8, 13);
                quarter_round(&mut working, 3, 4, 9, 14);
            }
            let mut ks = [0u8; BLOCK_LEN];
            for i in 0..16 {
                let word = working[i].wrapping_add(state[i]);
                ks[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
            }
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Frozen naive reference oracle: the original one-block-at-a-time
    /// keystream application. Deliberately unoptimized — it exists so
    /// the fast path has an independent implementation to be verified
    /// against, and it must never be "sped up" to track the fast path.
    ///
    /// # Panics
    ///
    /// Panics if the block counter would wrap past `u32::MAX`.
    pub fn apply_keystream_naive(
        &self,
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        data: &mut [u8],
    ) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block(nonce, counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter
                .checked_add(1)
                .expect("chacha20 block counter overflow");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7539 section 2.3.2 block function test vector.
    #[test]
    fn rfc7539_block() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key).block(&nonce, 1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 7539 section 2.4.2 encryption test vector — exercised through
    // both the fast path and the frozen naive oracle.
    #[test]
    fn rfc7539_encrypt() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        for fast in [false, true] {
            let mut data = plaintext.clone();
            if fast {
                ChaCha20::new(&key).apply_keystream_inplace(&nonce, 1, &mut data);
            } else {
                ChaCha20::new(&key).apply_keystream_naive(&nonce, 1, &mut data);
            }
            assert_eq!(
                hex(&data[..32]),
                "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            );
            assert_eq!(hex(&data[96..]), "5af90bbf74a35be6b40b8eedf2785e42874d");
        }
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = ChaCha20::new(&[7u8; 32]);
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let mut data = original.clone();
            cipher.apply_keystream(&[1; 12], 0, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} unchanged by cipher");
            }
            cipher.apply_keystream(&[1; 12], 0, &mut data);
            assert_eq!(data, original, "len {len} roundtrip");
        }
    }

    // The fast path must agree with the frozen oracle byte for byte at
    // every alignment: sub-block, block-aligned, wide-chunk-aligned, and
    // the straddling lengths on either side of each boundary.
    #[test]
    fn fast_path_matches_naive_oracle() {
        let cipher = ChaCha20::new(&[0x5a; 32]);
        let nonce = [3u8; 12];
        for len in [
            0usize, 1, 15, 16, 17, 63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 512, 513, 1024,
            4096, 5000,
        ] {
            for counter in [0u32, 1, 2, 1000] {
                let original: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
                let mut fast = original.clone();
                let mut naive = original.clone();
                cipher.apply_keystream_inplace(&nonce, counter, &mut fast);
                cipher.apply_keystream_naive(&nonce, counter, &mut naive);
                assert_eq!(fast, naive, "len {len} counter {counter}");
            }
        }
    }

    // Both paths must refuse a counter that would wrap.
    #[test]
    fn counter_overflow_panics_on_both_paths() {
        let cipher = ChaCha20::new(&[1u8; 32]);
        for fast in [false, true] {
            let result = std::panic::catch_unwind(|| {
                let mut data = [0u8; 2 * BLOCK_LEN];
                if fast {
                    cipher.apply_keystream_inplace(&[0; 12], u32::MAX, &mut data);
                } else {
                    cipher.apply_keystream_naive(&[0; 12], u32::MAX, &mut data);
                }
            });
            assert!(result.is_err(), "fast={fast} should panic on wrap");
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let cipher = ChaCha20::new(&[7u8; 32]);
        assert_ne!(cipher.block(&[0; 12], 0), cipher.block(&[1; 12], 0));
        assert_ne!(cipher.block(&[0; 12], 0), cipher.block(&[0; 12], 1));
    }
}
