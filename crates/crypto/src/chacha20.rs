//! The ChaCha20 stream cipher (RFC 7539).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 stream cipher keyed with a 256-bit key.
///
/// Encryption and decryption are the same operation (XOR with the
/// keystream).
///
/// # Example
///
/// ```
/// use silvasec_crypto::chacha20::ChaCha20;
///
/// let cipher = ChaCha20::new(&[0x42; 32]);
/// let mut data = *b"drone waypoint update";
/// cipher.apply_keystream(&[0; 12], 1, &mut data);
/// cipher.apply_keystream(&[0; 12], 1, &mut data);
/// assert_eq!(&data, b"drone waypoint update");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher instance from a 32-byte key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 { key_words }
    }

    /// Produces the 64-byte keystream block for (`nonce`, `counter`).
    #[must_use]
    pub fn block(&self, nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13] = u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]);
        state[14] = u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]);
        state[15] = u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]);

        let mut working = state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream starting at block `initial_counter` into `data`.
    ///
    /// # Panics
    ///
    /// Panics if the block counter would wrap past `u32::MAX` (more than
    /// ~256 GiB under one nonce — a misuse in this codebase).
    pub fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], initial_counter: u32, data: &mut [u8]) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block(nonce, counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter
                .checked_add(1)
                .expect("chacha20 block counter overflow");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7539 section 2.3.2 block function test vector.
    #[test]
    fn rfc7539_block() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key).block(&nonce, 1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 7539 section 2.4.2 encryption test vector.
    #[test]
    fn rfc7539_encrypt() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        ChaCha20::new(&key).apply_keystream(&nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&data[96..]), "5af90bbf74a35be6b40b8eedf2785e42874d");
    }

    #[test]
    fn roundtrip_various_lengths() {
        let cipher = ChaCha20::new(&[7u8; 32]);
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let mut data = original.clone();
            cipher.apply_keystream(&[1; 12], 0, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len} unchanged by cipher");
            }
            cipher.apply_keystream(&[1; 12], 0, &mut data);
            assert_eq!(data, original, "len {len} roundtrip");
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let cipher = ChaCha20::new(&[7u8; 32]);
        assert_ne!(cipher.block(&[0; 12], 0), cipher.block(&[1; 12], 0));
        assert_ne!(cipher.block(&[0; 12], 0), cipher.block(&[0; 12], 1));
    }
}
