//! The Poly1305 one-time authenticator (RFC 7539).
//!
//! State is held in 26-bit limbs (the widely used "donna-32" radix),
//! which keeps every intermediate product inside `u64`; full-block runs
//! are absorbed in the 44-bit "donna-64" radix with `u128` products,
//! which cuts the wide multiplies per block from 25 to 9.

/// Key length in bytes (r || s).
pub const KEY_LEN: usize = 32;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Internal block length in bytes.
pub const BLOCK_LEN: usize = 16;

/// An incremental Poly1305 computation.
///
/// A Poly1305 key must be used for **one** message only; the AEAD layer in
/// [`crate::aead`] derives a fresh key per nonce.
///
/// # Example
///
/// ```
/// use silvasec_crypto::poly1305::Poly1305;
///
/// let mut mac = Poly1305::new(&[3u8; 32]);
/// mac.update(b"one-time authenticated data");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates an authenticator from a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);
        // Clamp r and split into 26-bit limbs.
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let s = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs a run of full blocks without copying: each 16-byte chunk
    /// is viewed in place and `h` stays in locals across the whole run.
    ///
    /// The run loop works in the "donna-64" radix — three limbs of
    /// 44/44/42 bits with `u128` products — which needs 9 wide
    /// multiplies per block against the 25 of the 26-bit schedule in
    /// [`process_block`]. State converts between the radices at the run
    /// boundaries; the conversions are exact bit-slicings of the same
    /// integer, so while the partially-reduced representative can
    /// differ from the one the 26-bit schedule would produce, it stays
    /// congruent mod 2^130 - 5 and within the bound the final reduction
    /// in [`finalize`] handles — the tag is identical for any update
    /// chunking (asserted by the incremental-vs-oneshot tests and the
    /// AEAD in-place-vs-naive cross-checks).
    ///
    /// [`process_block`]: Poly1305::process_block
    /// [`finalize`]: Poly1305::finalize
    fn process_blocks(&mut self, blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % BLOCK_LEN, 0);
        const MASK44: u64 = (1 << 44) - 1;
        const MASK42: u64 = (1 << 42) - 1;

        // Repack clamped r (an exactly 26-bit-sliced value < 2^124)
        // into the 44-bit radix. The `* 20` multiples fold the limb
        // overhang through 2^132 = 4 * 2^130 ≡ 4 * 5 (mod 2^130 - 5);
        // clamping keeps them well inside u64.
        let [ra, rb, rc, rd, re] = self.r.map(u128::from);
        let rv = ra | (rb << 26) | (rc << 52) | (rd << 78) | (re << 104);
        let r0 = (rv as u64) & MASK44;
        let r1 = ((rv >> 44) as u64) & MASK44;
        let r2 = (rv >> 88) as u64;
        let s1 = r1 * 20;
        let s2 = r2 * 20;

        // Repack h. The 26-bit limbs may carry a few bits of excess, so
        // the positional sum is additive, not an OR — and h is a
        // 130-bit value, so it is sliced in stages rather than packed
        // into one (128-bit) integer.
        let [ha, hb, hc, hd, he] = self.h.map(u128::from);
        let ht = ha + (hb << 26) + (hc << 52) + (hd << 78);
        let mut h0 = (ht as u64) & MASK44;
        let ht = (ht >> 44) + (he << 60);
        let mut h1 = (ht as u64) & MASK44;
        let mut h2 = (ht >> 44) as u64;

        let wide = |x: u64, y: u64| u128::from(x) * u128::from(y);

        // Message limbs of one block, hibit (2^128 = bit 40 of limb 2)
        // included.
        let limbs = |block: &[u8]| {
            let t0 = u64::from_le_bytes(block[0..8].try_into().expect("exact chunk"));
            let t1 = u64::from_le_bytes(block[8..16].try_into().expect("exact chunk"));
            [
                t0 & MASK44,
                ((t0 >> 44) | (t1 << 20)) & MASK44,
                (t1 >> 24) | (1 << 40),
            ]
        };

        // r^2 mod 2^130 - 5, for the two-way Horner split below.
        let q = {
            let d0 = wide(r0, r0) + wide(r1, s2) + wide(r2, s1);
            let d1 = wide(r0, r1) + wide(r1, r0) + wide(r2, s2);
            let d2 = wide(r0, r2) + wide(r1, r1) + wide(r2, r0);
            let mut c = (d0 >> 44) as u64;
            let q0 = (d0 as u64) & MASK44;
            let d1 = d1 + u128::from(c);
            c = (d1 >> 44) as u64;
            let q1 = (d1 as u64) & MASK44;
            let d2 = d2 + u128::from(c);
            c = (d2 >> 42) as u64;
            let q2 = (d2 as u64) & MASK42;
            let mut q0 = q0 + c * 5;
            c = q0 >> 44;
            q0 &= MASK44;
            [q0, q1 + c, q2]
        };
        let [q0, q1, q2] = q;
        let sq1 = q1 * 20;
        let sq2 = q2 * 20;

        // Two blocks per iteration via the Horner split
        // `h = (h + m1) * r^2 + m2 * r`: the serial h -> multiply ->
        // reduce -> h dependency advances once per 32 bytes instead of
        // once per 16, and the two products are independent work for
        // the multiplier. One partial carry pass per pair.
        let mut pairs = blocks.chunks_exact(2 * BLOCK_LEN);
        for pair in &mut pairs {
            let [m0, m1, m2] = limbs(&pair[..BLOCK_LEN]);
            let [n0, n1, n2] = limbs(&pair[BLOCK_LEN..]);
            let a0 = h0 + m0;
            let a1 = h1 + m1;
            let a2 = h2 + m2;

            let d0 = wide(a0, q0)
                + wide(a1, sq2)
                + wide(a2, sq1)
                + wide(n0, r0)
                + wide(n1, s2)
                + wide(n2, s1);
            let d1 = wide(a0, q1)
                + wide(a1, q0)
                + wide(a2, sq2)
                + wide(n0, r1)
                + wide(n1, r0)
                + wide(n2, s2);
            let d2 = wide(a0, q2)
                + wide(a1, q1)
                + wide(a2, q0)
                + wide(n0, r2)
                + wide(n1, r1)
                + wide(n2, r0);

            let mut c = (d0 >> 44) as u64;
            h0 = (d0 as u64) & MASK44;
            let d1 = d1 + u128::from(c);
            c = (d1 >> 44) as u64;
            h1 = (d1 as u64) & MASK44;
            let d2 = d2 + u128::from(c);
            c = (d2 >> 42) as u64;
            h2 = (d2 as u64) & MASK42;
            h0 += c * 5;
            c = h0 >> 44;
            h0 &= MASK44;
            h1 += c;
        }

        // At most one trailing block: plain `h = (h + m) * r`.
        for block in pairs.remainder().chunks_exact(BLOCK_LEN) {
            let [m0, m1, m2] = limbs(block);
            h0 += m0;
            h1 += m1;
            h2 += m2;

            let d0 = wide(h0, r0) + wide(h1, s2) + wide(h2, s1);
            let d1 = wide(h0, r1) + wide(h1, r0) + wide(h2, s2);
            let d2 = wide(h0, r2) + wide(h1, r1) + wide(h2, r0);

            let mut c = (d0 >> 44) as u64;
            h0 = (d0 as u64) & MASK44;
            let d1 = d1 + u128::from(c);
            c = (d1 >> 44) as u64;
            h1 = (d1 as u64) & MASK44;
            let d2 = d2 + u128::from(c);
            c = (d2 >> 42) as u64;
            h2 = (d2 as u64) & MASK42;
            h0 += c * 5;
            c = h0 >> 44;
            h0 &= MASK44;
            h1 += c;
        }

        // Slice h (< 2^130 + ε after the partial carries, so again too
        // wide for one u128) back into the 26-bit radix in stages; the
        // top limb may exceed 26 bits by a hair, which both
        // `process_block` and `finalize` tolerate.
        const MASK26: u32 = 0x03ff_ffff;
        let mut ht = u128::from(h0) + (u128::from(h1) << 44);
        let l0 = (ht as u32) & MASK26;
        ht >>= 26;
        let l1 = (ht as u32) & MASK26;
        ht >>= 26;
        let ht = ht + (u128::from(h2) << 36);
        let l2 = (ht as u32) & MASK26;
        let ht = ht >> 26;
        let l3 = (ht as u32) & MASK26;
        let l4 = (ht >> 26) as u32;
        self.h = [l0, l1, l2, l3, l4];
    }

    fn process_block(&mut self, block: &[u8; BLOCK_LEN], final_partial: bool) {
        let hibit: u32 = if final_partial { 0 } else { 1 << 24 };
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        // h += m
        self.h[0] = self.h[0].wrapping_add(t0 & 0x03ff_ffff);
        self.h[1] = self.h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        self.h[2] = self.h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        self.h[3] = self.h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        self.h[4] = self.h[4].wrapping_add((t3 >> 8) | hibit);

        // h *= r, with reduction mod 2^130 - 5.
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.h.map(u64::from);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry propagation.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d0 &= 0x03ff_ffff;
        d1 += c;
        c = d1 >> 26;
        d1 &= 0x03ff_ffff;
        d2 += c;
        c = d2 >> 26;
        d2 &= 0x03ff_ffff;
        d3 += c;
        c = d3 >> 26;
        d3 &= 0x03ff_ffff;
        d4 += c;
        c = d4 >> 26;
        d4 &= 0x03ff_ffff;
        d0 += c * 5;
        c = d0 >> 26;
        d0 &= 0x03ff_ffff;
        d1 += c;

        self.h = [d0 as u32, d1 as u32, d2 as u32, d3 as u32, d4 as u32];
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.process_block(&block, false);
                self.buf_len = 0;
            }
        }
        let full = data.len() - data.len() % BLOCK_LEN;
        let (blocks, tail) = data.split_at(full);
        if !blocks.is_empty() {
            self.process_blocks(blocks);
        }
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Finishes the computation and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block: append 0x01 then zeros, clear hibit.
            let mut block = [0u8; BLOCK_LEN];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, true);
        }

        // Full carry propagation.
        let mut h = self.h;
        let mut c: u32;
        c = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] = h[2].wrapping_add(c);
        c = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] = h[3].wrapping_add(c);
        c = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] = h[4].wrapping_add(c);
        c = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] = h[0].wrapping_add(c * 5);
        c = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] = h[1].wrapping_add(c);

        // Compute g = h + 5 - 2^130 and select it when h >= p.
        let mut g = [0u32; 5];
        let mut carry: u32 = 5;
        for i in 0..4 {
            let t = h[i].wrapping_add(carry);
            carry = t >> 26;
            g[i] = t & 0x03ff_ffff;
        }
        g[4] = h[4].wrapping_add(carry).wrapping_sub(1 << 26);

        let mask = (g[4] >> 31).wrapping_sub(1); // all-ones when h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize h to 128 bits and add s mod 2^128.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        let mut f: u64;
        let mut out = [0u8; TAG_LEN];
        f = u64::from(h0) + u64::from(self.s[0]);
        out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = u64::from(h1) + u64::from(self.s[1]) + (f >> 32);
        out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = u64::from(h2) + u64::from(self.s[2]) + (f >> 32);
        out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = u64::from(h3) + u64::from(self.s[3]) + (f >> 32);
        out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        out
    }

    /// Computes the tag of `data` under `key` in one shot.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 7539 section 2.5.2 test vector.
    #[test]
    fn rfc7539_vector() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    // RFC 7539 appendix A.3 test vector 1: all-zero key and message.
    #[test]
    fn rfc7539_a3_vector1() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(
            hex(&Poly1305::mac(&key, &msg)),
            "00000000000000000000000000000000"
        );
    }

    // RFC 7539 appendix A.3 test vector 2.
    #[test]
    fn rfc7539_a3_vector2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex(&Poly1305::mac(&key, msg)),
            "36e5f6b5c5e06070f0efca96227a863e"
        );
    }

    // RFC 7539 appendix A.3 test vector 3 (r = key part reused as tag).
    #[test]
    fn rfc7539_a3_vector3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            hex(&Poly1305::mac(&key, msg)),
            "f3477e7cd95417af89a6b8794c310cf0"
        );
    }

    // RFC 7539 appendix A.3 test vector 11 exercises the wraparound edge:
    // here we use vector 4 (Jabberwocky) instead for message padding.
    #[test]
    fn incremental_matches_oneshot() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let data: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        for split in [0usize, 1, 15, 16, 17, 100] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "split {split}");
        }
    }

    #[test]
    fn partial_final_block() {
        let key: [u8; 32] = (1u8..33).collect::<Vec<_>>().try_into().unwrap();
        for len in 0..40usize {
            let data = vec![0x5au8; len];
            // Just ensure determinism and no panic across partial lengths.
            assert_eq!(Poly1305::mac(&key, &data), Poly1305::mac(&key, &data));
        }
    }
}
