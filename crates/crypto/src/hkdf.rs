//! HKDF-SHA256 (RFC 5869) extract-and-expand key derivation.

use crate::hmac::{HmacKey, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// Maximum output length of [`expand`] (255 blocks, per RFC 5869).
pub const MAX_OUTPUT_LEN: usize = 255 * DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
///
/// # Example
///
/// ```
/// let prk = silvasec_crypto::hkdf::extract(b"salt", b"input keying material");
/// assert_eq!(prk.len(), 32);
/// ```
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands a pseudorandom key to `out.len()` bytes of output
/// keying material bound to `info`.
///
/// # Panics
///
/// Panics if `out.len()` exceeds [`MAX_OUTPUT_LEN`].
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= MAX_OUTPUT_LEN, "hkdf output too long");
    // One key schedule for every counter block: the ipad/opad states
    // are compressed once here, then cloned per block below.
    let key = HmacKey::new(prk);
    let mut t = [0u8; DIGEST_LEN];
    let mut t_len = 0usize;
    let mut counter = 1u8;
    let mut written = 0usize;
    while written < out.len() {
        let mut mac = key.mac_start();
        mac.update(&t[..t_len]);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - written).min(DIGEST_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block;
        t_len = DIGEST_LEN;
        counter = counter.wrapping_add(1);
    }
}

/// One-shot extract-then-expand.
///
/// # Panics
///
/// Panics if `out.len()` exceeds [`MAX_OUTPUT_LEN`].
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: zero-length salt and info.
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_matches_extract_expand() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        derive(b"salt", b"ikm", b"info", &mut a);
        let prk = extract(b"salt", b"ikm");
        expand(&prk, b"info", &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn different_info_different_output() {
        let prk = extract(b"s", b"k");
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        expand(&prk, b"client", &mut a);
        expand(&prk, b"server", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn non_block_multiple_lengths() {
        let prk = extract(b"s", b"k");
        let mut long = [0u8; 100];
        expand(&prk, b"i", &mut long);
        let mut short = [0u8; 33];
        expand(&prk, b"i", &mut short);
        assert_eq!(&long[..33], &short[..]);
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn too_long_output_panics() {
        let prk = extract(b"s", b"k");
        let mut out = vec![0u8; MAX_OUTPUT_LEN + 1];
        expand(&prk, b"i", &mut out);
    }
}
