use silvasec_crypto::edwards::EdwardsPoint;
use silvasec_crypto::field::FieldElement;
use silvasec_crypto::scalar::Scalar;
use std::time::Instant;

#[test]
#[ignore]
fn microprof() {
    let mut x = FieldElement::from_bytes(&[7u8; 32]);
    let y = FieldElement::from_bytes(&[9u8; 32]);
    let n = 2_000_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        x = std::hint::black_box(x.mul(&y));
    }
    let mul_ns = t0.elapsed().as_nanos() as f64 / f64::from(n);
    let t0 = Instant::now();
    for _ in 0..n {
        x = std::hint::black_box(x.square());
    }
    let sq_ns = t0.elapsed().as_nanos() as f64 / f64::from(n);
    println!("field mul {mul_ns:.1} ns, square {sq_ns:.1} ns");

    let p = EdwardsPoint::basepoint().scalar_mul(&Scalar::from_u64(12345));
    let n = 200_000u32;
    let mut q = p;
    let t0 = Instant::now();
    for _ in 0..n {
        q = std::hint::black_box(q.double());
    }
    let dbl_ns = t0.elapsed().as_nanos() as f64 / f64::from(n);
    let t0 = Instant::now();
    for _ in 0..n {
        q = std::hint::black_box(q.add(&p));
    }
    let add_ns = t0.elapsed().as_nanos() as f64 / f64::from(n);
    println!("point double {dbl_ns:.1} ns, add {add_ns:.1} ns");
    let s = Scalar::from_bytes_mod_order(&[0xAB; 32]);
    let n = 2000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        q = std::hint::black_box(q.scalar_mul(&s));
    }
    println!(
        "windowed scalar_mul {:.1} us",
        t0.elapsed().as_micros() as f64 / f64::from(n)
    );
}
